//! The flow-level simulator core.

use dsv3_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// A unidirectional network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Capacity in gigabytes per second.
    pub capacity_gbps: f64,
}

/// Identifier of a link within a [`FlowSim`].
pub type LinkId = usize;

/// Identifier of a flow within a [`FlowSim`].
pub type FlowId = usize;

#[derive(Debug, Clone)]
struct FlowState {
    path: Vec<LinkId>,
    bytes_remaining: f64,
    start_us: f64,
    latency_us: f64,
    finish_us: Option<f64>,
}

/// Completion report of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Finish time (µs) of each flow, indexed by [`FlowId`].
    pub finish_us: Vec<f64>,
    /// Time at which the last flow finished.
    pub makespan_us: f64,
}

/// A max-min fair flow-level network simulation.
///
/// ```
/// use dsv3_netsim::{FlowSim, Link};
///
/// let mut sim = FlowSim::new(vec![Link { capacity_gbps: 50.0 }]);
/// // Two flows share the 50 GB/s link: 1 GB each takes 40 ms.
/// sim.add_flow(vec![0], 1e9, 0.0, 2.0);
/// sim.add_flow(vec![0], 1e9, 0.0, 2.0);
/// let report = sim.run();
/// assert!((report.makespan_us - 40_002.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct FlowSim {
    links: Vec<Link>,
    flows: Vec<FlowState>,
}

impl FlowSim {
    /// New simulator over the given links.
    #[must_use]
    pub fn new(links: Vec<Link>) -> Self {
        Self { links, flows: Vec::new() }
    }

    /// Number of links.
    #[must_use]
    pub fn links(&self) -> usize {
        self.links.len()
    }

    /// Capacity of link `l` (GB/s).
    #[must_use]
    pub fn capacity(&self, l: LinkId) -> f64 {
        self.links[l].capacity_gbps
    }

    /// Path of flow `f`.
    #[must_use]
    pub fn path(&self, f: FlowId) -> &[LinkId] {
        &self.flows[f].path
    }

    /// Add a flow of `bytes` over `path`, departing at `start_us` with fixed
    /// path latency `latency_us` (per-hop latency + endpoint overhead, as
    /// computed by [`crate::latency`]). A zero-byte flow models a bare
    /// message whose cost is latency only. Returns the flow id.
    ///
    /// A zero-capacity link is legal: it models a *failed* (down) link, and
    /// flows crossing it are allocated rate 0 by [`FlowSim::max_min_rates`].
    /// Note that [`FlowSim::run`] itself never revives a link, so a nonzero
    /// flow whose path stays down forever cannot make progress (`run`
    /// panics); dynamic fail/heal behavior lives in [`crate::chaos`].
    ///
    /// # Panics
    ///
    /// Panics if the path references an unknown link, `bytes` is negative,
    /// or a link capacity is negative.
    pub fn add_flow(
        &mut self,
        path: Vec<LinkId>,
        bytes: f64,
        start_us: f64,
        latency_us: f64,
    ) -> FlowId {
        assert!(bytes >= 0.0, "bytes must be non-negative");
        for &l in &path {
            assert!(l < self.links.len(), "unknown link {l}");
            assert!(self.links[l].capacity_gbps >= 0.0, "link {l} has negative capacity");
        }
        self.flows.push(FlowState {
            path,
            bytes_remaining: bytes,
            start_us,
            latency_us,
            finish_us: None,
        });
        self.flows.len() - 1
    }

    /// Max-min fair rates (GB/s) for the given active flow ids.
    ///
    /// Exposed for analysis and property testing: the returned allocation
    /// never oversubscribes a link, and every flow is bottlenecked by at
    /// least one saturated link on its path.
    #[must_use]
    pub fn max_min_rates(&self, active: &[FlowId]) -> Vec<f64> {
        let paths: Vec<&[LinkId]> = active.iter().map(|&f| self.flows[f].path.as_slice()).collect();
        max_min_rates_for(&self.links, &paths)
    }

    /// Run to completion.
    ///
    /// # Panics
    ///
    /// Panics if no flows were added.
    pub fn run(&mut self) -> SimReport {
        self.run_impl(None)
    }

    /// [`FlowSim::run`] plus telemetry: one span per flow (named thread
    /// tracks under the `{scope}/netsim` process, transfer start to
    /// reported finish), per-link utilization counter samples at every
    /// rate-change horizon, a `{scope}.flow_us` completion-time
    /// histogram, and `{scope}.link{l}.utilization` time-average gauges.
    /// All timestamps are the simulation's native microseconds. With a
    /// disabled recorder this is exactly [`FlowSim::run`].
    ///
    /// # Panics
    ///
    /// Panics if no flows were added.
    // lint:entry — FlowSim event loop (fluid max-min flow simulation).
    pub fn run_traced(&mut self, rec: &mut Recorder, scope: &str) -> SimReport {
        if rec.is_enabled() {
            self.run_impl(Some((rec, scope)))
        } else {
            self.run_impl(None)
        }
    }

    fn run_impl(&mut self, mut tel: Option<(&mut Recorder, &str)>) -> SimReport {
        assert!(!self.flows.is_empty(), "no flows to simulate");
        const EPS: f64 = 1e-9;
        let pid = match tel.as_mut() {
            Some((rec, scope)) => rec.process(&format!("{scope}/netsim")),
            None => 0,
        };
        let mut link_bytes = vec![0f64; self.links.len()];
        // Transfer-phase completion bookkeeping: a flow's data transfer runs
        // in [start, t_done]; its reported finish adds the path latency.
        let mut now = 0f64;
        loop {
            let active: Vec<FlowId> = (0..self.flows.len())
                .filter(|&f| {
                    self.flows[f].finish_us.is_none() && self.flows[f].start_us <= now + EPS
                })
                .collect();
            let pending_arrival = self
                .flows
                .iter()
                .filter(|f| f.finish_us.is_none() && f.start_us > now + EPS)
                .map(|f| f.start_us)
                .fold(f64::INFINITY, f64::min);
            if active.is_empty() {
                if pending_arrival.is_finite() {
                    now = pending_arrival;
                    continue;
                }
                break;
            }
            // Zero-byte or zero-work flows finish immediately.
            let mut finished_any = false;
            for &f in &active {
                if self.flows[f].bytes_remaining <= EPS {
                    let fl = &mut self.flows[f];
                    fl.finish_us = Some(now + fl.latency_us);
                    finished_any = true;
                }
            }
            if finished_any {
                continue;
            }
            let rates = self.max_min_rates(&active);
            // Next event: earliest completion or next arrival.
            let mut next_done = f64::INFINITY;
            for (i, &f) in active.iter().enumerate() {
                if rates[i] > 0.0 {
                    // bytes / (GB/s) = ns·... capacity GB/s = bytes/ns·1e-?:
                    // 1 GB/s = 1e9 B / 1e6 µs = 1000 B/µs.
                    let us = self.flows[f].bytes_remaining / (rates[i] * 1000.0);
                    next_done = next_done.min(now + us);
                }
            }
            let horizon = next_done.min(pending_arrival);
            assert!(horizon.is_finite(), "simulation cannot progress (all rates zero)");
            let dt = horizon - now;
            if let Some((rec, scope)) = tel.as_mut() {
                let mut link_rate = vec![0f64; self.links.len()];
                for (i, &f) in active.iter().enumerate() {
                    for &l in &self.flows[f].path {
                        link_rate[l] += rates[i];
                        link_bytes[l] += rates[i] * 1000.0 * dt;
                    }
                }
                for (l, &rate) in link_rate.iter().enumerate() {
                    let cap = self.links[l].capacity_gbps;
                    let util = if cap > 0.0 { rate / cap } else { 0.0 };
                    rec.counter_sample(pid, &format!("{scope}.link{l}.utilization"), now, util);
                }
            }
            for (i, &f) in active.iter().enumerate() {
                let moved = rates[i] * 1000.0 * dt;
                let fl = &mut self.flows[f];
                fl.bytes_remaining = (fl.bytes_remaining - moved).max(0.0);
                if fl.bytes_remaining <= EPS.max(1e-6 * moved) {
                    fl.bytes_remaining = 0.0;
                    fl.finish_us = Some(horizon + fl.latency_us);
                }
            }
            now = horizon;
        }
        let finish_us: Vec<f64> =
            // lint:allow(P1) — the progress loop above cannot exit until every flow's finish_us is set; a silent default would fabricate a makespan
            self.flows.iter().map(|f| f.finish_us.expect("finished")).collect();
        let makespan_us = finish_us.iter().copied().fold(0.0, f64::max);
        if let Some((rec, scope)) = tel.as_mut() {
            for (f, fl) in self.flows.iter().enumerate() {
                let done = fl.finish_us.unwrap_or(makespan_us);
                let tid = rec.thread(pid, &format!("flow{f}"));
                rec.span(pid, tid, "flow", &format!("flow{f}"), fl.start_us, done);
                rec.observe(&format!("{scope}.flow_us"), done - fl.start_us);
            }
            rec.counter_add(&format!("{scope}.flows"), self.flows.len() as u64);
            if makespan_us > 0.0 {
                for (l, &bytes) in link_bytes.iter().enumerate() {
                    let cap = self.links[l].capacity_gbps;
                    if cap > 0.0 {
                        rec.gauge_set(
                            &format!("{scope}.link{l}.utilization"),
                            bytes / (cap * 1000.0 * makespan_us),
                        );
                    }
                }
            }
        }
        SimReport { finish_us, makespan_us }
    }
}

/// Progressive-filling max-min allocation over `links` for flows following
/// `paths`. Shared by [`FlowSim::max_min_rates`] and the chaos engine
/// ([`crate::chaos::ChaosSim`]) so the two cannot drift: identical inputs
/// produce bit-identical rates, which is what makes the empty-`LinkSchedule`
/// chaos run byte-identical to [`FlowSim::run`].
///
/// A link with zero remaining capacity (e.g. a failed link) becomes the
/// bottleneck for every flow crossing it, freezing those flows at rate 0.
pub(crate) fn max_min_rates_for(links: &[Link], paths: &[&[LinkId]]) -> Vec<f64> {
    let mut rates = vec![0f64; paths.len()];
    let mut remaining_cap: Vec<f64> = links.iter().map(|l| l.capacity_gbps).collect();
    let mut unfrozen: Vec<bool> = paths.iter().map(|p| !p.is_empty()).collect();
    // Per-link index of crossing flows (positions into `paths`), plus a
    // live count of still-unfrozen flows per link.
    let mut on_link: Vec<Vec<usize>> = vec![Vec::new(); links.len()];
    let mut count = vec![0usize; links.len()];
    for (i, path) in paths.iter().enumerate() {
        for &l in *path {
            on_link[l].push(i);
            count[l] += 1;
        }
    }
    // Progressive filling: repeatedly saturate the link with the lowest
    // fair share and freeze its flows. Flows with an empty path
    // (pure-latency messages) are handled by the caller.
    loop {
        let mut bottleneck: Option<(LinkId, f64)> = None;
        for (l, &c) in count.iter().enumerate() {
            if c > 0 {
                let fair = remaining_cap[l] / c as f64;
                if bottleneck.is_none_or(|(_, bf)| fair < bf) {
                    bottleneck = Some((l, fair));
                }
            }
        }
        let Some((bl, fair)) = bottleneck else { break };
        for &i in &on_link[bl] {
            if unfrozen[i] {
                rates[i] = fair;
                unfrozen[i] = false;
                for &l in paths[i] {
                    remaining_cap[l] = (remaining_cap[l] - fair).max(0.0);
                    count[l] -= 1;
                }
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_link(cap: f64) -> FlowSim {
        FlowSim::new(vec![Link { capacity_gbps: cap }])
    }

    #[test]
    fn single_flow_time() {
        let mut sim = one_link(50.0);
        sim.add_flow(vec![0], 1e6, 0.0, 3.0); // 1 MB at 50 GB/s = 20 µs
        let r = sim.run();
        assert!((r.finish_us[0] - 23.0).abs() < 1e-6, "{}", r.finish_us[0]);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut sim = one_link(50.0);
        sim.add_flow(vec![0], 1e6, 0.0, 0.0);
        sim.add_flow(vec![0], 1e6, 0.0, 0.0);
        let r = sim.run();
        assert!((r.makespan_us - 40.0).abs() < 1e-6);
    }

    #[test]
    fn short_flow_releases_bandwidth() {
        let mut sim = one_link(100.0);
        sim.add_flow(vec![0], 1e6, 0.0, 0.0); // long
        sim.add_flow(vec![0], 0.5e6, 0.0, 0.0); // short
        let r = sim.run();
        // Phase 1: both at 50 GB/s until short (0.5 MB) finishes at 10 µs.
        // Long has 0.5 MB left, now at 100 GB/s: +5 µs.
        assert!((r.finish_us[1] - 10.0).abs() < 1e-6, "{}", r.finish_us[1]);
        assert!((r.finish_us[0] - 15.0).abs() < 1e-6, "{}", r.finish_us[0]);
    }

    #[test]
    fn max_min_textbook_example() {
        // Links A(10), B(20). Flow1 uses A+B, flow2 uses A, flow3 uses B.
        // Max-min: A splits 5/5; flow3 gets B's remainder 15.
        let mut sim =
            FlowSim::new(vec![Link { capacity_gbps: 10.0 }, Link { capacity_gbps: 20.0 }]);
        sim.add_flow(vec![0, 1], 1.0, 0.0, 0.0);
        sim.add_flow(vec![0], 1.0, 0.0, 0.0);
        sim.add_flow(vec![1], 1.0, 0.0, 0.0);
        let rates = sim.max_min_rates(&[0, 1, 2]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
        assert!((rates[2] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn delayed_arrival() {
        let mut sim = one_link(50.0);
        sim.add_flow(vec![0], 1e6, 100.0, 0.0);
        let r = sim.run();
        assert!((r.finish_us[0] - 120.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_is_pure_latency() {
        let mut sim = one_link(50.0);
        sim.add_flow(vec![0], 0.0, 5.0, 2.8);
        let r = sim.run();
        assert!((r.finish_us[0] - 7.8).abs() < 1e-9);
    }

    #[test]
    fn bytes_conserved_under_contention() {
        // n flows of b bytes over one c GB/s link take exactly n*b/c.
        let mut sim = one_link(40.0);
        for _ in 0..7 {
            sim.add_flow(vec![0], 2e6, 0.0, 0.0);
        }
        let r = sim.run();
        let expect = 7.0 * 2e6 / (40.0 * 1000.0);
        assert!((r.makespan_us - expect).abs() < 1e-6, "{} vs {expect}", r.makespan_us);
    }

    #[test]
    fn disjoint_flows_run_in_parallel() {
        let mut sim =
            FlowSim::new(vec![Link { capacity_gbps: 10.0 }, Link { capacity_gbps: 10.0 }]);
        sim.add_flow(vec![0], 1e6, 0.0, 0.0);
        sim.add_flow(vec![1], 1e6, 0.0, 0.0);
        let r = sim.run();
        assert!((r.makespan_us - 100.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_path_panics() {
        let mut sim = one_link(1.0);
        sim.add_flow(vec![3], 1.0, 0.0, 0.0);
    }

    #[test]
    fn run_traced_matches_run_and_emits_flow_spans() {
        let build = || {
            let mut sim = one_link(100.0);
            sim.add_flow(vec![0], 1e6, 0.0, 0.0);
            sim.add_flow(vec![0], 0.5e6, 0.0, 0.0);
            sim
        };
        let plain = build().run();
        let mut rec = Recorder::new();
        let traced = build().run_traced(&mut rec, "net");
        assert_eq!(plain, traced);
        let spans: Vec<_> = rec.events().iter().filter(|e| e.ph == "X").collect();
        assert_eq!(spans.len(), 2, "one span per flow");
        assert_eq!(spans[0].name, "flow0");
        assert!((spans[0].dur - 15.0).abs() < 1e-6);
        assert_eq!(rec.counters()["net.flows"], 2);
        // Time-average utilization on the single saturated link is 1.0.
        let util = rec.snapshot().gauges["net.link0.utilization"];
        assert!((util - 1.0).abs() < 1e-6, "{util}");
        assert!(rec.histogram("net.flow_us").is_some());
        // Rate-change horizons: [0, 10) both flows, [10, 15) one — two samples.
        let samples = rec.events().iter().filter(|e| e.ph == "C").count();
        assert_eq!(samples, 2);
    }

    #[test]
    fn run_traced_disabled_records_nothing() {
        let mut sim = one_link(50.0);
        sim.add_flow(vec![0], 1e6, 0.0, 3.0);
        let mut rec = Recorder::disabled();
        let r = sim.run_traced(&mut rec, "net");
        assert!((r.finish_us[0] - 23.0).abs() < 1e-6);
        assert!(rec.events().is_empty());
        assert!(rec.counters().is_empty());
    }

    #[test]
    fn staggered_arrivals_interleave() {
        let mut sim = one_link(10.0);
        sim.add_flow(vec![0], 1e6, 0.0, 0.0); // alone for 50 µs
        sim.add_flow(vec![0], 1e6, 50.0, 0.0);
        let r = sim.run();
        // f0: 50 µs alone (0.5 MB) + shares 10 GB/s for remaining 0.5 MB at
        // 5 GB/s = 100 µs -> finishes at 150. f1: 0.5 MB at 5 (100 µs), then
        // 0.5 MB at 10 (50 µs) -> 200.
        assert!((r.finish_us[0] - 150.0).abs() < 1e-6, "{}", r.finish_us[0]);
        assert!((r.finish_us[1] - 200.0).abs() < 1e-6, "{}", r.finish_us[1]);
    }
}
