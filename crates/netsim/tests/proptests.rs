//! Property-based tests for the flow simulator: fairness invariants and
//! conservation laws.

use dsv3_netsim::{FlowSim, Link};
use proptest::prelude::*;

/// Random small network + flows.
fn arb_net() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<usize>, f64)>)> {
    (2usize..8).prop_flat_map(|n_links| {
        let links = prop::collection::vec(1.0f64..100.0, n_links);
        let flows = prop::collection::vec(
            (
                prop::collection::btree_set(0..n_links, 1..=n_links.min(4))
                    .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
                1e3f64..1e7,
            ),
            1..12,
        );
        (links, flows)
    })
}

proptest! {
    /// Max-min allocation never oversubscribes a link, gives every flow a
    /// positive rate, and saturates at least one link per flow (bottleneck
    /// property).
    #[test]
    fn max_min_invariants((caps, flows) in arb_net()) {
        let mut sim = FlowSim::new(caps.iter().map(|&c| Link { capacity_gbps: c }).collect());
        for (path, bytes) in &flows {
            sim.add_flow(path.clone(), *bytes, 0.0, 0.0);
        }
        let active: Vec<usize> = (0..flows.len()).collect();
        let rates = sim.max_min_rates(&active);
        // Per-link load ≤ capacity.
        let mut load = vec![0f64; caps.len()];
        for (i, (path, _)) in flows.iter().enumerate() {
            prop_assert!(rates[i] > 0.0, "flow {i} starved");
            for &l in path {
                load[l] += rates[i];
            }
        }
        for (l, (&used, &cap)) in load.iter().zip(&caps).enumerate() {
            prop_assert!(used <= cap * (1.0 + 1e-9), "link {l} oversubscribed: {used} > {cap}");
        }
        // Bottleneck property: every flow crosses ≥1 link that is saturated.
        for (path, _) in &flows {
            let saturated = path.iter().any(|&l| load[l] >= caps[l] * (1.0 - 1e-6));
            prop_assert!(saturated, "flow without a saturated bottleneck");
        }
    }

    /// The simulation conserves bytes: makespan ≥ the lower bound implied by
    /// the busiest link, and every flow finishes no earlier than its own
    /// solo transfer time.
    #[test]
    fn completion_bounds((caps, flows) in arb_net()) {
        let mut sim = FlowSim::new(caps.iter().map(|&c| Link { capacity_gbps: c }).collect());
        for (path, bytes) in &flows {
            sim.add_flow(path.clone(), *bytes, 0.0, 0.0);
        }
        let report = sim.run();
        // Lower bound per link: total bytes crossing it / capacity.
        let mut per_link = vec![0f64; caps.len()];
        for (path, bytes) in &flows {
            for &l in path {
                per_link[l] += bytes;
            }
        }
        let lb = per_link
            .iter()
            .zip(&caps)
            .map(|(b, c)| b / (c * 1000.0))
            .fold(0f64, f64::max);
        prop_assert!(report.makespan_us >= lb - 1e-6, "{} < {lb}", report.makespan_us);
        for (i, (path, bytes)) in flows.iter().enumerate() {
            let solo = path
                .iter()
                .map(|&l| bytes / (caps[l] * 1000.0))
                .fold(0f64, f64::max);
            prop_assert!(report.finish_us[i] >= solo - 1e-6);
        }
    }

    /// The dynamics are linear in time: scaling every flow's bytes by α
    /// scales every finish time by exactly α.
    ///
    /// (Note: per-flow *monotonicity* under added contention is genuinely
    /// false for max-min dynamics — an extra flow can re-shape bottlenecks
    /// so that some existing flow finishes earlier — so we do not assert it.)
    #[test]
    fn scale_invariance((caps, flows) in arb_net(), alpha in 0.1f64..10.0) {
        let build = |scale: f64| {
            let mut sim = FlowSim::new(caps.iter().map(|&c| Link { capacity_gbps: c }).collect());
            for (path, bytes) in &flows {
                sim.add_flow(path.clone(), bytes * scale, 0.0, 0.0);
            }
            sim.run()
        };
        let base = build(1.0);
        let scaled = build(alpha);
        for (a, b) in base.finish_us.iter().zip(&scaled.finish_us) {
            prop_assert!((b - a * alpha).abs() <= a * alpha * 1e-9 + 1e-9, "{b} vs {}", a * alpha);
        }
    }
}
