//! Property-based tests for the flow simulator: fairness invariants and
//! conservation laws, with and without failed (zero-capacity) links.

use dsv3_netsim::chaos::{ChaosConfig, LinkFlap, LinkSchedule, ReroutePolicy, RetransmitConfig};
use dsv3_netsim::{ChaosSim, FlowSim, Link};
use proptest::prelude::*;

/// Random small network + flows.
fn arb_net() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<usize>, f64)>)> {
    (2usize..8).prop_flat_map(|n_links| {
        let links = prop::collection::vec(1.0f64..100.0, n_links);
        let flows = prop::collection::vec(
            (
                prop::collection::btree_set(0..n_links, 1..=n_links.min(4))
                    .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
                1e3f64..1e7,
            ),
            1..12,
        );
        (links, flows)
    })
}

proptest! {
    /// Max-min allocation never oversubscribes a link, gives every flow a
    /// positive rate, and saturates at least one link per flow (bottleneck
    /// property).
    #[test]
    fn max_min_invariants((caps, flows) in arb_net()) {
        let mut sim = FlowSim::new(caps.iter().map(|&c| Link { capacity_gbps: c }).collect());
        for (path, bytes) in &flows {
            sim.add_flow(path.clone(), *bytes, 0.0, 0.0);
        }
        let active: Vec<usize> = (0..flows.len()).collect();
        let rates = sim.max_min_rates(&active);
        // Per-link load ≤ capacity.
        let mut load = vec![0f64; caps.len()];
        for (i, (path, _)) in flows.iter().enumerate() {
            prop_assert!(rates[i] > 0.0, "flow {i} starved");
            for &l in path {
                load[l] += rates[i];
            }
        }
        for (l, (&used, &cap)) in load.iter().zip(&caps).enumerate() {
            prop_assert!(used <= cap * (1.0 + 1e-9), "link {l} oversubscribed: {used} > {cap}");
        }
        // Bottleneck property: every flow crosses ≥1 link that is saturated.
        for (path, _) in &flows {
            let saturated = path.iter().any(|&l| load[l] >= caps[l] * (1.0 - 1e-6));
            prop_assert!(saturated, "flow without a saturated bottleneck");
        }
    }

    /// The simulation conserves bytes: makespan ≥ the lower bound implied by
    /// the busiest link, and every flow finishes no earlier than its own
    /// solo transfer time.
    #[test]
    fn completion_bounds((caps, flows) in arb_net()) {
        let mut sim = FlowSim::new(caps.iter().map(|&c| Link { capacity_gbps: c }).collect());
        for (path, bytes) in &flows {
            sim.add_flow(path.clone(), *bytes, 0.0, 0.0);
        }
        let report = sim.run();
        // Lower bound per link: total bytes crossing it / capacity.
        let mut per_link = vec![0f64; caps.len()];
        for (path, bytes) in &flows {
            for &l in path {
                per_link[l] += bytes;
            }
        }
        let lb = per_link
            .iter()
            .zip(&caps)
            .map(|(b, c)| b / (c * 1000.0))
            .fold(0f64, f64::max);
        prop_assert!(report.makespan_us >= lb - 1e-6, "{} < {lb}", report.makespan_us);
        for (i, (path, bytes)) in flows.iter().enumerate() {
            let solo = path
                .iter()
                .map(|&l| bytes / (caps[l] * 1000.0))
                .fold(0f64, f64::max);
            prop_assert!(report.finish_us[i] >= solo - 1e-6);
        }
    }

    /// Max-min fairness with *failed* links in the fabric: links whose
    /// capacity is forced to zero behave as dead wires. `add_flow` accepts
    /// paths crossing them (no capacity assert), the allocation gives such
    /// flows exactly rate 0 instead of starving others, no live link is
    /// oversubscribed, and every flow that did get bandwidth still has a
    /// saturated bottleneck on its path.
    #[test]
    fn max_min_with_dead_links(
        (caps, flows) in arb_net(),
        dead_mask in prop::collection::vec(0u8..2, 8),
    ) {
        let effective: Vec<f64> = caps
            .iter()
            .enumerate()
            .map(|(l, &c)| if dead_mask[l % dead_mask.len()] == 1 { 0.0 } else { c })
            .collect();
        let mut sim =
            FlowSim::new(effective.iter().map(|&c| Link { capacity_gbps: c }).collect());
        for (path, bytes) in &flows {
            // Must not panic even when the path crosses a dead link.
            sim.add_flow(path.clone(), *bytes, 0.0, 0.0);
        }
        let active: Vec<usize> = (0..flows.len()).collect();
        let rates = sim.max_min_rates(&active);
        let mut load = vec![0f64; effective.len()];
        for (i, (path, _)) in flows.iter().enumerate() {
            let crosses_dead = path.iter().any(|&l| effective[l] == 0.0);
            if crosses_dead {
                prop_assert!(rates[i] == 0.0, "flow {i} crosses a dead link but got {}", rates[i]);
            } else {
                prop_assert!(rates[i] > 0.0, "flow {i} starved on an all-live path");
            }
            for &l in path {
                load[l] += rates[i];
            }
        }
        for (l, (&used, &cap)) in load.iter().zip(&effective).enumerate() {
            prop_assert!(used <= cap * (1.0 + 1e-9) + 1e-12, "link {l}: {used} > {cap}");
        }
        for (i, (path, _)) in flows.iter().enumerate() {
            if rates[i] > 0.0 {
                let saturated =
                    path.iter().any(|&l| load[l] >= effective[l] * (1.0 - 1e-6));
                prop_assert!(saturated, "flow {i} got rate without a saturated bottleneck");
            }
        }
    }

    /// The chaos engine conserves bytes under arbitrary failure schedules:
    /// for every flow `sent ≈ delivered + lost-and-resent`, every flow
    /// either completes or strands, and completed flows deliver their full
    /// byte count (the retransmit + backoff loop neither loses nor invents
    /// data).
    #[test]
    fn chaos_conserves_bytes_under_arbitrary_schedules(
        (caps, flows) in arb_net(),
        flaps in prop::collection::vec(
            (0usize..8, 0.0f64..500.0, 10.0f64..2_000.0),
            0..5,
        ),
        policy_pick in 0u8..3,
        max_retries in 1u32..5,
    ) {
        let mut sim =
            ChaosSim::new(caps.iter().map(|&c| Link { capacity_gbps: c }).collect());
        let expected: Vec<f64> = flows.iter().map(|(_, b)| *b).collect();
        for (i, (path, bytes)) in flows.iter().enumerate() {
            // Give alternating flows a two-path ECMP set (path + reversed
            // path) so every policy's re-pick logic gets exercised.
            let mut paths = vec![path.clone()];
            if i % 2 == 1 && path.len() > 1 {
                let mut alt = path.clone();
                alt.reverse();
                paths.push(alt);
            }
            sim.add_flow(paths, *bytes, 0.0, 0.0);
        }
        let schedule = LinkSchedule {
            flaps: flaps
                .iter()
                .map(|&(l, down_at_us, repair_us)| LinkFlap {
                    link: l % caps.len(),
                    down_at_us,
                    repair_us,
                })
                .collect(),
        };
        let policy = match policy_pick {
            0 => ReroutePolicy::Stall,
            1 => ReroutePolicy::StaticRehash { seed: 7 },
            _ => ReroutePolicy::Adaptive,
        };
        let cfg = ChaosConfig {
            schedule,
            policy,
            retransmit: RetransmitConfig { max_retries, ..RetransmitConfig::default() },
            deadline_us: None,
        };
        let report = sim.run(&cfg);
        prop_assert!(report.bytes_balanced(&expected, 1e-5));
        prop_assert_eq!(report.completed + report.stranded, flows.len());
        for (f, &bytes) in report.flows.iter().zip(&expected) {
            prop_assert!(f.finish_us.is_some() != f.stranded_us.is_some());
            prop_assert!(f.delivered_bytes <= bytes * (1.0 + 1e-6) + 1e-9);
            // The engine snaps `remaining` to zero when within 1e-6 of a
            // chunk, so delivered may nominally exceed sent by that slack.
            prop_assert!(f.sent_bytes + 1e-5 * bytes.max(1.0) >= f.delivered_bytes);
        }
    }

    /// The dynamics are linear in time: scaling every flow's bytes by α
    /// scales every finish time by exactly α.
    ///
    /// (Note: per-flow *monotonicity* under added contention is genuinely
    /// false for max-min dynamics — an extra flow can re-shape bottlenecks
    /// so that some existing flow finishes earlier — so we do not assert it.)
    #[test]
    fn scale_invariance((caps, flows) in arb_net(), alpha in 0.1f64..10.0) {
        let build = |scale: f64| {
            let mut sim = FlowSim::new(caps.iter().map(|&c| Link { capacity_gbps: c }).collect());
            for (path, bytes) in &flows {
                sim.add_flow(path.clone(), bytes * scale, 0.0, 0.0);
            }
            sim.run()
        };
        let base = build(1.0);
        let scaled = build(alpha);
        for (a, b) in base.finish_us.iter().zip(&scaled.finish_us) {
            prop_assert!((b - a * alpha).abs() <= a * alpha * 1e-9 + 1e-9, "{b} vs {}", a * alpha);
        }
    }
}
