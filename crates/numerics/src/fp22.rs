//! The FP22 accumulation register format of Hopper tensor cores.
//!
//! §3.1 of the paper: "Addition results are accumulated to FP22 registers
//! (1 sign bit, 8 exponent bits, and 13 mantissa bits)." FP22 therefore has
//! the dynamic range of `f32` but only 13 fraction bits, which is the root
//! cause of the accumulation-precision concern for large-K FP8 GEMMs.

use serde::{Deserialize, Serialize};

/// Number of explicit fraction bits kept by an FP22 register.
pub const FP22_MANTISSA_BITS: u32 = 13;

/// A value stored in a Hopper-style FP22 accumulation register.
///
/// Internally kept as an `f64` that is always exactly representable with 13
/// fraction bits (plus f32's 8-bit exponent range), so arithmetic can be
/// performed in `f64` and re-canonicalized.
///
/// ```
/// use dsv3_numerics::Fp22;
///
/// let a = Fp22::from_f64(1.0);
/// // Adding an ulp-of-f32-sized value is lost at 13 mantissa bits:
/// let b = a + 2f64.powi(-15);
/// assert_eq!(b.to_f64(), 1.0);
/// // ...but a 2^-13-sized value survives.
/// let c = a + 2f64.powi(-13);
/// assert!(c.to_f64() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Fp22(f64);

impl Fp22 {
    /// Zero register.
    #[must_use]
    pub fn new() -> Self {
        Self(0.0)
    }

    /// Round `x` into FP22 (round-to-nearest-even at 13 fraction bits,
    /// f32-like exponent range with saturation to f32's max finite binade).
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        Self(round_to_mantissa_bits(x, FP22_MANTISSA_BITS))
    }

    /// The stored value.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.0
    }
}

impl std::ops::Add<f64> for Fp22 {
    type Output = Self;

    /// `self + x`, rounded back into FP22.
    fn add(self, x: f64) -> Self {
        Self::from_f64(self.0 + x)
    }
}

impl From<f64> for Fp22 {
    fn from(x: f64) -> Self {
        Self::from_f64(x)
    }
}

impl From<Fp22> for f64 {
    fn from(x: Fp22) -> f64 {
        x.to_f64()
    }
}

impl std::fmt::Display for Fp22 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Round `x` to `bits` explicit fraction bits (round-to-nearest-even),
/// preserving the exponent. Infinities, NaN and zero pass through.
#[must_use]
pub fn round_to_mantissa_bits(x: f64, bits: u32) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let e = exponent_of(x);
    let scale = 2f64.powi(e - bits as i32);
    (x / scale).round_ties_even() * scale
}

/// Truncate `x` toward zero at `bits` explicit fraction bits relative to the
/// binade of `reference_exponent` (used by the tensor-core alignment step).
#[must_use]
pub fn truncate_at_exponent(x: f64, reference_exponent: i32, bits: u32) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let scale = 2f64.powi(reference_exponent - bits as i32);
    (x / scale).trunc() * scale
}

/// Floor of log2(|x|) for finite nonzero `x`.
#[must_use]
pub fn exponent_of(x: f64) -> i32 {
    let mut e = x.abs().log2().floor() as i32;
    // Guard against log2 imprecision at binade edges.
    let a = x.abs();
    if 2f64.powi(e + 1) <= a {
        e += 1;
    } else if 2f64.powi(e) > a {
        e -= 1;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp22_keeps_13_bits() {
        let x = 1.0 + 2f64.powi(-13);
        assert_eq!(Fp22::from_f64(x).to_f64(), x);
        let y = 1.0 + 2f64.powi(-14);
        // Ties to even: 1.0 + 2^-14 is halfway between 1.0 and 1.0+2^-13;
        // even mantissa is 1.0.
        assert_eq!(Fp22::from_f64(y).to_f64(), 1.0);
    }

    #[test]
    fn fp22_add_small_lost() {
        let mut acc = Fp22::from_f64(4096.0);
        for _ in 0..1000 {
            acc = acc + 0.2; // 0.2 < ulp(4096)@13bits = 0.5
        }
        assert_eq!(acc.to_f64(), 4096.0, "sub-ulp additions are lost entirely");
    }

    #[test]
    fn fp32_would_not_lose_them() {
        let mut acc = 4096.0f32;
        for _ in 0..1000 {
            acc += 0.2;
        }
        assert!((f64::from(acc) - 4296.0).abs() < 1.0);
    }

    #[test]
    fn exponent_of_edges() {
        assert_eq!(exponent_of(1.0), 0);
        assert_eq!(exponent_of(0.5), -1);
        assert_eq!(exponent_of(2.0), 1);
        assert_eq!(exponent_of(-3.0), 1);
        assert_eq!(exponent_of(448.0), 8);
    }

    #[test]
    fn truncate_is_toward_zero() {
        // reference exponent 0, 4 bits: grid step 1/16
        assert_eq!(truncate_at_exponent(0.99, 0, 4), 0.9375);
        assert_eq!(truncate_at_exponent(-0.99, 0, 4), -0.9375);
    }

    #[test]
    fn zero_and_specials_pass_through() {
        assert_eq!(round_to_mantissa_bits(0.0, 13), 0.0);
        assert!(round_to_mantissa_bits(f64::NAN, 13).is_nan());
        assert_eq!(round_to_mantissa_bits(f64::INFINITY, 13), f64::INFINITY);
    }
}
