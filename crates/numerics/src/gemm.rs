//! Emulated fine-grained FP8 GEMM (the DeepGEMM computation model).
//!
//! `C = A × B` where `A` (activations, `M×K`) carries 1×128 tile scales along
//! K and `B` (weights, `K×N`) carries 128×128 block scales. For every
//! 128-long K chunk the tensor core accumulates 4 × (K=32) aligned/truncated
//! partial sums into an FP22 register; the partial result is then moved to
//! CUDA cores, multiplied by the combined dequantization scale, and added to
//! the main accumulator. The main accumulator is FP32 in the DeepGEMM
//! strategy, or FP22 when modelling "keep everything in the tensor core
//! registers" (the behaviour the paper warns about).

use crate::matrix::Matrix;
use crate::minifloat::Format;
use crate::quant::{quantize_per_tensor, BlockQuantized, TileQuantized};
use crate::tensorcore::{align_truncate_sum, MMA_K};
use crate::Fp22;
use serde::{Deserialize, Serialize};

/// Where the *scaled* per-chunk partial sums accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MainAccumulator {
    /// FP32 CUDA-core accumulation (DeepGEMM / paper's recommendation).
    Fp32,
    /// FP22 accumulation end-to-end (models low-precision-only hardware).
    Fp22,
    /// Exact f64 accumulation (oracle; isolates quantization error from
    /// accumulation error).
    Exact,
}

/// Configuration of the emulated FP8 GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fp8GemmConfig {
    /// Element storage format (E4M3 in DeepSeek-V3 training).
    pub format: Format,
    /// K-chunk length between dequantize+promote steps (128 in DeepSeek-V3).
    pub chunk: usize,
    /// Main accumulator behaviour.
    pub main_acc: MainAccumulator,
}

impl Default for Fp8GemmConfig {
    fn default() -> Self {
        Self { format: Format::E4M3, chunk: 128, main_acc: MainAccumulator::Fp32 }
    }
}

/// Result of an emulated GEMM together with its inputs' quantization.
#[derive(Debug, Clone)]
pub struct Fp8Gemm {
    /// Quantized activations.
    pub a: TileQuantized,
    /// Quantized weights.
    pub b: BlockQuantized,
    cfg: Fp8GemmConfig,
}

impl Fp8Gemm {
    /// Quantize `a` (activations) and `b` (weights) according to `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or `cfg.chunk` is 0 or not a
    /// multiple of [`MMA_K`].
    #[must_use]
    pub fn prepare(a: &Matrix, b: &Matrix, cfg: Fp8GemmConfig) -> Self {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        assert!(
            cfg.chunk > 0 && cfg.chunk.is_multiple_of(MMA_K),
            "chunk must be a positive multiple of {MMA_K}"
        );
        let qa = TileQuantized::quantize(a, cfg.format, cfg.chunk);
        let qb = BlockQuantized::quantize(b, cfg.format, cfg.chunk);
        Self { a: qa, b: qb, cfg }
    }

    /// Execute the emulated GEMM.
    #[must_use]
    pub fn execute(&self) -> Matrix {
        let (m, k, n) = (self.a.rows, self.a.cols, self.b.cols);
        let chunk = self.cfg.chunk;
        let mut out = Matrix::zeros(m, n);
        let mut prod = vec![0f64; chunk];
        for i in 0..m {
            for j in 0..n {
                let mut acc_f32 = 0f32;
                let mut acc_fp22 = Fp22::new();
                let mut acc_exact = 0f64;
                let mut c0 = 0usize;
                while c0 < k {
                    let c1 = (c0 + chunk).min(k);
                    // Tensor-core portion: FP22 accumulation of aligned,
                    // truncated 32-product sums over this chunk.
                    let mut partial = Fp22::new();
                    for (kk, p) in (c0..c1).zip(prod.iter_mut()) {
                        *p = self.a.codes[i * k + kk] * self.b.codes[kk * n + j];
                    }
                    for sub in prod[..c1 - c0].chunks(MMA_K) {
                        partial = partial + align_truncate_sum(sub);
                    }
                    // CUDA-core portion: dequantize and promote.
                    let scale = self.a.scale_at(i, c0) * self.b.scale_at(c0, j);
                    let scaled = partial.to_f64() * scale;
                    match self.cfg.main_acc {
                        MainAccumulator::Fp32 => acc_f32 += scaled as f32,
                        MainAccumulator::Fp22 => acc_fp22 = acc_fp22 + scaled,
                        MainAccumulator::Exact => acc_exact += scaled,
                    }
                    c0 = c1;
                }
                let v = match self.cfg.main_acc {
                    MainAccumulator::Fp32 => f64::from(acc_f32),
                    MainAccumulator::Fp22 => acc_fp22.to_f64(),
                    MainAccumulator::Exact => acc_exact,
                };
                out.set(i, j, v as f32);
            }
        }
        out
    }
}

/// Convenience: quantize + execute in one call.
///
/// ```
/// use dsv3_numerics::{gemm::{gemm_fp8, Fp8GemmConfig}, Matrix};
///
/// let a = Matrix::random(4, 256, 1.0, 1);
/// let b = Matrix::random(256, 4, 1.0, 2);
/// let c = gemm_fp8(&a, &b, Fp8GemmConfig::default());
/// assert_eq!((c.rows, c.cols), (4, 4));
/// ```
#[must_use]
pub fn gemm_fp8(a: &Matrix, b: &Matrix, cfg: Fp8GemmConfig) -> Matrix {
    Fp8Gemm::prepare(a, b, cfg).execute()
}

/// Coarse baseline: per-tensor quantization of both operands, exact
/// accumulation. Isolates the benefit of fine-grained scales.
#[must_use]
pub fn gemm_fp8_per_tensor(a: &Matrix, b: &Matrix, format: Format) -> Matrix {
    let qa = quantize_per_tensor(a, format);
    let qb = quantize_per_tensor(b, format);
    qa.matmul(&qb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::relative_frobenius_error;

    #[test]
    fn small_exact_case() {
        // Values exactly representable in E4M3 with scale amax/448 chosen so
        // codes stay exact: use powers of two.
        let a = Matrix::from_vec(1, 4, vec![1.0, 2.0, 4.0, 8.0]);
        let b = Matrix::from_vec(4, 1, vec![1.0, 1.0, 1.0, 1.0]);
        let c = gemm_fp8(&a, &b, Fp8GemmConfig::default());
        assert!((f64::from(c.get(0, 0)) - 15.0).abs() < 1e-9, "{}", c.get(0, 0));
    }

    #[test]
    fn fp32_main_acc_close_to_reference() {
        let a = Matrix::random(8, 512, 1.0, 11);
        let b = Matrix::random(512, 8, 1.0, 12);
        let reference = a.matmul(&b);
        let c = gemm_fp8(&a, &b, Fp8GemmConfig::default());
        let err = relative_frobenius_error(&reference.data, &c.data);
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn accumulator_quality_ordering() {
        // Compare accumulation strategies on *identical quantized inputs*:
        // the Exact accumulator isolates quantization error, so deviations
        // from it are purely accumulation error. Positive operands make the
        // accumulator grow with K, which is where FP22's 13-bit mantissa
        // visibly loses increments.
        let mut a = Matrix::random(4, 8192, 1.0, 21);
        let mut b = Matrix::random(8192, 4, 1.0, 22);
        for v in a.data.iter_mut().chain(b.data.iter_mut()) {
            *v = v.abs() + 0.05;
        }
        let run = |acc: MainAccumulator| {
            gemm_fp8(&a, &b, Fp8GemmConfig { main_acc: acc, ..Fp8GemmConfig::default() })
        };
        let exact_q = run(MainAccumulator::Exact);
        let e_fp32 = relative_frobenius_error(&exact_q.data, &run(MainAccumulator::Fp32).data);
        let e_fp22 = relative_frobenius_error(&exact_q.data, &run(MainAccumulator::Fp22).data);
        assert!(e_fp22 > 4.0 * e_fp32, "fp22 {e_fp22} must dwarf fp32 {e_fp32}");
        // And the quantized-exact result itself stays close to the true GEMM.
        let reference = a.matmul(&b);
        let e_quant = relative_frobenius_error(&reference.data, &exact_q.data);
        assert!(e_quant < 0.05, "quantization error {e_quant}");
    }

    #[test]
    fn fine_grained_beats_per_tensor_with_outliers() {
        // The outlier forces a per-tensor scale so large that ordinary
        // activations fall below E4M3's subnormal range and flush to zero.
        let mut a = Matrix::random(8, 256, 5e-4, 31);
        a.set(0, 0, 300.0); // activation outlier
        let b = Matrix::random(256, 8, 1.0, 32);
        let reference = a.matmul(&b);
        let fine = gemm_fp8(&a, &b, Fp8GemmConfig::default());
        let coarse = gemm_fp8_per_tensor(&a, &b, Format::E4M3);
        // Judge on the rows that do NOT contain the outlier: with a single
        // per-tensor scale their activations flush below E4M3's subnormal
        // range, so the coarse result loses them entirely, while the
        // whole-matrix Frobenius norm would be masked by the outlier row.
        let tail = |m: &Matrix| m.data[m.cols..].to_vec();
        let e_fine = relative_frobenius_error(&tail(&reference), &tail(&fine));
        let e_coarse = relative_frobenius_error(&tail(&reference), &tail(&coarse));
        assert!(e_fine < 0.2 * e_coarse, "fine {e_fine} vs coarse {e_coarse}");
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn bad_chunk_panics() {
        let a = Matrix::zeros(1, 4);
        let b = Matrix::zeros(4, 1);
        let _ = gemm_fp8(&a, &b, Fp8GemmConfig { chunk: 48, ..Fp8GemmConfig::default() });
    }

    #[test]
    fn ragged_k_handled() {
        let a = Matrix::random(3, 200, 1.0, 41); // 200 = 128 + 72
        let b = Matrix::random(200, 3, 1.0, 42);
        let reference = a.matmul(&b);
        let c = gemm_fp8(&a, &b, Fp8GemmConfig::default());
        let err = relative_frobenius_error(&reference.data, &c.data);
        assert!(err < 0.05, "relative error {err}");
    }
}
