//! Checksum-based GEMM integrity (§6.1.2).
//!
//! The paper asks hardware for "advanced error detection mechanisms beyond
//! traditional ECC … such as checksum-based validation" against silent data
//! corruption. This module implements the classic algorithm-based fault
//! tolerance (ABFT) scheme for `C = A·B`: a row-checksum vector of `A` and a
//! column-checksum vector of `B` are carried through the multiplication, so
//! any single corrupted element of `C` is detected *and located* (column by
//! the row-checksum residual, row by the column-checksum residual) and can
//! be corrected by recomputing one dot product.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Checksums accompanying a protected GEMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmChecksums {
    /// `(1ᵀA)·B` — the expected column sums of `C` (length `N`).
    pub col_sums: Vec<f64>,
    /// `A·(B·1)` — the expected row sums of `C` (length `M`).
    pub row_sums: Vec<f64>,
    /// Detection threshold in absolute units, derived from the operands'
    /// magnitudes and the accumulation length.
    pub threshold: f64,
}

/// Outcome of an integrity audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IntegrityReport {
    /// All residuals within threshold.
    Clean,
    /// A single element is implicated: `(row, col)` with the residual pair.
    Corrupted {
        /// Implicated row.
        row: usize,
        /// Implicated column.
        col: usize,
        /// Row-checksum residual at `col`.
        col_residual: f64,
        /// Column-checksum residual at `row`.
        row_residual: f64,
    },
    /// Residuals exceed threshold in a pattern a single flip cannot explain
    /// (multiple corruptions, or a corrupted checksum).
    MultipleOrUnlocatable {
        /// Columns whose checksum residual trips the threshold.
        bad_cols: Vec<usize>,
        /// Rows whose checksum residual trips the threshold.
        bad_rows: Vec<usize>,
    },
}

/// Multiply `A·B` (f64-accumulated reference path) and produce checksums.
///
/// ```
/// use dsv3_numerics::{integrity::{protected_matmul, audit, IntegrityReport}, Matrix};
///
/// let a = Matrix::random(8, 16, 1.0, 1);
/// let b = Matrix::random(16, 8, 1.0, 2);
/// let (c, sums) = protected_matmul(&a, &b);
/// assert_eq!(audit(&c, &sums), IntegrityReport::Clean);
/// ```
///
/// # Panics
///
/// Panics if inner dimensions disagree.
#[must_use]
pub fn protected_matmul(a: &Matrix, b: &Matrix) -> (Matrix, GemmChecksums) {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let c = a.matmul(b);
    let checksums = checksums_for(a, b);
    (c, checksums)
}

/// Compute the ABFT checksums for operands `A`, `B`.
#[must_use]
pub fn checksums_for(a: &Matrix, b: &Matrix) -> GemmChecksums {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    // 1ᵀA (length K), then (1ᵀA)·B (length N).
    let mut a_colsum = vec![0f64; a.cols];
    for r in 0..a.rows {
        for (k, sum) in a_colsum.iter_mut().enumerate() {
            *sum += f64::from(a.get(r, k));
        }
    }
    let col_sums: Vec<f64> = (0..b.cols)
        .map(|j| (0..b.rows).map(|k| a_colsum[k] * f64::from(b.get(k, j))).sum())
        .collect();
    // B·1 (length K), then A·(B·1) (length M).
    let mut b_rowsum = vec![0f64; b.rows];
    for (k, sum) in b_rowsum.iter_mut().enumerate() {
        for j in 0..b.cols {
            *sum += f64::from(b.get(k, j));
        }
    }
    let row_sums: Vec<f64> = (0..a.rows)
        .map(|i| (0..a.cols).map(|k| f64::from(a.get(i, k)) * b_rowsum[k]).sum())
        .collect();
    // Float-noise threshold: f32 outputs re-summed in f64 differ from the
    // f64 checksums by ~(M or N)·K·amax²·2^-24.
    let amax_a = a.data.iter().map(|v| v.abs() as f64).fold(0.0, f64::max);
    let amax_b = b.data.iter().map(|v| v.abs() as f64).fold(0.0, f64::max);
    let dim = a.rows.max(b.cols) as f64;
    let threshold = (dim * a.cols as f64).max(1.0) * amax_a * amax_b * 2f64.powi(-24) * 64.0;
    GemmChecksums { col_sums, row_sums, threshold: threshold.max(1e-30) }
}

/// Audit `c` against its checksums.
#[must_use]
pub fn audit(c: &Matrix, sums: &GemmChecksums) -> IntegrityReport {
    // NB: a residual can be NaN (e.g. an exponent flip turning an element
    // into NaN/Inf); the explicit NaN arm keeps those flagged.
    let bad_cols: Vec<(usize, f64)> = (0..c.cols)
        .filter_map(|j| {
            let actual: f64 = (0..c.rows).map(|i| f64::from(c.get(i, j))).sum();
            let res = actual - sums.col_sums[j];
            (res.is_nan() || res.abs() > sums.threshold).then_some((j, res))
        })
        .collect();
    let bad_rows: Vec<(usize, f64)> = (0..c.rows)
        .filter_map(|i| {
            let actual: f64 = (0..c.cols).map(|j| f64::from(c.get(i, j))).sum();
            let res = actual - sums.row_sums[i];
            (res.is_nan() || res.abs() > sums.threshold).then_some((i, res))
        })
        .collect();
    match (bad_rows.as_slice(), bad_cols.as_slice()) {
        ([], []) => IntegrityReport::Clean,
        ([(row, rres)], [(col, cres)])
            if !rres.is_finite()
                || !cres.is_finite()
                || (rres - cres).abs()
                    <= 4.0 * sums.threshold + 1e-6 * rres.abs().max(cres.abs()) =>
        {
            IntegrityReport::Corrupted {
                row: *row,
                col: *col,
                col_residual: *cres,
                row_residual: *rres,
            }
        }
        _ => IntegrityReport::MultipleOrUnlocatable {
            bad_cols: bad_cols.into_iter().map(|(j, _)| j).collect(),
            bad_rows: bad_rows.into_iter().map(|(i, _)| i).collect(),
        },
    }
}

/// Repair a located corruption by recomputing the implicated dot product.
///
/// # Panics
///
/// Panics if indices are out of bounds or shapes disagree.
pub fn correct(c: &mut Matrix, a: &Matrix, b: &Matrix, row: usize, col: usize) {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let mut acc = 0f64;
    for k in 0..a.cols {
        acc += f64::from(a.get(row, k)) * f64::from(b.get(k, col));
    }
    c.set(row, col, acc as f32);
}

/// Flip bit `bit` of element `(r, c)` — a silent-data-corruption injector.
///
/// # Panics
///
/// Panics if `bit ≥ 32` or the index is out of bounds.
pub fn inject_bit_flip(m: &mut Matrix, r: usize, c: usize, bit: u32) {
    assert!(bit < 32, "f32 has 32 bits");
    let v = m.get(r, c);
    m.set(r, c, f32::from_bits(v.to_bits() ^ (1 << bit)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn operands(seed: u64) -> (Matrix, Matrix) {
        (Matrix::random(24, 48, 1.0, seed), Matrix::random(48, 16, 1.0, seed + 1))
    }

    #[test]
    fn clean_gemm_passes() {
        let (a, b) = operands(1);
        let (c, sums) = protected_matmul(&a, &b);
        assert_eq!(audit(&c, &sums), IntegrityReport::Clean);
    }

    #[test]
    fn single_flip_detected_located_and_corrected() {
        let (a, b) = operands(2);
        let (mut c, sums) = protected_matmul(&a, &b);
        let pristine = c.clone();
        inject_bit_flip(&mut c, 5, 7, 23); // mantissa MSB: sizable change
        match audit(&c, &sums) {
            IntegrityReport::Corrupted { row, col, .. } => {
                assert_eq!((row, col), (5, 7));
                correct(&mut c, &a, &b, row, col);
                assert_eq!(audit(&c, &sums), IntegrityReport::Clean);
                assert!((c.get(5, 7) - pristine.get(5, 7)).abs() < 1e-5);
            }
            other => panic!("expected located corruption, got {other:?}"),
        }
    }

    #[test]
    fn exponent_flip_is_caught() {
        let (a, b) = operands(3);
        let (mut c, sums) = protected_matmul(&a, &b);
        inject_bit_flip(&mut c, 0, 0, 27); // exponent bit: huge change
        assert!(matches!(audit(&c, &sums), IntegrityReport::Corrupted { row: 0, col: 0, .. }));
    }

    #[test]
    fn two_flips_reported_as_multiple() {
        let (a, b) = operands(4);
        let (mut c, sums) = protected_matmul(&a, &b);
        inject_bit_flip(&mut c, 1, 2, 26);
        inject_bit_flip(&mut c, 9, 12, 26);
        match audit(&c, &sums) {
            IntegrityReport::MultipleOrUnlocatable { bad_cols, bad_rows } => {
                assert_eq!(bad_cols, vec![2, 12]);
                assert_eq!(bad_rows, vec![1, 9]);
            }
            other => panic!("expected multiple, got {other:?}"),
        }
    }

    #[test]
    fn tiny_low_bit_flips_below_threshold_are_tolerated() {
        // Bit 0 of a mantissa changes the value by ~1 ulp — below the float
        // noise floor, indistinguishable from rounding, and harmless.
        let (a, b) = operands(5);
        let (mut c, sums) = protected_matmul(&a, &b);
        inject_bit_flip(&mut c, 3, 3, 0);
        assert_eq!(audit(&c, &sums), IntegrityReport::Clean);
    }

    #[test]
    fn no_false_positives_across_seeds() {
        for seed in 10..40 {
            let (a, b) = operands(seed);
            let (c, sums) = protected_matmul(&a, &b);
            assert_eq!(audit(&c, &sums), IntegrityReport::Clean, "seed {seed}");
        }
    }

    #[test]
    fn checksum_overhead_is_linear_not_quadratic() {
        // The checksum computation is O(MK + KN + MN), far below the
        // O(MNK) multiply — the premise that makes ABFT practical.
        let (a, b) = operands(6);
        let sums = checksums_for(&a, &b);
        assert_eq!(sums.col_sums.len(), b.cols);
        assert_eq!(sums.row_sums.len(), a.rows);
    }
}
