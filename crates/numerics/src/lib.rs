//! Software-emulated low-precision numerics for the DeepSeek-V3 reproduction.
//!
//! The paper's low-precision findings (§3 of the ISCA '25 insights paper) are
//! properties of *arithmetic*, not of silicon: the limited FP22 accumulation
//! precision of Hopper tensor cores, the benefit of fine-grained (1×128 tile /
//! 128×128 block) quantization, and the quality of the LogFMT logarithmic
//! communication format. This crate reproduces all of them bit-accurately in
//! software:
//!
//! * [`minifloat`] — a generic binary minifloat codec plus the concrete
//!   formats used by the paper: [`minifloat::F8E4M3`], [`minifloat::F8E5M2`],
//!   [`minifloat::E5M6`] and [`minifloat::Bf16`].
//! * [`fp22`] — the FP22 (1 sign / 8 exponent / 13 mantissa) accumulation
//!   register format of Hopper tensor cores.
//! * [`tensorcore`] — an emulation of the Hopper FP8 MMA pipeline: per-32
//!   product exponent alignment with 13-bit fraction truncation, FP22 partial
//!   accumulation, and the DeepGEMM-style periodic promotion into FP32.
//! * [`quant`] — fine-grained quantization: 1×128 tile-wise scales for
//!   activations and 128×128 block-wise scales for weights.
//! * [`gemm`] — reference f32 GEMM and the emulated fine-grained FP8 GEMM.
//! * [`logfmt`] — the LogFMT-nBit logarithmic block format (§3.2).
//! * [`metrics`] — quantization/GEMM error metrics (relative error, RMSE,
//!   SQNR, bias).
//!
//! # Example
//!
//! ```
//! use dsv3_numerics::minifloat::F8E4M3;
//!
//! let x = F8E4M3::from_f32(0.33);
//! // E4M3 can represent 0.33 only approximately, but round-trips its own
//! // values exactly.
//! let y = F8E4M3::from_f32(x.to_f32());
//! assert_eq!(x.to_bits(), y.to_bits());
//! ```

#![forbid(unsafe_code)]

pub mod fp22;
pub mod gemm;
pub mod integrity;
pub mod logfmt;
pub mod matrix;
pub mod metrics;
pub mod minifloat;
pub mod quant;
pub mod tensorcore;

pub use fp22::Fp22;
pub use matrix::Matrix;
pub use minifloat::{Bf16, E5M6, F8E4M3, F8E5M2};
