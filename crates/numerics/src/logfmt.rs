//! LogFMT-nBit: the logarithmic block floating-point communication format
//! of §3.2.
//!
//! Per 1×128 tile, the encoder takes logs of the absolute values, maps the
//! tile's `[min, max]` log range onto `2^(n-1) - 1` codes (code 0 is reserved
//! for exact zero; the leading bit is the sign), and rounds **in linear
//! space** — the property the paper found necessary for unbiased activation
//! quantization. The representable range is clamped so that
//! `min ≥ max − ln(2³²)`, matching an E5-like exponent span.

use serde::{Deserialize, Serialize};

/// Default tile length (matches the paper's 1×128 implementation).
pub const LOGFMT_TILE: usize = 128;

/// One encoded LogFMT tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogFmtTile {
    /// Total bits per element, including the sign bit (paper: 8 or 10).
    pub n_bits: u32,
    /// Natural log of the smallest representable magnitude (code 1).
    pub min_log: f64,
    /// Log-space step between consecutive codes.
    pub step: f64,
    /// Per-element `(sign, code)`; code 0 encodes zero.
    pub codes: Vec<(bool, u32)>,
}

impl LogFmtTile {
    /// Largest magnitude code for an `n_bits` element.
    #[must_use]
    pub fn max_code(n_bits: u32) -> u32 {
        (1 << (n_bits - 1)) - 1
    }

    /// Encode a tile of values.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits < 3` (needs at least a sign bit and two magnitude
    /// codes) or `values` is empty.
    #[must_use]
    pub fn encode(values: &[f32], n_bits: u32) -> Self {
        assert!(n_bits >= 3, "LogFMT needs at least 3 bits");
        assert!(!values.is_empty(), "cannot encode an empty tile");
        let max_code = Self::max_code(n_bits);
        let logs: Vec<Option<f64>> = values
            .iter()
            .map(|&v| if v == 0.0 || !v.is_finite() { None } else { Some(f64::from(v.abs()).ln()) })
            .collect();
        let mut max_log = f64::NEG_INFINITY;
        let mut min_log = f64::INFINITY;
        for l in logs.iter().flatten() {
            max_log = max_log.max(*l);
            min_log = min_log.min(*l);
        }
        if !max_log.is_finite() {
            // All-zero tile.
            return Self {
                n_bits,
                min_log: 0.0,
                step: 0.0,
                codes: values.iter().map(|_| (false, 0)).collect(),
            };
        }
        // Constrain the range to ~E5 dynamic range: min ≥ max − ln(2^32).
        let range_cap = 32.0 * std::f64::consts::LN_2;
        min_log = min_log.max(max_log - range_cap);
        let denom = (max_code - 1).max(1);
        let step = if max_log > min_log { (max_log - min_log) / f64::from(denom) } else { 0.0 };
        let codes = values
            .iter()
            .map(|&v| {
                if v == 0.0 || !v.is_finite() {
                    (v.is_sign_negative(), 0)
                } else {
                    let sign = v < 0.0;
                    let mag = f64::from(v.abs());
                    (sign, Self::nearest_code_linear(mag, min_log, step, max_code))
                }
            })
            .collect();
        Self { n_bits, min_log, step, codes }
    }

    /// Find the code whose decoded magnitude is nearest to `mag` in linear
    /// space (including code 0 = zero for tiny clamped values).
    fn nearest_code_linear(mag: f64, min_log: f64, step: f64, max_code: u32) -> u32 {
        if step == 0.0 {
            // Degenerate tile: single magnitude. Code 1 decodes exactly to it;
            // but a value far below (possible only via range clamp) may round
            // to zero.
            let dec = min_log.exp();
            return if mag < dec / 2.0 { 0 } else { 1 };
        }
        let k_real = (mag.ln() - min_log) / step + 1.0;
        let lo = k_real.floor().clamp(0.0, f64::from(max_code)) as u32;
        let hi = k_real.ceil().clamp(0.0, f64::from(max_code)) as u32;
        let dec = |k: u32| -> f64 {
            if k == 0 {
                0.0
            } else {
                (min_log + step * f64::from(k - 1)).exp()
            }
        };
        // Linear-space nearest among {lo, hi}; lo may be 0 (zero code).
        if (mag - dec(lo)).abs() <= (mag - dec(hi)).abs() {
            lo
        } else {
            hi
        }
    }

    /// Decode back to values.
    #[must_use]
    pub fn decode(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&(sign, k)| {
                if k == 0 {
                    0.0
                } else {
                    let mag = (self.min_log + self.step * f64::from(k - 1)).exp();
                    if sign {
                        -(mag as f32)
                    } else {
                        mag as f32
                    }
                }
            })
            .collect()
    }
}

/// Quantize a whole tensor through LogFMT tile-by-tile (tiles of
/// [`LOGFMT_TILE`] elements; the last tile may be shorter).
#[must_use]
pub fn logfmt_quantize(values: &[f32], n_bits: u32) -> Vec<f32> {
    let mut out = Vec::with_capacity(values.len());
    for tile in values.chunks(LOGFMT_TILE) {
        out.extend(LogFmtTile::encode(tile, n_bits).decode());
    }
    out
}

/// Simulated wall-clock overhead factor of fusing LogFMT encode/decode with
/// an all-to-all kernel on Hopper-class hardware (§3.2.1 reports 50–100%
/// overhead from log/exp throughput and register pressure).
///
/// The model: each element costs one `log` on encode and one `exp` on decode,
/// executed on SFUs whose throughput relative to the copy path is
/// `sfu_relative_throughput` (≈ 1/4 on Hopper), plus a register-pressure
/// multiplier.
#[must_use]
pub fn fused_codec_overhead(sfu_relative_throughput: f64, register_pressure_factor: f64) -> f64 {
    assert!(sfu_relative_throughput > 0.0);
    (2.0 / sfu_relative_throughput / 8.0) * register_pressure_factor
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activations(n: usize, seed: u64) -> Vec<f32> {
        // Log-normal-ish activations, the regime LogFMT targets.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let u =
                    (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
                let v = (u * 6.0 - 3.0).exp(); // magnitudes across ~e^±3
                let sign = if state & 2 == 0 { 1.0 } else { -1.0 };
                (sign * v) as f32
            })
            .collect()
    }

    #[test]
    fn min_max_decode_exactly() {
        let vals = activations(128, 1);
        let tile = LogFmtTile::encode(&vals, 8);
        let dec = tile.decode();
        let amax = vals.iter().map(|v| v.abs()).fold(0f32, f32::max);
        let amin = vals.iter().map(|v| v.abs()).filter(|v| *v > 0.0).fold(f32::MAX, f32::min);
        let dmax = dec.iter().map(|v| v.abs()).fold(0f32, f32::max);
        let dmin = dec.iter().map(|v| v.abs()).filter(|v| *v > 0.0).fold(f32::MAX, f32::min);
        assert!((amax / dmax - 1.0).abs() < 1e-5, "{amax} vs {dmax}");
        assert!((amin / dmin - 1.0).abs() < 1e-5, "{amin} vs {dmin}");
    }

    #[test]
    fn zeros_roundtrip_exactly() {
        let mut vals = activations(64, 2);
        vals[3] = 0.0;
        vals[10] = 0.0;
        let dec = LogFmtTile::encode(&vals, 8).decode();
        assert_eq!(dec[3], 0.0);
        assert_eq!(dec[10], 0.0);
    }

    #[test]
    fn signs_preserved() {
        let vals = activations(128, 3);
        let dec = LogFmtTile::encode(&vals, 8).decode();
        for (a, b) in vals.iter().zip(&dec) {
            if *a != 0.0 && *b != 0.0 {
                assert_eq!(a.signum(), b.signum());
            }
        }
    }

    #[test]
    fn all_zero_tile() {
        let vals = vec![0.0f32; 128];
        let dec = LogFmtTile::encode(&vals, 8).decode();
        assert!(dec.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn constant_tile_exact() {
        let vals = vec![2.5f32; 100];
        let dec = LogFmtTile::encode(&vals, 8).decode();
        for d in dec {
            assert!((d - 2.5).abs() < 1e-6);
        }
    }

    #[test]
    fn more_bits_less_error() {
        let vals = activations(4096, 4);
        let err = |n: u32| -> f64 {
            logfmt_quantize(&vals, n)
                .iter()
                .zip(&vals)
                .map(|(q, v)| (f64::from(q - v)).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(err(10) < err(8));
        assert!(err(8) < err(6));
    }

    #[test]
    fn range_clamp_respected() {
        // Extreme dynamic range: tiny values collapse to zero or the min
        // code, but the range never exceeds ln(2^32).
        let vals = vec![1e20f32, 1e-20, 3.0, -0.5];
        let tile = LogFmtTile::encode(&vals, 8);
        let span = tile.step * f64::from(LogFmtTile::max_code(8) - 1);
        assert!(span <= 32.0 * std::f64::consts::LN_2 + 1e-9);
    }

    #[test]
    fn quantization_is_nearly_unbiased_in_linear_space() {
        // §3.2: rounding in linear space keeps activation quantization
        // unbiased — the mean of quantized values tracks the true mean.
        let vals: Vec<f32> = activations(65536, 5).iter().map(|v| v.abs()).collect();
        let q = logfmt_quantize(&vals, 8);
        let mean: f64 = vals.iter().map(|v| f64::from(*v)).sum::<f64>() / vals.len() as f64;
        let qmean: f64 = q.iter().map(|v| f64::from(*v)).sum::<f64>() / q.len() as f64;
        let bias = (qmean - mean).abs() / mean;
        assert!(bias < 0.002, "relative bias {bias}");
    }

    #[test]
    fn overhead_model_in_paper_band() {
        // Hopper-ish parameters land in the 50–100% band reported in §3.2.1.
        let oh = fused_codec_overhead(0.25, 0.7);
        assert!((0.5..=1.0).contains(&oh), "{oh}");
    }
}
