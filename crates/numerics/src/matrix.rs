//! A minimal dense row-major `f32` matrix used across the reproduction.
//!
//! This is deliberately a teaching-grade container: contiguous storage,
//! explicit indexing, an exact `f64`-accumulated reference matmul, and a
//! deterministic pseudo-random filler. It is the substrate both for the
//! numerics experiments (quantized GEMM comparisons) and for the functional
//! model components (MLA forward, MoE experts, tiny trainer).

use serde::{Deserialize, Serialize};

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Row-major element storage, `rows * cols` long.
    pub data: Vec<f32>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Build from a generator over `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Self { data, rows, cols }
    }

    /// Deterministic pseudo-random matrix with entries roughly N(0, scale²)
    /// (sum of uniforms), keyed by `seed`.
    #[must_use]
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let x = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (x >> 11) as f64 / (1u64 << 53) as f64 // [0,1)
        };
        Self::from_fn(rows, cols, |_, _| {
            let g: f64 = (0..6).map(|_| next()).sum::<f64>() - 3.0; // ~N(0,0.5²)·2
            (g * f64::from(scale)) as f32
        })
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Reference matmul `self × rhs` with `f64` accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0f64;
                for k in 0..self.cols {
                    acc += f64::from(self.get(i, k)) * f64::from(rhs.get(k, j));
                }
                out.set(i, j, acc as f32);
            }
        }
        out
    }

    /// Element-wise `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise scaling by `s`.
    #[must_use]
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::random(4, 4, 1.0, 7);
        let eye = Matrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::random(3, 5, 1.0, 1);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let a = Matrix::random(8, 8, 1.0, 42);
        let b = Matrix::random(8, 8, 1.0, 42);
        let c = Matrix::random(8, 8, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_is_roughly_centered() {
        let a = Matrix::random(100, 100, 1.0, 3);
        let mean: f64 = a.data.iter().map(|v| f64::from(*v)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn rows_views() {
        let mut a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.row(1), &[3., 4.]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.get(0, 1), 9.0);
    }
}
