//! Error metrics used by the quantization and GEMM experiments.

/// Root-mean-square error between `reference` and `approx`.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn rmse(reference: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty input");
    let s: f64 =
        reference.iter().zip(approx).map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2)).sum();
    (s / reference.len() as f64).sqrt()
}

/// ‖reference − approx‖_F / ‖reference‖_F.
///
/// Returns the absolute Frobenius norm of `approx` if the reference is all
/// zeros.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn relative_frobenius_error(reference: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    let num: f64 = reference
        .iter()
        .zip(approx)
        .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = reference.iter().map(|a| f64::from(*a).powi(2)).sum::<f64>().sqrt();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Signal-to-quantization-noise ratio in dB: `10·log10(‖x‖² / ‖x−q‖²)`.
///
/// Returns `f64::INFINITY` for an exact reconstruction.
///
/// # Panics
///
/// Panics if lengths differ or the signal is all zeros.
#[must_use]
pub fn sqnr_db(reference: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    let signal: f64 = reference.iter().map(|a| f64::from(*a).powi(2)).sum();
    assert!(signal > 0.0, "all-zero signal");
    let noise: f64 =
        reference.iter().zip(approx).map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2)).sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Mean signed error (positive = approx overshoots); the unbiasedness probe
/// for LogFMT.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn mean_bias(reference: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty input");
    reference.iter().zip(approx).map(|(a, b)| f64::from(*b) - f64::from(*a)).sum::<f64>()
        / reference.len() as f64
}

/// Root-mean-square *relative* error over nonzero reference elements:
/// `sqrt(mean(((approx-ref)/ref)²))`. Captures precision across the whole
/// magnitude distribution rather than being dominated by the largest
/// elements.
///
/// # Panics
///
/// Panics if lengths differ or every reference element is zero.
#[must_use]
pub fn relative_rmse(reference: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    let mut acc = 0f64;
    let mut n = 0usize;
    for (a, b) in reference.iter().zip(approx) {
        if *a != 0.0 {
            let r = (f64::from(*b) - f64::from(*a)) / f64::from(*a);
            acc += r * r;
            n += 1;
        }
    }
    assert!(n > 0, "all-zero reference");
    (acc / n as f64).sqrt()
}

/// Largest absolute element-wise error.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn max_abs_error(reference: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    reference
        .iter()
        .zip(approx)
        .map(|(a, b)| (f64::from(*a) - f64::from(*b)).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_metrics() {
        let x = [1.0f32, -2.0, 3.0];
        assert_eq!(rmse(&x, &x), 0.0);
        assert_eq!(relative_frobenius_error(&x, &x), 0.0);
        assert_eq!(sqnr_db(&x, &x), f64::INFINITY);
        assert_eq!(mean_bias(&x, &x), 0.0);
        assert_eq!(max_abs_error(&x, &x), 0.0);
    }

    #[test]
    fn known_values() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert!((rmse(&a, &b) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(max_abs_error(&a, &b), 4.0);
        assert_eq!(mean_bias(&a, &b), 3.5);
    }

    #[test]
    fn sqnr_scales_as_expected() {
        let x = [1.0f32; 100];
        let noisy_small: Vec<f32> = x.iter().map(|v| v + 0.001).collect();
        let noisy_big: Vec<f32> = x.iter().map(|v| v + 0.01).collect();
        let s1 = sqnr_db(&x, &noisy_small);
        let s2 = sqnr_db(&x, &noisy_big);
        assert!((s1 - s2 - 20.0).abs() < 0.01, "10x noise = 20dB: {s1} {s2}");
    }

    #[test]
    fn relative_rmse_known() {
        let a = [1.0f32, 0.0, 2.0];
        let b = [1.1f32, 5.0, 2.0]; // zero ref element excluded
        let expect = ((0.1f64 / 1.0).powi(2) / 2.0).sqrt();
        assert!((relative_rmse(&a, &b) - expect).abs() < 1e-6);
    }

    #[test]
    fn zero_reference_relative_error() {
        let z = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert_eq!(relative_frobenius_error(&z, &b), 5.0);
    }
}
