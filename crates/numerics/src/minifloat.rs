//! Generic binary minifloat codec and the concrete formats used by the paper.
//!
//! A [`Format`] describes a sign/exponent/mantissa layout. [`Format::encode`]
//! converts an `f64` to the nearest representable value (round-to-nearest,
//! ties-to-even) and returns its bit pattern; [`Format::decode`] converts a
//! bit pattern back to `f64`. Saturating behaviour on overflow is the one
//! used by FP8 training frameworks (values beyond the max finite magnitude
//! clamp to it rather than becoming infinity/NaN), which is also what
//! DeepSeek-V3's quantizer relies on.

use serde::{Deserialize, Serialize};

/// Layout and semantics of a binary minifloat format.
///
/// The format always has one sign bit, `exp_bits` exponent bits with bias
/// `2^(exp_bits-1) - 1`, and `man_bits` mantissa bits. Subnormals are
/// supported. `finite_only` selects OCP-FP8-E4M3-style semantics where the
/// top exponent code is reused for normal values (only the all-ones
/// exponent+mantissa pattern is NaN and there is no infinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Format {
    /// Number of exponent bits.
    pub exp_bits: u32,
    /// Number of explicit mantissa (fraction) bits.
    pub man_bits: u32,
    /// If true, the top exponent code encodes normal numbers (E4M3 style);
    /// if false, it encodes infinity/NaN (IEEE style, E5M2/BF16).
    pub finite_only: bool,
}

impl Format {
    /// The OCP 8-bit E4M3 format: 4 exponent bits, 3 mantissa bits, no
    /// infinities, maximum finite value 448.
    pub const E4M3: Format = Format { exp_bits: 4, man_bits: 3, finite_only: true };
    /// The OCP 8-bit E5M2 format: 5 exponent bits, 2 mantissa bits, IEEE
    /// special values, maximum finite value 57344.
    pub const E5M2: Format = Format { exp_bits: 5, man_bits: 2, finite_only: false };
    /// The 12-bit E5M6 format mentioned in §3.2 as a candidate combine-stage
    /// precision.
    pub const E5M6: Format = Format { exp_bits: 5, man_bits: 6, finite_only: false };
    /// bfloat16: 8 exponent bits, 7 mantissa bits.
    pub const BF16: Format = Format { exp_bits: 8, man_bits: 7, finite_only: false };

    /// Total storage width in bits (including the sign bit).
    #[must_use]
    pub const fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Exponent bias.
    #[must_use]
    pub const fn bias(&self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    const fn max_biased_exp(&self) -> i32 {
        // Highest biased exponent usable for normal numbers.
        let top = (1 << self.exp_bits) - 1;
        if self.finite_only {
            top
        } else {
            top - 1
        }
    }

    /// Largest finite representable magnitude.
    #[must_use]
    pub fn max_finite(&self) -> f64 {
        let e = self.max_biased_exp() - self.bias();
        let mut man_max = (1u64 << self.man_bits) - 1;
        if self.finite_only {
            // The all-ones exponent + all-ones mantissa pattern is NaN, so
            // the largest finite value has mantissa 111...0.
            man_max &= !1;
        }
        let frac = 1.0 + man_max as f64 / (1u64 << self.man_bits) as f64;
        frac * 2f64.powi(e)
    }

    /// Smallest positive normal magnitude.
    #[must_use]
    pub fn min_normal(&self) -> f64 {
        2f64.powi(1 - self.bias())
    }

    /// Smallest positive subnormal magnitude.
    #[must_use]
    pub fn min_subnormal(&self) -> f64 {
        2f64.powi(1 - self.bias() - self.man_bits as i32)
    }

    /// Encode `x` to the nearest representable value's bit pattern
    /// (round-to-nearest, ties-to-even; magnitudes beyond
    /// [`max_finite`](Self::max_finite) saturate to it).
    #[must_use]
    pub fn encode(&self, x: f64) -> u32 {
        let sign = if x.is_sign_negative() { 1u32 << (self.exp_bits + self.man_bits) } else { 0 };
        if x.is_nan() {
            return sign | self.nan_pattern();
        }
        let mag = x.abs();
        if mag == 0.0 {
            return sign;
        }
        if !self.finite_only && mag.is_infinite() {
            // IEEE-style formats keep infinity.
            let inf = ((1u32 << self.exp_bits) - 1) << self.man_bits;
            return sign | inf;
        }
        // Round first, then saturate: a value that rounds *down* into range
        // must not be clamped prematurely.
        let (e, frac_bits) = self.round_magnitude(mag);
        if e > self.max_biased_exp() || self.frac_overflows(e, frac_bits) {
            return sign | self.max_finite_pattern();
        }
        sign | ((e as u32) << self.man_bits) | frac_bits
    }

    /// True if the rounded value at biased exponent `e` exceeds the format's
    /// largest finite encoding.
    fn frac_overflows(&self, e: i32, frac: u32) -> bool {
        if e < self.max_biased_exp() {
            return false;
        }
        let mut man_max = (1u32 << self.man_bits) - 1;
        if self.finite_only {
            man_max &= !1;
        }
        frac > man_max
    }

    /// Round `mag > 0` to the format's grid, returning (biased exponent,
    /// fraction bits). A biased exponent of 0 means subnormal. May return an
    /// exponent above `max_biased_exp`, which the caller treats as overflow.
    fn round_magnitude(&self, mag: f64) -> (i32, u32) {
        let bias = self.bias();
        // Unbiased exponent of the representable binade containing mag.
        let mut e_unb = mag.log2().floor() as i32;
        // Guard against log2 imprecision at binade edges.
        if 2f64.powi(e_unb + 1) <= mag {
            e_unb += 1;
        } else if 2f64.powi(e_unb) > mag {
            e_unb -= 1;
        }
        let min_unb = 1 - bias;
        let (scale_exp, implicit_one) = if e_unb < min_unb {
            (min_unb, false) // subnormal range
        } else {
            (e_unb, true)
        };
        let frac = mag / 2f64.powi(scale_exp); // in [0,2) normally
        let steps = (1u64 << self.man_bits) as f64;
        let units = frac * steps; // representable values are integers here
        let mut k = round_ties_even(units);
        let mut e = if implicit_one { scale_exp + bias } else { 0 };
        let full = 1u64 << self.man_bits;
        if implicit_one {
            // k in [steps, 2*steps]; 2*steps means carry to next binade.
            if k >= 2 * full {
                e += 1;
                k = full;
            }
            (e, (k - full) as u32)
        } else {
            // Subnormal: k in [0, steps]; steps means promotion to min normal.
            if k >= full {
                (1, (k - full) as u32)
            } else {
                (0, k as u32)
            }
        }
    }

    /// Decode a bit pattern to `f64`. Bits above
    /// [`total_bits`](Self::total_bits) are ignored.
    #[must_use]
    pub fn decode(&self, bits: u32) -> f64 {
        let bits = bits & ((1u32 << self.total_bits()) - 1);
        let sign = if bits >> (self.exp_bits + self.man_bits) & 1 == 1 { -1.0 } else { 1.0 };
        let e = (bits >> self.man_bits) & ((1 << self.exp_bits) - 1);
        let m = bits & ((1 << self.man_bits) - 1);
        let bias = self.bias();
        let top = (1u32 << self.exp_bits) - 1;
        if e == top && !self.finite_only {
            if m == 0 {
                return sign * f64::INFINITY;
            }
            return f64::NAN;
        }
        if self.finite_only && e == top && m == (1 << self.man_bits) - 1 {
            return f64::NAN;
        }
        if e == 0 {
            let frac = m as f64 / (1u64 << self.man_bits) as f64;
            return sign * frac * 2f64.powi(1 - bias);
        }
        let frac = 1.0 + m as f64 / (1u64 << self.man_bits) as f64;
        sign * frac * 2f64.powi(e as i32 - bias)
    }

    fn nan_pattern(&self) -> u32 {
        if self.finite_only {
            // all-ones exponent and mantissa
            (1u32 << (self.exp_bits + self.man_bits)) - 1
        } else {
            let exp = ((1u32 << self.exp_bits) - 1) << self.man_bits;
            exp | 1 // quiet-ish NaN: nonzero mantissa
        }
    }

    fn max_finite_pattern(&self) -> u32 {
        let e = self.max_biased_exp() as u32;
        let mut man_max = (1u32 << self.man_bits) - 1;
        if self.finite_only {
            man_max &= !1;
        }
        (e << self.man_bits) | man_max
    }

    /// Quantize `x` through the format: encode then decode.
    ///
    /// This is the "cast to FP8 and back" primitive used throughout the
    /// quantization and training experiments.
    #[must_use]
    pub fn quantize(&self, x: f64) -> f64 {
        self.decode(self.encode(x))
    }

    /// Number of finite representable values (for diagnostics).
    #[must_use]
    pub fn finite_count(&self) -> u64 {
        let per_sign = ((self.max_biased_exp() as u64) << self.man_bits)
            + if self.finite_only { (1u64 << self.man_bits) - 1 } else { 1u64 << self.man_bits };
        // `per_sign` counts every finite pattern of one sign including zero;
        // +0 and -0 collapse to a single logical value.
        2 * per_sign - 1
    }
}

/// Round to nearest integer with ties-to-even, on a non-negative input.
fn round_ties_even(x: f64) -> u64 {
    let floor = x.floor();
    let diff = x - floor;
    let f = floor as u64;
    if diff > 0.5 || (diff == 0.5 && !f.is_multiple_of(2)) {
        f + 1
    } else {
        f
    }
}

macro_rules! concrete_minifloat {
    ($(#[$doc:meta])* $name:ident, $store:ty, $format:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
        pub struct $name($store);

        impl $name {
            /// The format descriptor for this type.
            pub const FORMAT: Format = $format;

            /// Convert from `f32` with round-to-nearest-even and saturation.
            #[must_use]
            pub fn from_f32(x: f32) -> Self {
                Self(Self::FORMAT.encode(f64::from(x)) as $store)
            }

            /// Convert from `f64` with round-to-nearest-even and saturation.
            #[must_use]
            pub fn from_f64(x: f64) -> Self {
                Self(Self::FORMAT.encode(x) as $store)
            }

            /// Exact value as `f32`.
            #[must_use]
            pub fn to_f32(self) -> f32 {
                Self::FORMAT.decode(u32::from(self.0)) as f32
            }

            /// Exact value as `f64`.
            #[must_use]
            pub fn to_f64(self) -> f64 {
                Self::FORMAT.decode(u32::from(self.0))
            }

            /// Raw bit pattern.
            #[must_use]
            pub fn to_bits(self) -> $store {
                self.0
            }

            /// Construct from a raw bit pattern.
            #[must_use]
            pub fn from_bits(bits: $store) -> Self {
                Self(bits)
            }

            /// Largest finite value of the format.
            #[must_use]
            pub fn max_value() -> f64 {
                Self::FORMAT.max_finite()
            }
        }

        impl From<f32> for $name {
            fn from(x: f32) -> Self {
                Self::from_f32(x)
            }
        }

        impl From<$name> for f32 {
            fn from(x: $name) -> f32 {
                x.to_f32()
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.to_f64())
            }
        }
    };
}

concrete_minifloat!(
    /// An 8-bit OCP E4M3 value (dispatch-stage FP8; max finite 448, no inf).
    F8E4M3, u8, Format::E4M3
);
concrete_minifloat!(
    /// An 8-bit OCP E5M2 value (wider range, 2 mantissa bits; max 57344).
    F8E5M2, u8, Format::E5M2
);
concrete_minifloat!(
    /// A 12-bit E5M6 value, the custom combine-stage candidate from §3.2.
    E5M6, u16, Format::E5M6
);
concrete_minifloat!(
    /// A bfloat16 value (1/8/7).
    Bf16, u16, Format::BF16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4m3_key_values() {
        assert_eq!(Format::E4M3.max_finite(), 448.0);
        assert_eq!(Format::E4M3.min_normal(), 2f64.powi(-6));
        assert_eq!(Format::E4M3.min_subnormal(), 2f64.powi(-9));
    }

    #[test]
    fn e5m2_key_values() {
        assert_eq!(Format::E5M2.max_finite(), 57344.0);
        assert_eq!(Format::E5M2.min_normal(), 2f64.powi(-14));
        assert_eq!(Format::E5M2.min_subnormal(), 2f64.powi(-16));
    }

    #[test]
    fn bf16_matches_f32_truncation_semantics() {
        // BF16 grid values decode exactly.
        for x in [1.0f64, -2.5, 0.15625, 3.0e38, 1e-38] {
            let q = Format::BF16.quantize(x);
            let q2 = Format::BF16.quantize(q);
            assert_eq!(q, q2, "idempotent at {x}");
        }
        assert_eq!(Format::BF16.quantize(1.0), 1.0);
        assert_eq!(Format::BF16.quantize(-2.5), -2.5);
    }

    #[test]
    fn saturation_not_infinity() {
        assert_eq!(F8E4M3::from_f32(1e9).to_f64(), 448.0);
        assert_eq!(F8E4M3::from_f32(-1e9).to_f64(), -448.0);
        assert_eq!(F8E5M2::from_f32(1e9).to_f64(), 57344.0);
    }

    #[test]
    fn zero_and_sign() {
        assert_eq!(F8E4M3::from_f32(0.0).to_f64(), 0.0);
        assert_eq!(F8E4M3::from_f32(-0.0).to_f64(), 0.0);
        assert!(F8E4M3::from_f32(-0.0).to_f64().is_sign_negative());
    }

    #[test]
    fn nan_roundtrip() {
        assert!(F8E4M3::from_f32(f32::NAN).to_f64().is_nan());
        assert!(F8E5M2::from_f32(f32::NAN).to_f64().is_nan());
        assert!(Bf16::from_f32(f32::NAN).to_f64().is_nan());
    }

    #[test]
    fn e5m2_keeps_infinity() {
        assert!(F8E5M2::from_f64(f64::INFINITY).to_f64().is_infinite());
        assert!(Bf16::from_f64(f64::NEG_INFINITY).to_f64() < 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // In E4M3, between 16 and 17 (step 2 at that binade: values are
        // 16,17,... step = 2^(4-3)=2? binade [16,32) step = 16/8 = 2).
        // Representable: 16, 18, 20... midpoint 17 -> ties to even -> 16.
        assert_eq!(Format::E4M3.quantize(17.0), 16.0);
        assert_eq!(Format::E4M3.quantize(19.0), 20.0);
        // Just above midpoint rounds up.
        assert_eq!(Format::E4M3.quantize(17.0001), 18.0);
    }

    #[test]
    fn subnormal_encode_decode() {
        let tiny = 2f64.powi(-9); // E4M3 min subnormal
        assert_eq!(Format::E4M3.quantize(tiny), tiny);
        assert_eq!(Format::E4M3.quantize(tiny / 4.0), 0.0);
        assert_eq!(Format::E4M3.quantize(tiny * 3.0), tiny * 3.0);
    }

    #[test]
    fn subnormal_to_normal_promotion() {
        // Value just below min_normal rounds up into the normal range.
        let mn = Format::E4M3.min_normal();
        let x = mn - Format::E4M3.min_subnormal() / 4.0;
        let q = Format::E4M3.quantize(x);
        assert_eq!(q, mn);
    }

    #[test]
    fn all_e4m3_bit_patterns_roundtrip() {
        for bits in 0u32..=255 {
            let v = Format::E4M3.decode(bits);
            if v.is_nan() {
                continue;
            }
            let back = Format::E4M3.encode(v);
            assert_eq!(
                Format::E4M3.decode(back),
                v,
                "bits {bits:#010b} decoded to {v} then re-encoded to {back:#010b}"
            );
        }
    }

    #[test]
    fn all_e5m2_bit_patterns_roundtrip() {
        for bits in 0u32..=255 {
            let v = Format::E5M2.decode(bits);
            if v.is_nan() {
                continue;
            }
            let back = Format::E5M2.encode(v);
            assert_eq!(Format::E5M2.decode(back), v, "bits {bits:#010b}");
        }
    }

    #[test]
    fn carry_across_binade() {
        // Largest value in a binade rounds up across the binade boundary.
        // E4M3: 15.5 -> between 15 and 16; 15 and 16 both representable,
        // 15.5 ties -> 16 (even mantissa 0).
        assert_eq!(Format::E4M3.quantize(15.5), 16.0);
    }

    #[test]
    fn e5m6_wider_than_e5m2() {
        let x = 1.03;
        let e52 = (Format::E5M2.quantize(x) - x).abs();
        let e56 = (Format::E5M6.quantize(x) - x).abs();
        assert!(e56 < e52);
    }
}
