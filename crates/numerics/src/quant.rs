//! Fine-grained quantization: 1×128 tile-wise scales for activations and
//! 128×128 block-wise scales for weights (§3.1).
//!
//! Each tile/block is scaled so its absolute maximum maps to the format's
//! largest finite value, then cast element-wise. This is exactly the
//! quantization recipe DeepSeek-V3 trains with (and DeepGEMM executes).

use crate::matrix::Matrix;
use crate::minifloat::Format;
use serde::{Deserialize, Serialize};

/// Default tile length along K used by DeepSeek-V3 (1×128 activations,
/// 128×128 weights).
pub const TILE: usize = 128;

/// An activation matrix quantized with per-row 1×`tile` scales.
///
/// ```
/// use dsv3_numerics::{quant::TileQuantized, minifloat::Format, Matrix};
///
/// let m = Matrix::random(2, 256, 1.0, 7);
/// let q = TileQuantized::quantize(&m, Format::E4M3, 128);
/// assert_eq!(q.tiles_per_row(), 2);
/// let err: f32 = m.data.iter().zip(&q.dequantize().data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max);
/// assert!(err < 0.25);
/// ```
///
/// Row-major `rows × cols`; each row is split into `ceil(cols / tile)` tiles,
/// each with its own scale. Values are stored dequantization-ready: the exact
/// value of each FP8 code as `f64` (so GEMM emulation needs no re-decoding),
/// alongside the scale grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileQuantized {
    /// Quantized codes' exact values, in units of the tile scale.
    pub codes: Vec<f64>,
    /// Per-(row, tile) scales, row-major, `rows × n_tiles`.
    pub scales: Vec<f64>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Tile length along the column axis.
    pub tile: usize,
    /// Storage format.
    pub format: Format,
}

impl TileQuantized {
    /// Quantize `m` with 1×`tile` tiles in format `format`.
    ///
    /// # Panics
    ///
    /// Panics if `tile == 0`.
    #[must_use]
    pub fn quantize(m: &Matrix, format: Format, tile: usize) -> Self {
        assert!(tile > 0, "tile length must be positive");
        let n_tiles = m.cols.div_ceil(tile);
        let mut codes = vec![0f64; m.rows * m.cols];
        let mut scales = vec![1f64; m.rows * n_tiles];
        let fmax = format.max_finite();
        for r in 0..m.rows {
            for t in 0..n_tiles {
                let c0 = t * tile;
                let c1 = (c0 + tile).min(m.cols);
                let amax = (c0..c1).map(|c| m.get(r, c).abs() as f64).fold(0.0, f64::max);
                let scale = if amax > 0.0 { amax / fmax } else { 1.0 };
                scales[r * n_tiles + t] = scale;
                for c in c0..c1 {
                    codes[r * m.cols + c] = format.quantize(f64::from(m.get(r, c)) / scale);
                }
            }
        }
        Self { codes, scales, rows: m.rows, cols: m.cols, tile, format }
    }

    /// Number of tiles per row.
    #[must_use]
    pub fn tiles_per_row(&self) -> usize {
        self.cols.div_ceil(self.tile)
    }

    /// Scale of the tile containing column `c` of row `r`.
    #[must_use]
    pub fn scale_at(&self, r: usize, c: usize) -> f64 {
        self.scales[r * self.tiles_per_row() + c / self.tile]
    }

    /// Reconstruct the dequantized matrix.
    #[must_use]
    pub fn dequantize(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.codes[r * self.cols + c] * self.scale_at(r, c);
                m.set(r, c, v as f32);
            }
        }
        m
    }
}

/// A weight matrix quantized with `block × block` scales (128×128 in
/// DeepSeek-V3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockQuantized {
    /// Quantized codes' exact values, in units of the block scale.
    pub codes: Vec<f64>,
    /// Per-(row-block, col-block) scales, row-major.
    pub scales: Vec<f64>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Block edge length.
    pub block: usize,
    /// Storage format.
    pub format: Format,
}

impl BlockQuantized {
    /// Quantize `m` with `block × block` blocks in format `format`.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    #[must_use]
    pub fn quantize(m: &Matrix, format: Format, block: usize) -> Self {
        assert!(block > 0, "block edge must be positive");
        let rb = m.rows.div_ceil(block);
        let cb = m.cols.div_ceil(block);
        let mut codes = vec![0f64; m.rows * m.cols];
        let mut scales = vec![1f64; rb * cb];
        let fmax = format.max_finite();
        for br in 0..rb {
            for bc in 0..cb {
                let r1 = ((br + 1) * block).min(m.rows);
                let c1 = ((bc + 1) * block).min(m.cols);
                let mut amax = 0f64;
                for r in br * block..r1 {
                    for c in bc * block..c1 {
                        amax = amax.max(m.get(r, c).abs() as f64);
                    }
                }
                let scale = if amax > 0.0 { amax / fmax } else { 1.0 };
                scales[br * cb + bc] = scale;
                for r in br * block..r1 {
                    for c in bc * block..c1 {
                        codes[r * m.cols + c] = format.quantize(f64::from(m.get(r, c)) / scale);
                    }
                }
            }
        }
        Self { codes, scales, rows: m.rows, cols: m.cols, block, format }
    }

    /// Number of column blocks.
    #[must_use]
    pub fn col_blocks(&self) -> usize {
        self.cols.div_ceil(self.block)
    }

    /// Scale of the block containing `(r, c)`.
    #[must_use]
    pub fn scale_at(&self, r: usize, c: usize) -> f64 {
        self.scales[(r / self.block) * self.col_blocks() + c / self.block]
    }

    /// Reconstruct the dequantized matrix.
    #[must_use]
    pub fn dequantize(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.codes[r * self.cols + c] * self.scale_at(r, c);
                m.set(r, c, v as f32);
            }
        }
        m
    }
}

/// Per-tensor ("coarse") quantization: one scale for the whole matrix.
/// This is the baseline fine-grained quantization is compared against.
#[must_use]
pub fn quantize_per_tensor(m: &Matrix, format: Format) -> Matrix {
    let amax = m.data.iter().map(|v| v.abs() as f64).fold(0.0, f64::max);
    let scale = if amax > 0.0 { amax / format.max_finite() } else { 1.0 };
    let mut out = Matrix::zeros(m.rows, m.cols);
    for (o, &v) in out.data.iter_mut().zip(&m.data) {
        *o = (format.quantize(f64::from(v) / scale) * scale) as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32).sin() * (1.0 + c as f32 / 7.0))
    }

    #[test]
    fn tile_roundtrip_error_bounded() {
        let m = ramp(4, 300);
        let q = TileQuantized::quantize(&m, Format::E4M3, TILE);
        let d = q.dequantize();
        for r in 0..m.rows {
            for c in 0..m.cols {
                let x = f64::from(m.get(r, c));
                let y = f64::from(d.get(r, c));
                let tol = q.scale_at(r, c) * Format::E4M3.max_finite() / 16.0; // ~2^-4 rel of tile amax
                assert!((x - y).abs() <= tol, "({r},{c}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn block_roundtrip_error_bounded() {
        let m = ramp(200, 200);
        let q = BlockQuantized::quantize(&m, Format::E4M3, TILE);
        let d = q.dequantize();
        let mut max_rel = 0f64;
        for (a, b) in m.data.iter().zip(&d.data) {
            let denom = f64::from(a.abs()).max(1e-3);
            max_rel = max_rel.max(f64::from((a - b).abs()) / denom);
        }
        assert!(max_rel < 0.25, "max relative error {max_rel}");
    }

    #[test]
    fn tile_amax_is_exact() {
        // The element with the tile's max magnitude quantizes exactly to
        // ±max_finite * scale, i.e. round-trips to itself.
        let mut m = Matrix::zeros(1, 128);
        m.set(0, 5, -3.7);
        m.set(0, 100, 1.2);
        let q = TileQuantized::quantize(&m, Format::E4M3, TILE);
        let d = q.dequantize();
        // Exact up to the f32 cast of the reconstruction.
        assert!((f64::from(d.get(0, 5)) + 3.7).abs() < 1e-6);
    }

    #[test]
    fn zero_tile_is_stable() {
        let m = Matrix::zeros(3, 256);
        let q = TileQuantized::quantize(&m, Format::E4M3, TILE);
        assert!(q.dequantize().data.iter().all(|&v| v == 0.0));
        assert!(q.scales.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn fine_grained_beats_per_tensor_on_outliers() {
        // One tile holds a large outlier. Per-tensor scaling pushes the
        // small-magnitude values below E4M3's smallest subnormal (they flush
        // to zero); fine-grained tiles keep every other tile's precision.
        let mut m = ramp(8, 128);
        for v in m.data.iter_mut() {
            *v *= 5e-4;
        }
        m.set(0, 0, 400.0);
        let fine = TileQuantized::quantize(&m, Format::E4M3, TILE).dequantize();
        let coarse = quantize_per_tensor(&m, Format::E4M3);
        let err = |x: &Matrix| -> f64 {
            m.data
                .iter()
                .zip(&x.data)
                .map(|(a, b)| f64::from((a - b) * (a - b)))
                .sum::<f64>()
                .sqrt()
        };
        assert!(err(&fine) < err(&coarse) * 0.5, "fine {} coarse {}", err(&fine), err(&coarse));
    }

    #[test]
    fn ragged_edges_covered() {
        let m = ramp(5, 130); // 130 = 128 + 2 ragged tail
        let q = TileQuantized::quantize(&m, Format::E4M3, TILE);
        assert_eq!(q.tiles_per_row(), 2);
        let d = q.dequantize();
        assert_eq!(d.cols, 130);
        let m2 = ramp(130, 131);
        let b = BlockQuantized::quantize(&m2, Format::E4M3, TILE);
        assert_eq!(b.col_blocks(), 2);
        assert_eq!(b.dequantize().rows, 130);
    }
}
