//! Emulation of the Hopper FP8 tensor-core accumulation pipeline.
//!
//! §3.1 of the paper describes the mechanism precisely: for each group of 32
//! FP8×FP8 mantissa products, the tensor core right-shifts every product to
//! align with the maximum exponent, keeps only the highest 13 fraction bits
//! (truncating the rest), adds them, and accumulates the sum into an FP22
//! register (1/8/13). DeepGEMM works around the resulting error by promoting
//! the FP22 partial sums into FP32 CUDA-core accumulators at a fixed K
//! interval (128 in DeepSeek-V3).
//!
//! [`dot_fp8`] reproduces that pipeline for a K-length dot product under a
//! selectable [`Accumulation`] strategy, which is what the paper's E3
//! experiment (FP8 accumulation error) sweeps.

use crate::fp22::{exponent_of, truncate_at_exponent, Fp22, FP22_MANTISSA_BITS};
use serde::{Deserialize, Serialize};

/// Number of products summed by one emulated tensor-core MMA step.
pub const MMA_K: usize = 32;

/// Accumulation strategy for an FP8 GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Accumulation {
    /// Ideal hardware: every per-32 partial sum lands in an FP32 (here: f64
    /// stand-in rounded to f32) accumulator. This is the "increased
    /// accumulation precision" the paper asks future hardware for.
    Fp32,
    /// Plain Hopper behaviour: all partial sums stay in one FP22 register for
    /// the whole K extent.
    Fp22,
    /// DeepGEMM strategy: FP22 accumulation for `interval` consecutive MACs,
    /// then the partial result is promoted (added) into an FP32 accumulator
    /// and the FP22 register is reset. DeepSeek-V3 uses `interval = 128`.
    Split {
        /// Number of MACs accumulated in FP22 before promotion to FP32.
        interval: usize,
    },
}

impl Accumulation {
    /// The DeepSeek-V3 production setting (promotion every 128 MACs).
    #[must_use]
    pub fn deepseek_default() -> Self {
        Accumulation::Split { interval: 128 }
    }
}

/// One emulated tensor-core step: sum up to [`MMA_K`] exact products after
/// aligning them to the maximum exponent and truncating each to 13 fraction
/// bits.
///
/// `products` are the exact FP8×FP8 products (each FP8×FP8 product is exactly
/// representable in f64, so no rounding has happened before this point).
#[must_use]
pub fn align_truncate_sum(products: &[f64]) -> f64 {
    debug_assert!(products.len() <= MMA_K);
    let max_e =
        products.iter().filter(|p| **p != 0.0 && p.is_finite()).map(|p| exponent_of(*p)).max();
    let Some(max_e) = max_e else {
        return products.iter().sum(); // all zero (or non-finite propagates)
    };
    products.iter().map(|&p| truncate_at_exponent(p, max_e, FP22_MANTISSA_BITS)).sum()
}

/// Emulated FP8 dot product of `a · b` with the given accumulation strategy.
///
/// Inputs are already-quantized FP8 values passed as their exact `f64`
/// values; pairing [`crate::quant`] with this function gives the full
/// fine-grained GEMM. The per-32 alignment/truncation step is applied for
/// every strategy (it is baked into the tensor core); the strategy only
/// controls where partial sums accumulate.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths or a `Split` interval of 0.
#[must_use]
pub fn dot_fp8(a: &[f64], b: &[f64], strategy: Accumulation) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product operands must match");
    let products: Vec<f64> = a.iter().zip(b).map(|(x, y)| x * y).collect();
    dot_products(&products, strategy)
}

/// Same as [`dot_fp8`] but over precomputed exact products. Useful when the
/// caller applies per-tile dequantization scales at promotion time.
#[must_use]
pub fn dot_products(products: &[f64], strategy: Accumulation) -> f64 {
    match strategy {
        Accumulation::Fp32 => {
            let mut acc = 0f32;
            for chunk in products.chunks(MMA_K) {
                acc += align_truncate_sum(chunk) as f32;
            }
            f64::from(acc)
        }
        Accumulation::Fp22 => {
            let mut acc = Fp22::new();
            for chunk in products.chunks(MMA_K) {
                acc = acc + align_truncate_sum(chunk);
            }
            acc.to_f64()
        }
        Accumulation::Split { interval } => {
            assert!(interval > 0, "split interval must be positive");
            let mut main = 0f32;
            let mut partial = Fp22::new();
            let mut macs_in_partial = 0usize;
            for chunk in products.chunks(MMA_K) {
                partial = partial + align_truncate_sum(chunk);
                macs_in_partial += chunk.len();
                if macs_in_partial >= interval {
                    main += partial.to_f64() as f32;
                    partial = Fp22::new();
                    macs_in_partial = 0;
                }
            }
            if macs_in_partial > 0 {
                main += partial.to_f64() as f32;
            }
            f64::from(main)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minifloat::F8E4M3;

    fn q(v: &[f64]) -> Vec<f64> {
        v.iter().map(|&x| F8E4M3::from_f64(x).to_f64()).collect()
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(dot_fp8(&[], &[], Accumulation::Fp22), 0.0);
    }

    #[test]
    fn exact_small_sum() {
        let a = q(&[1.0, 2.0, 3.0]);
        let b = q(&[1.0, 1.0, 1.0]);
        for s in [Accumulation::Fp32, Accumulation::Fp22, Accumulation::deepseek_default()] {
            assert_eq!(dot_fp8(&a, &b, s), 6.0);
        }
    }

    #[test]
    fn alignment_truncation_loses_small_products() {
        // One huge product and 31 tiny ones: after aligning to the huge
        // exponent and keeping 13 fraction bits, products smaller than
        // max * 2^-13 vanish.
        let mut products = vec![0.0; 32];
        products[0] = 256.0;
        for p in products.iter_mut().skip(1) {
            *p = 0.01; // 0.01 < 256 * 2^-13 = 0.03125
        }
        let s = align_truncate_sum(&products);
        assert_eq!(s, 256.0);
        let exact: f64 = products.iter().sum();
        assert!((exact - 256.31).abs() < 1e-9);
    }

    /// Deterministic varied FP8 values in (0, 1]; varied mantissas make the
    /// accumulator sums carry more fraction bits than FP22 can hold.
    fn varied(k: usize, seed: u64) -> Vec<f64> {
        (0..k)
            .map(|i| {
                let h = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                let u = ((h >> 33) % 1000) as f64 / 1000.0; // [0, 1)
                F8E4M3::from_f64(0.05 + 0.95 * u).to_f64()
            })
            .collect()
    }

    #[test]
    fn fp32_strategy_beats_fp22_on_long_k() {
        let k = 8192;
        let a = varied(k, 1);
        let b = varied(k, 2);
        let exact: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let fp32 = dot_fp8(&a, &b, Accumulation::Fp32);
        let fp22 = dot_fp8(&a, &b, Accumulation::Fp22);
        let err32 = (fp32 - exact).abs() / exact;
        let err22 = (fp22 - exact).abs() / exact;
        assert!(err32 < err22, "fp32 {err32} vs fp22 {err22}");
        assert!(err22 > 1e-6, "fp22 must show visible error at K={k}: {err22}");
    }

    #[test]
    fn split_recovers_most_accuracy() {
        let k = 8192;
        let a = varied(k, 3);
        let b = varied(k, 4);
        let exact: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let fp22 = (dot_fp8(&a, &b, Accumulation::Fp22) - exact).abs();
        let split = (dot_fp8(&a, &b, Accumulation::deepseek_default()) - exact).abs();
        assert!(split < fp22, "split {split} must beat fp22 {fp22}");
    }

    #[test]
    fn split_interval_one_chunk_equals_fp32ish() {
        let k = 256;
        let a = vec![1.0f64; k];
        let b = vec![0.5f64; k];
        let s32 = dot_fp8(&a, &b, Accumulation::Fp32);
        let s = dot_fp8(&a, &b, Accumulation::Split { interval: 32 });
        assert!((s32 - s).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_panic() {
        let _ = dot_fp8(&[1.0], &[1.0, 2.0], Accumulation::Fp32);
    }

    #[test]
    fn all_zero_chunk() {
        assert_eq!(align_truncate_sum(&[0.0; 32]), 0.0);
    }
}
