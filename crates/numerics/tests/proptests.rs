//! Property-based tests for the numerics substrate.

use dsv3_numerics::fp22::round_to_mantissa_bits;
use dsv3_numerics::logfmt::LogFmtTile;
use dsv3_numerics::minifloat::Format;
use dsv3_numerics::quant::{BlockQuantized, TileQuantized};
use dsv3_numerics::Matrix;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1e30f32..1e30f32).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    /// Quantization is idempotent for every format.
    #[test]
    fn minifloat_idempotent(x in finite_f32()) {
        for fmt in [Format::E4M3, Format::E5M2, Format::E5M6, Format::BF16] {
            let q = fmt.quantize(f64::from(x));
            prop_assert_eq!(fmt.quantize(q), q);
        }
    }

    /// Quantized values never exceed the format's max finite magnitude and
    /// keep the input's sign (or collapse to zero).
    #[test]
    fn minifloat_bounded_and_signed(x in finite_f32()) {
        for fmt in [Format::E4M3, Format::E5M2, Format::BF16] {
            let q = fmt.quantize(f64::from(x));
            prop_assert!(q.abs() <= fmt.max_finite());
            if q != 0.0 {
                prop_assert_eq!(q.is_sign_negative(), x.is_sign_negative());
            }
        }
    }

    /// Round-to-nearest: the quantization error is at most half the local
    /// grid step (for in-range magnitudes).
    #[test]
    fn minifloat_error_bound(x in -400.0f64..400.0) {
        let fmt = Format::E4M3;
        let q = fmt.quantize(x);
        let step = if x.abs() < fmt.min_normal() {
            fmt.min_subnormal()
        } else {
            // Grid step in x's binade.
            let e = x.abs().log2().floor();
            2f64.powf(e) / 8.0 // 3 mantissa bits
        };
        prop_assert!((q - x).abs() <= step * 0.5 + 1e-12, "x={x} q={q} step={step}");
    }

    /// Quantization is monotone non-decreasing.
    #[test]
    fn minifloat_monotone(a in -1e4f64..1e4, b in -1e4f64..1e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for fmt in [Format::E4M3, Format::E5M2, Format::BF16] {
            prop_assert!(fmt.quantize(lo) <= fmt.quantize(hi));
        }
    }

    /// FP22 rounding keeps 13 bits: relative error ≤ 2^-14 for normals.
    #[test]
    fn fp22_error_bound(x in prop::num::f64::NORMAL.prop_filter("range", |v| v.abs() > 1e-30 && v.abs() < 1e30)) {
        let q = round_to_mantissa_bits(x, 13);
        prop_assert!(((q - x) / x).abs() <= 2f64.powi(-14) + 1e-15, "x={x} q={q}");
    }

    /// Tile quantization: per-element error is bounded by half the grid step
    /// at the tile's scale.
    #[test]
    fn tile_quant_error_bound(seed in 0u64..1000, cols in 1usize..300) {
        let m = Matrix::random(2, cols, 1.0, seed);
        let q = TileQuantized::quantize(&m, Format::E4M3, 128);
        let d = q.dequantize();
        for r in 0..m.rows {
            for c in 0..m.cols {
                let scale = q.scale_at(r, c);
                let tol = scale * 448.0 / 16.0 + 1e-9; // ≤ binade step/2 at amax
                prop_assert!((f64::from(m.get(r, c)) - f64::from(d.get(r, c))).abs() <= tol);
            }
        }
    }

    /// Block quantization round-trips shapes and respects bounds.
    #[test]
    fn block_quant_round_trip(seed in 0u64..200, rows in 1usize..80, cols in 1usize..80) {
        let m = Matrix::random(rows, cols, 2.0, seed);
        let q = BlockQuantized::quantize(&m, Format::E4M3, 32);
        let d = q.dequantize();
        prop_assert_eq!((d.rows, d.cols), (rows, cols));
        let amax = m.data.iter().map(|v| v.abs()).fold(0f32, f32::max);
        for (a, b) in m.data.iter().zip(&d.data) {
            prop_assert!((a - b).abs() <= amax * 0.07 + 1e-6);
        }
    }

    /// LogFMT: zeros round-trip exactly, signs survive, and decoded
    /// magnitudes stay within the tile's [min, max] range.
    #[test]
    fn logfmt_structure(seed in 0u64..1000) {
        let mut vals: Vec<f32> = Matrix::random(1, 96, 1.5, seed).data;
        vals[7] = 0.0;
        let tile = LogFmtTile::encode(&vals, 8);
        let dec = tile.decode();
        prop_assert_eq!(dec[7], 0.0);
        let amax = vals.iter().map(|v| v.abs()).fold(0f32, f32::max);
        for (v, d) in vals.iter().zip(&dec) {
            if *v != 0.0 && *d != 0.0 {
                prop_assert_eq!(v.signum(), d.signum());
                prop_assert!(d.abs() <= amax * 1.0001);
            }
        }
    }

    /// LogFMT encode∘decode is idempotent (decoded values re-encode to the
    /// same codes).
    #[test]
    fn logfmt_idempotent(seed in 0u64..300) {
        let vals: Vec<f32> = Matrix::random(1, 64, 1.0, seed).data;
        let tile = LogFmtTile::encode(&vals, 8);
        let dec = tile.decode();
        let tile2 = LogFmtTile::encode(&dec, 8);
        let dec2 = tile2.decode();
        for (a, b) in dec.iter().zip(&dec2) {
            prop_assert!((a - b).abs() <= a.abs() * 1e-5 + 1e-12, "{a} vs {b}");
        }
    }

    /// Matrix matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributive(seed in 0u64..200) {
        let a = Matrix::random(3, 4, 1.0, seed);
        let b = Matrix::random(3, 4, 1.0, seed + 1);
        let c = Matrix::random(4, 2, 1.0, seed + 2);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
