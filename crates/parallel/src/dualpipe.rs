//! Event-driven bidirectional DualPipe and zero-bubble (ZB1P) schedules.
//!
//! DualPipe (reference \[29\] of the paper) halves the pipeline bubble by (a) splitting the microbatch
//! stream into two directions — rank `i` holds model stages `i` and
//! `PP−1−i`, so one half of the microbatches enters at rank 0 and the other
//! at rank `PP−1` — and (b) co-executing one forward chunk with one backward
//! chunk on a rank ("F&B overlap": attention/MoE compute of one chunk hides
//! the MoE communication of the other). ZB1P keeps the single direction but
//! decouples the weight-gradient chunks (W) and drops them into bubbles.
//!
//! These simulators schedule individual chunks under real dependency
//! constraints, complementing the closed-form bubbles in
//! [`crate::schedule`].

use crate::schedule::{sort_events, ChunkEvent, ChunkKind, ChunkTimes, PipelineOutcome};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Direction of a microbatch stream in DualPipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Enters at rank 0, traverses stages 0..PP-1 on ranks 0..PP-1.
    Down,
    /// Enters at rank PP-1, traverses stages 0..PP-1 on ranks PP-1..0.
    Up,
}

/// Rank executing stage `v` of a direction.
#[must_use]
pub fn rank_of(stages: usize, dir: Direction, v: usize) -> usize {
    match dir {
        Direction::Down => v,
        Direction::Up => stages - 1 - v,
    }
}

/// Model stage rank `r` executes for global microbatch `g` (of `micro`
/// total): the Down stream (`g < micro/2`) runs stage `r`, the Up stream
/// runs the mirror stage `stages − 1 − r`.
#[must_use]
pub fn stage_of_global(stages: usize, rank: usize, g: usize, micro: usize) -> usize {
    if g < micro / 2 {
        rank
    } else {
        stages - 1 - rank
    }
}

/// Event-driven ZB1P: 1F1B order for F and B, with decoupled W chunks
/// filling idle time (at most one W deferred per B, drained at the end).
///
/// # Panics
///
/// Panics on a degenerate pipeline or invalid chunk times.
#[must_use]
pub fn zb1p(stages: usize, micro: usize, times: ChunkTimes) -> PipelineOutcome {
    assert!(stages > 0 && micro > 0, "degenerate pipeline");
    assert!(times.is_valid(), "invalid chunk times");
    let (f, b, w) = (times.f, times.b, times.w);
    let mut f_done = vec![vec![f64::INFINITY; micro]; stages];
    let mut b_done = vec![vec![f64::INFINITY; micro]; stages];
    let mut stage_free = vec![0f64; stages];
    let mut stage_busy = vec![0f64; stages];
    let mut next_f = vec![0usize; stages];
    let mut next_b = vec![0usize; stages];
    let mut pending_w = vec![0usize; stages];
    loop {
        let mut progressed = false;
        for s in 0..stages {
            loop {
                let warmup_target = (stages - s).min(micro);
                let in_flight = next_f[s] - next_b[s];
                let want_backward = next_b[s] < micro
                    && (in_flight >= warmup_target || next_f[s] == micro)
                    && in_flight > 0;
                if want_backward {
                    let m = next_b[s];
                    let dep = if s + 1 < stages { b_done[s + 1][m] } else { f_done[s][m] };
                    let dep = dep.max(f_done[s][m]);
                    if dep.is_finite() {
                        // Fill idle time before the dependency with pending W.
                        let mut start = stage_free[s];
                        while pending_w[s] > 0 && start + w <= dep {
                            start += w;
                            stage_busy[s] += w;
                            pending_w[s] -= 1;
                        }
                        let start = dep.max(start);
                        b_done[s][m] = start + b;
                        stage_free[s] = start + b;
                        stage_busy[s] += b;
                        pending_w[s] += 1;
                        next_b[s] += 1;
                        progressed = true;
                        continue;
                    }
                }
                if next_f[s] < micro && !want_backward {
                    let m = next_f[s];
                    let dep = if s == 0 { 0.0 } else { f_done[s - 1][m] };
                    if dep.is_finite() {
                        let mut start = stage_free[s];
                        while pending_w[s] > 0 && start + w <= dep {
                            start += w;
                            stage_busy[s] += w;
                            pending_w[s] -= 1;
                        }
                        let start = dep.max(start);
                        f_done[s][m] = start + f;
                        stage_free[s] = start + f;
                        stage_busy[s] += f;
                        next_f[s] += 1;
                        progressed = true;
                        continue;
                    }
                }
                break;
            }
        }
        if next_b.iter().all(|&x| x == micro) {
            break;
        }
        assert!(progressed, "schedule deadlocked");
    }
    // Drain the remaining W chunks.
    for s in 0..stages {
        stage_free[s] += pending_w[s] as f64 * w;
        stage_busy[s] += pending_w[s] as f64 * w;
    }
    let total_time = stage_free.iter().copied().fold(0.0f64, f64::max);
    let min_busy = stage_busy.iter().copied().fold(f64::INFINITY, f64::min);
    PipelineOutcome { total_time, bubble_time: total_time - min_busy, stage_busy }
}

/// Event-driven DualPipe: bidirectional microbatch streams with F&B
/// co-execution.
///
/// `micro` is the total microbatch count (split evenly between directions;
/// must be even). A rank co-executes one F chunk and one B chunk in
/// `max(f, b)` time when both are ready (perfect overlap — DualPipe's design
/// point, where the paired chunk's EP communication hides under the other's
/// compute). W chunks are decoupled and drain opportunistically as in ZB1P.
///
/// # Panics
///
/// Panics if `micro` is odd or smaller than `2 × stages`, or times are
/// invalid.
#[must_use]
pub fn dualpipe(stages: usize, micro: usize, times: ChunkTimes) -> PipelineOutcome {
    dualpipe_events(stages, micro, times, false).0
}

/// [`dualpipe`], additionally returning every scheduled chunk as a
/// [`ChunkEvent`] (sorted by start time).
///
/// Microbatch ids are global: `0..micro/2` for the Down stream (rank `r`
/// runs stage `r`), `micro/2..micro` for the Up stream (rank `r` runs stage
/// `stages − 1 − r`). W chunks carry the microbatch whose deferred
/// weight-gradient work they retire, in B-completion order.
///
/// With `throttle`, a rank defers the next forward of direction `d` while
/// it already holds `stages − v + 1` forwards of that direction whose
/// backward has not run (`v` = the stage it executes for `d`), and retires
/// a deferred W chunk whenever the backlog reaches
/// [`W_BACKLOG_CAP`] instead of letting all weight-gradient work slide to
/// the end of the step. The greedy unthrottled schedule lets rank 0 race
/// through all of its half of the microbatches before the first backward
/// returns — latency-optimal, but it implies an unbounded activation
/// stash, and deferring every W chunk retains every microbatch's
/// weight-gradient operands; the throttle reproduces DualPipe's published
/// memory profile (≈ PP + 1 microbatches in flight per rank across both
/// directions, O(1) retained W operands) at a small step-time cost.
///
/// # Panics
///
/// Panics if `micro` is odd or smaller than `2 × stages`, or times are
/// invalid.
/// Largest deferred-W backlog a throttled rank tolerates before it must
/// retire one (zero-bubble schedules keep this O(1): each B's
/// weight-gradient operands stay live until its W runs).
pub const W_BACKLOG_CAP: usize = 2;

#[must_use]
pub fn dualpipe_events(
    stages: usize,
    micro: usize,
    times: ChunkTimes,
    throttle: bool,
) -> (PipelineOutcome, Vec<ChunkEvent>) {
    assert!(stages > 0, "degenerate pipeline");
    assert!(
        micro.is_multiple_of(2) && micro >= 2 * stages,
        "need an even microbatch count ≥ 2·stages"
    );
    assert!(times.is_valid(), "invalid chunk times");
    let (f, b, w) = (times.f, times.b, times.w);
    let half = micro / 2;
    let dirs = [Direction::Down, Direction::Up];
    // done[dir][stage][m]
    let inf = f64::INFINITY;
    let mut f_done = [vec![vec![inf; half]; stages], vec![vec![inf; half]; stages]];
    let mut b_done = [vec![vec![inf; half]; stages], vec![vec![inf; half]; stages]];
    let mut rank_free = vec![0f64; stages];
    let mut rank_busy = vec![0f64; stages];
    // Deferred weight-gradient work per rank: global microbatch ids in
    // B-completion order.
    let mut pending_w: Vec<VecDeque<usize>> = vec![VecDeque::new(); stages];
    let mut events: Vec<ChunkEvent> = Vec::with_capacity(3 * stages * micro);
    // Per (dir, rank): the stage this rank runs for that direction, and
    // progress counters.
    let mut next_f = [vec![0usize; stages], vec![0usize; stages]];
    let mut next_b = [vec![0usize; stages], vec![0usize; stages]];
    // Global microbatch id of direction-local microbatch `m` of stream `d`.
    let global_m = |d: usize, m: usize| if d == 0 { m } else { half + m };

    // Ready time of the next F (resp. B) of direction d on rank r, or None.
    let f_ready = |d: usize,
                   r: usize,
                   next_f: &[Vec<usize>],
                   next_b: &[Vec<usize>],
                   f_done: &[Vec<Vec<f64>>; 2]|
     -> Option<f64> {
        let v = match dirs[d] {
            Direction::Down => r,
            Direction::Up => stages - 1 - r,
        };
        let m = next_f[d][r];
        if m >= half {
            return None;
        }
        if throttle && next_f[d][r] - next_b[d][r] > stages - v {
            return None;
        }
        let dep = if v == 0 {
            0.0
        } else {
            let prev_rank = rank_of(stages, dirs[d], v - 1);
            f_done[d][prev_rank][m]
        };
        dep.is_finite().then_some(dep)
    };
    let b_ready = |d: usize,
                   r: usize,
                   next_b: &[Vec<usize>],
                   f_done: &[Vec<Vec<f64>>; 2],
                   b_done: &[Vec<Vec<f64>>; 2]|
     -> Option<f64> {
        let v = match dirs[d] {
            Direction::Down => r,
            Direction::Up => stages - 1 - r,
        };
        let m = next_b[d][r];
        if m >= half {
            return None;
        }
        let own_f = f_done[d][r][m];
        let dep = if v + 1 == stages {
            own_f
        } else {
            let nxt_rank = rank_of(stages, dirs[d], v + 1);
            b_done[d][nxt_rank][m].max(own_f)
        };
        dep.is_finite().then_some(dep)
    };

    loop {
        let mut progressed = false;
        for r in 0..stages {
            loop {
                // Memory discipline: retire a deferred W before its backlog
                // (and the per-micro operands it retains) can grow past the
                // zero-bubble bound.
                if throttle && pending_w[r].len() >= W_BACKLOG_CAP {
                    let mw = pending_w[r].pop_front().unwrap_or_default();
                    let start = rank_free[r];
                    events.push(ChunkEvent {
                        rank: r,
                        micro: mw,
                        kind: ChunkKind::WeightGrad,
                        start,
                        end: start + w,
                    });
                    rank_free[r] = start + w;
                    rank_busy[r] += w;
                    progressed = true;
                    continue;
                }
                // Gather candidate F and B chunks from both directions.
                let mut best_f: Option<(usize, f64)> = None;
                let mut best_b: Option<(usize, f64)> = None;
                for d in 0..2 {
                    if let Some(t) = f_ready(d, r, &next_f, &next_b, &f_done) {
                        if best_f.is_none_or(|(_, bt)| t < bt) {
                            best_f = Some((d, t));
                        }
                    }
                    if let Some(t) = b_ready(d, r, &next_b, &f_done, &b_done) {
                        if best_b.is_none_or(|(_, bt)| t < bt) {
                            best_b = Some((d, t));
                        }
                    }
                }
                // Backward-pressure discipline: once any backward is ready,
                // pair it (or run it alone); otherwise run a forward.
                let start_floor = rank_free[r];
                match (best_f, best_b) {
                    (Some((df, tf)), Some((db, tb))) => {
                        // Co-execute F and B: start when both deps and the
                        // rank are ready; duration max(f, b).
                        let start = start_floor.max(tf).max(tb);
                        let dur = f.max(b);
                        let end = start + dur;
                        let mf = next_f[df][r];
                        f_done[df][r][mf] = start + f.min(dur);
                        events.push(ChunkEvent {
                            rank: r,
                            micro: global_m(df, mf),
                            kind: ChunkKind::Forward,
                            start,
                            end: start + f.min(dur),
                        });
                        next_f[df][r] += 1;
                        let mb = next_b[db][r];
                        b_done[db][r][mb] = end;
                        events.push(ChunkEvent {
                            rank: r,
                            micro: global_m(db, mb),
                            kind: ChunkKind::Backward,
                            start,
                            end,
                        });
                        next_b[db][r] += 1;
                        pending_w[r].push_back(global_m(db, mb));
                        rank_free[r] = end;
                        rank_busy[r] += dur;
                        progressed = true;
                    }
                    (None, Some((db, tb))) => {
                        let mut start = start_floor;
                        while !pending_w[r].is_empty() && start + w <= tb {
                            let mw = pending_w[r].pop_front().unwrap_or_default();
                            events.push(ChunkEvent {
                                rank: r,
                                micro: mw,
                                kind: ChunkKind::WeightGrad,
                                start,
                                end: start + w,
                            });
                            start += w;
                            rank_busy[r] += w;
                        }
                        let start = start.max(tb);
                        let mb = next_b[db][r];
                        b_done[db][r][mb] = start + b;
                        events.push(ChunkEvent {
                            rank: r,
                            micro: global_m(db, mb),
                            kind: ChunkKind::Backward,
                            start,
                            end: start + b,
                        });
                        next_b[db][r] += 1;
                        pending_w[r].push_back(global_m(db, mb));
                        rank_free[r] = start + b;
                        rank_busy[r] += b;
                        progressed = true;
                    }
                    (Some((df, tf)), None) => {
                        let mut start = start_floor;
                        while !pending_w[r].is_empty() && start + w <= tf {
                            let mw = pending_w[r].pop_front().unwrap_or_default();
                            events.push(ChunkEvent {
                                rank: r,
                                micro: mw,
                                kind: ChunkKind::WeightGrad,
                                start,
                                end: start + w,
                            });
                            start += w;
                            rank_busy[r] += w;
                        }
                        let start = start.max(tf);
                        let mf = next_f[df][r];
                        f_done[df][r][mf] = start + f;
                        events.push(ChunkEvent {
                            rank: r,
                            micro: global_m(df, mf),
                            kind: ChunkKind::Forward,
                            start,
                            end: start + f,
                        });
                        next_f[df][r] += 1;
                        rank_free[r] = start + f;
                        rank_busy[r] += f;
                        progressed = true;
                    }
                    (None, None) => break,
                }
            }
        }
        let done = (0..2).all(|d| (0..stages).all(|r| next_b[d][r] == half));
        if done {
            break;
        }
        assert!(progressed, "schedule deadlocked");
    }
    // Drain the remaining W chunks back-to-back on each rank.
    for r in 0..stages {
        while let Some(mw) = pending_w[r].pop_front() {
            events.push(ChunkEvent {
                rank: r,
                micro: mw,
                kind: ChunkKind::WeightGrad,
                start: rank_free[r],
                end: rank_free[r] + w,
            });
            rank_free[r] += w;
            rank_busy[r] += w;
        }
    }
    let total_time = rank_free.iter().copied().fold(0.0f64, f64::max);
    let min_busy = rank_busy.iter().copied().fold(f64::INFINITY, f64::min);
    sort_events(&mut events);
    (
        PipelineOutcome { total_time, bubble_time: total_time - min_busy, stage_busy: rank_busy },
        events,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{bubble_1f1b, bubble_zb1p, one_f_one_b};

    const T: ChunkTimes = ChunkTimes { f: 1.0, b: 1.0, w: 0.5 };

    #[test]
    fn rank_mapping() {
        assert_eq!(rank_of(8, Direction::Down, 0), 0);
        assert_eq!(rank_of(8, Direction::Down, 7), 7);
        assert_eq!(rank_of(8, Direction::Up, 0), 7);
        assert_eq!(rank_of(8, Direction::Up, 7), 0);
    }

    #[test]
    fn zb1p_beats_1f1b() {
        let (s, m) = (8, 32);
        let zb = zb1p(s, m, T);
        let classic = one_f_one_b(s, m, T);
        assert!(zb.total_time < classic.total_time, "{} vs {}", zb.total_time, classic.total_time);
    }

    #[test]
    fn zb1p_bubble_tracks_analytic() {
        let (s, m) = (8, 64);
        let zb = zb1p(s, m, T);
        let analytic = bubble_zb1p(s, T);
        // The event-driven schedule cannot beat the analytic bound and
        // should land near it (within ~60%: the closed form is for the
        // idealized W placement).
        assert!(zb.bubble_time >= analytic * 0.4, "{} vs {analytic}", zb.bubble_time);
        assert!(zb.bubble_time <= bubble_1f1b(s, T) + 1e-9);
    }

    #[test]
    fn zb1p_work_conserved() {
        let (s, m) = (4, 12);
        let zb = zb1p(s, m, T);
        for busy in &zb.stage_busy {
            assert!((busy - m as f64 * (T.f + T.b + T.w)).abs() < 1e-9);
        }
    }

    #[test]
    fn dualpipe_beats_zb1p_and_1f1b() {
        let (s, m) = (8, 32);
        let dp = dualpipe(s, m, T);
        let zb = zb1p(s, m, T);
        let classic = one_f_one_b(s, m, T);
        assert!(
            dp.total_time < zb.total_time,
            "dualpipe {} vs zb1p {}",
            dp.total_time,
            zb.total_time
        );
        assert!(dp.total_time < classic.total_time);
    }

    #[test]
    fn dualpipe_overlap_bound() {
        // With perfect F&B overlap, each rank executes `micro` F and
        // `micro` B in at least micro·max(f,b) + W time.
        let (s, m) = (4, 16);
        let dp = dualpipe(s, m, T);
        let floor = m as f64 * T.f.max(T.b) + m as f64 * T.w;
        assert!(dp.total_time >= floor - 1e-9, "{} < {floor}", dp.total_time);
        // And it gets close to the floor (bubble is small).
        assert!(dp.total_time <= floor * 1.5, "{} vs {floor}", dp.total_time);
    }

    #[test]
    fn dualpipe_work_conserved_under_overlap() {
        // Busy time counts co-executed pairs once (max(f,b)), so per rank:
        // between micro·max(f,b)+micro·w (all paired) and
        // micro·(f+b+w) (never paired).
        let (s, m) = (4, 12);
        let dp = dualpipe(s, m, T);
        for busy in &dp.stage_busy {
            assert!(*busy >= m as f64 * (T.f.max(T.b) + T.w) - 1e-9);
            assert!(*busy <= m as f64 * (T.f + T.b + T.w) + 1e-9);
        }
    }

    #[test]
    fn dualpipe_scales_with_microbatches() {
        let small = dualpipe(4, 8, T);
        let large = dualpipe(4, 64, T);
        assert!(large.bubble_fraction() < small.bubble_fraction());
    }

    #[test]
    #[should_panic(expected = "even microbatch")]
    fn odd_micro_panics() {
        let _ = dualpipe(4, 9, T);
    }

    #[test]
    fn events_wrapper_is_byte_identical_to_plain() {
        let (s, m) = (8, 32);
        let plain = dualpipe(s, m, T);
        let (viaev, _) = dualpipe_events(s, m, T, false);
        assert_eq!(plain, viaev);
    }

    #[test]
    fn events_cover_every_chunk_exactly_once() {
        let (s, m) = (4, 16);
        for throttle in [false, true] {
            let (o, ev) = dualpipe_events(s, m, T, throttle);
            // Each microbatch traverses all stages: s·m chunks of each kind.
            for kind in [ChunkKind::Forward, ChunkKind::Backward, ChunkKind::WeightGrad] {
                assert_eq!(ev.iter().filter(|e| e.kind == kind).count(), s * m);
            }
            // Each rank runs exactly `m` of each kind (half per direction).
            for r in 0..s {
                for kind in [ChunkKind::Forward, ChunkKind::Backward, ChunkKind::WeightGrad] {
                    assert_eq!(ev.iter().filter(|e| e.rank == r && e.kind == kind).count(), m);
                }
            }
            for e in &ev {
                assert!(e.end <= o.total_time + 1e-9);
                assert!(e.micro < m);
            }
        }
    }

    #[test]
    fn throttle_caps_per_direction_in_flight() {
        let (s, m) = (4, 24);
        let (_, ev) = dualpipe_events(s, m, T, true);
        // Walk events in start order; per (rank, direction) the number of
        // forwards without a matching backward must stay ≤ stages − v + 1.
        let mut in_flight = vec![[0i64; 2]; s];
        for e in &ev {
            let d = usize::from(e.micro >= m / 2);
            match e.kind {
                ChunkKind::Forward => in_flight[e.rank][d] += 1,
                ChunkKind::Backward => in_flight[e.rank][d] -= 1,
                ChunkKind::WeightGrad => continue,
            }
            let v = stage_of_global(s, e.rank, e.micro, m);
            let cap = (s - v + 1) as i64;
            assert!(
                in_flight[e.rank][d] <= cap,
                "rank {} dir {d}: {} > cap {cap}",
                e.rank,
                in_flight[e.rank][d]
            );
        }
    }

    #[test]
    fn throttle_bounds_the_w_backlog() {
        let (s, m) = (4, 24);
        let (_, ev) = dualpipe_events(s, m, T, true);
        // Walk events in start order; per rank the number of backwards
        // without a retired W must stay ≤ W_BACKLOG_CAP.
        let mut backlog = vec![0i64; s];
        for e in &ev {
            match e.kind {
                ChunkKind::Backward => backlog[e.rank] += 1,
                ChunkKind::WeightGrad => backlog[e.rank] -= 1,
                ChunkKind::Forward => continue,
            }
            assert!(
                backlog[e.rank] <= W_BACKLOG_CAP as i64,
                "rank {}: backlog {}",
                e.rank,
                backlog[e.rank]
            );
            assert!(backlog[e.rank] >= 0, "W retired before its B");
        }
    }

    #[test]
    fn throttled_schedule_still_completes_all_work() {
        let (s, m) = (8, 32);
        let (o, _) = dualpipe_events(s, m, T, true);
        for busy in &o.stage_busy {
            // Work conservation: same bounds as the unthrottled variant.
            assert!(*busy >= m as f64 * (T.f.max(T.b) + T.w) - 1e-9);
            assert!(*busy <= m as f64 * (T.f + T.b + T.w) + 1e-9);
        }
        // Throttling trades step time for memory; it must stay in the same
        // ballpark as the greedy schedule.
        let greedy = dualpipe(s, m, T);
        assert!(
            o.total_time <= greedy.total_time * 1.5,
            "{} vs {}",
            o.total_time,
            greedy.total_time
        );
    }

    #[test]
    fn stage_of_global_mirrors_directions() {
        assert_eq!(stage_of_global(8, 0, 0, 16), 0);
        assert_eq!(stage_of_global(8, 0, 8, 16), 7);
        assert_eq!(stage_of_global(8, 7, 0, 16), 7);
        assert_eq!(stage_of_global(8, 7, 8, 16), 0);
    }
}
