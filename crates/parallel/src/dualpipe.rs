//! Event-driven bidirectional DualPipe and zero-bubble (ZB1P) schedules.
//!
//! DualPipe (reference \[29\] of the paper) halves the pipeline bubble by (a) splitting the microbatch
//! stream into two directions — rank `i` holds model stages `i` and
//! `PP−1−i`, so one half of the microbatches enters at rank 0 and the other
//! at rank `PP−1` — and (b) co-executing one forward chunk with one backward
//! chunk on a rank ("F&B overlap": attention/MoE compute of one chunk hides
//! the MoE communication of the other). ZB1P keeps the single direction but
//! decouples the weight-gradient chunks (W) and drops them into bubbles.
//!
//! These simulators schedule individual chunks under real dependency
//! constraints, complementing the closed-form bubbles in
//! [`crate::schedule`].

use crate::schedule::{ChunkTimes, PipelineOutcome};
use serde::{Deserialize, Serialize};

/// Direction of a microbatch stream in DualPipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Enters at rank 0, traverses stages 0..PP-1 on ranks 0..PP-1.
    Down,
    /// Enters at rank PP-1, traverses stages 0..PP-1 on ranks PP-1..0.
    Up,
}

/// Rank executing stage `v` of a direction.
#[must_use]
pub fn rank_of(stages: usize, dir: Direction, v: usize) -> usize {
    match dir {
        Direction::Down => v,
        Direction::Up => stages - 1 - v,
    }
}

/// Event-driven ZB1P: 1F1B order for F and B, with decoupled W chunks
/// filling idle time (at most one W deferred per B, drained at the end).
///
/// # Panics
///
/// Panics on a degenerate pipeline or invalid chunk times.
#[must_use]
pub fn zb1p(stages: usize, micro: usize, times: ChunkTimes) -> PipelineOutcome {
    assert!(stages > 0 && micro > 0, "degenerate pipeline");
    assert!(times.is_valid(), "invalid chunk times");
    let (f, b, w) = (times.f, times.b, times.w);
    let mut f_done = vec![vec![f64::INFINITY; micro]; stages];
    let mut b_done = vec![vec![f64::INFINITY; micro]; stages];
    let mut stage_free = vec![0f64; stages];
    let mut stage_busy = vec![0f64; stages];
    let mut next_f = vec![0usize; stages];
    let mut next_b = vec![0usize; stages];
    let mut pending_w = vec![0usize; stages];
    loop {
        let mut progressed = false;
        for s in 0..stages {
            loop {
                let warmup_target = (stages - s).min(micro);
                let in_flight = next_f[s] - next_b[s];
                let want_backward = next_b[s] < micro
                    && (in_flight >= warmup_target || next_f[s] == micro)
                    && in_flight > 0;
                if want_backward {
                    let m = next_b[s];
                    let dep = if s + 1 < stages { b_done[s + 1][m] } else { f_done[s][m] };
                    let dep = dep.max(f_done[s][m]);
                    if dep.is_finite() {
                        // Fill idle time before the dependency with pending W.
                        let mut start = stage_free[s];
                        while pending_w[s] > 0 && start + w <= dep {
                            start += w;
                            stage_busy[s] += w;
                            pending_w[s] -= 1;
                        }
                        let start = dep.max(start);
                        b_done[s][m] = start + b;
                        stage_free[s] = start + b;
                        stage_busy[s] += b;
                        pending_w[s] += 1;
                        next_b[s] += 1;
                        progressed = true;
                        continue;
                    }
                }
                if next_f[s] < micro && !want_backward {
                    let m = next_f[s];
                    let dep = if s == 0 { 0.0 } else { f_done[s - 1][m] };
                    if dep.is_finite() {
                        let mut start = stage_free[s];
                        while pending_w[s] > 0 && start + w <= dep {
                            start += w;
                            stage_busy[s] += w;
                            pending_w[s] -= 1;
                        }
                        let start = dep.max(start);
                        f_done[s][m] = start + f;
                        stage_free[s] = start + f;
                        stage_busy[s] += f;
                        next_f[s] += 1;
                        progressed = true;
                        continue;
                    }
                }
                break;
            }
        }
        if next_b.iter().all(|&x| x == micro) {
            break;
        }
        assert!(progressed, "schedule deadlocked");
    }
    // Drain the remaining W chunks.
    for s in 0..stages {
        stage_free[s] += pending_w[s] as f64 * w;
        stage_busy[s] += pending_w[s] as f64 * w;
    }
    let total_time = stage_free.iter().copied().fold(0.0f64, f64::max);
    let min_busy = stage_busy.iter().copied().fold(f64::INFINITY, f64::min);
    PipelineOutcome { total_time, bubble_time: total_time - min_busy, stage_busy }
}

/// Event-driven DualPipe: bidirectional microbatch streams with F&B
/// co-execution.
///
/// `micro` is the total microbatch count (split evenly between directions;
/// must be even). A rank co-executes one F chunk and one B chunk in
/// `max(f, b)` time when both are ready (perfect overlap — DualPipe's design
/// point, where the paired chunk's EP communication hides under the other's
/// compute). W chunks are decoupled and drain opportunistically as in ZB1P.
///
/// # Panics
///
/// Panics if `micro` is odd or smaller than `2 × stages`, or times are
/// invalid.
#[must_use]
pub fn dualpipe(stages: usize, micro: usize, times: ChunkTimes) -> PipelineOutcome {
    assert!(stages > 0, "degenerate pipeline");
    assert!(
        micro.is_multiple_of(2) && micro >= 2 * stages,
        "need an even microbatch count ≥ 2·stages"
    );
    assert!(times.is_valid(), "invalid chunk times");
    let (f, b, w) = (times.f, times.b, times.w);
    let half = micro / 2;
    let dirs = [Direction::Down, Direction::Up];
    // done[dir][stage][m]
    let inf = f64::INFINITY;
    let mut f_done = [vec![vec![inf; half]; stages], vec![vec![inf; half]; stages]];
    let mut b_done = [vec![vec![inf; half]; stages], vec![vec![inf; half]; stages]];
    let mut rank_free = vec![0f64; stages];
    let mut rank_busy = vec![0f64; stages];
    let mut pending_w = vec![0usize; stages];
    // Per (dir, rank): the stage this rank runs for that direction, and
    // progress counters.
    let mut next_f = [vec![0usize; stages], vec![0usize; stages]];
    let mut next_b = [vec![0usize; stages], vec![0usize; stages]];

    // Ready time of the next F (resp. B) of direction d on rank r, or None.
    let f_ready =
        |d: usize, r: usize, next_f: &[Vec<usize>], f_done: &[Vec<Vec<f64>>; 2]| -> Option<f64> {
            let v = match dirs[d] {
                Direction::Down => r,
                Direction::Up => stages - 1 - r,
            };
            let m = next_f[d][r];
            if m >= half {
                return None;
            }
            let dep = if v == 0 {
                0.0
            } else {
                let prev_rank = rank_of(stages, dirs[d], v - 1);
                f_done[d][prev_rank][m]
            };
            dep.is_finite().then_some(dep)
        };
    let b_ready = |d: usize,
                   r: usize,
                   next_b: &[Vec<usize>],
                   f_done: &[Vec<Vec<f64>>; 2],
                   b_done: &[Vec<Vec<f64>>; 2]|
     -> Option<f64> {
        let v = match dirs[d] {
            Direction::Down => r,
            Direction::Up => stages - 1 - r,
        };
        let m = next_b[d][r];
        if m >= half {
            return None;
        }
        let own_f = f_done[d][r][m];
        let dep = if v + 1 == stages {
            own_f
        } else {
            let nxt_rank = rank_of(stages, dirs[d], v + 1);
            b_done[d][nxt_rank][m].max(own_f)
        };
        dep.is_finite().then_some(dep)
    };

    loop {
        let mut progressed = false;
        for r in 0..stages {
            loop {
                // Gather candidate F and B chunks from both directions.
                let mut best_f: Option<(usize, f64)> = None;
                let mut best_b: Option<(usize, f64)> = None;
                for d in 0..2 {
                    if let Some(t) = f_ready(d, r, &next_f, &f_done) {
                        if best_f.is_none_or(|(_, bt)| t < bt) {
                            best_f = Some((d, t));
                        }
                    }
                    if let Some(t) = b_ready(d, r, &next_b, &f_done, &b_done) {
                        if best_b.is_none_or(|(_, bt)| t < bt) {
                            best_b = Some((d, t));
                        }
                    }
                }
                // Backward-pressure discipline: once any backward is ready,
                // pair it (or run it alone); otherwise run a forward.
                let start_floor = rank_free[r];
                match (best_f, best_b) {
                    (Some((df, tf)), Some((db, tb))) => {
                        // Co-execute F and B: start when both deps and the
                        // rank are ready; duration max(f, b).
                        let start = start_floor.max(tf).max(tb);
                        let dur = f.max(b);
                        let end = start + dur;
                        let mf = next_f[df][r];
                        f_done[df][r][mf] = start + f.min(dur);
                        next_f[df][r] += 1;
                        let mb = next_b[db][r];
                        b_done[db][r][mb] = end;
                        next_b[db][r] += 1;
                        pending_w[r] += 1;
                        rank_free[r] = end;
                        rank_busy[r] += dur;
                        progressed = true;
                    }
                    (None, Some((db, tb))) => {
                        let mut start = start_floor;
                        while pending_w[r] > 0 && start + w <= tb {
                            start += w;
                            rank_busy[r] += w;
                            pending_w[r] -= 1;
                        }
                        let start = start.max(tb);
                        let mb = next_b[db][r];
                        b_done[db][r][mb] = start + b;
                        next_b[db][r] += 1;
                        pending_w[r] += 1;
                        rank_free[r] = start + b;
                        rank_busy[r] += b;
                        progressed = true;
                    }
                    (Some((df, tf)), None) => {
                        let mut start = start_floor;
                        while pending_w[r] > 0 && start + w <= tf {
                            start += w;
                            rank_busy[r] += w;
                            pending_w[r] -= 1;
                        }
                        let start = start.max(tf);
                        let mf = next_f[df][r];
                        f_done[df][r][mf] = start + f;
                        next_f[df][r] += 1;
                        rank_free[r] = start + f;
                        rank_busy[r] += f;
                        progressed = true;
                    }
                    (None, None) => break,
                }
            }
        }
        let done = (0..2).all(|d| (0..stages).all(|r| next_b[d][r] == half));
        if done {
            break;
        }
        assert!(progressed, "schedule deadlocked");
    }
    for r in 0..stages {
        rank_free[r] += pending_w[r] as f64 * w;
        rank_busy[r] += pending_w[r] as f64 * w;
    }
    let total_time = rank_free.iter().copied().fold(0.0f64, f64::max);
    let min_busy = rank_busy.iter().copied().fold(f64::INFINITY, f64::min);
    PipelineOutcome { total_time, bubble_time: total_time - min_busy, stage_busy: rank_busy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{bubble_1f1b, bubble_zb1p, one_f_one_b};

    const T: ChunkTimes = ChunkTimes { f: 1.0, b: 1.0, w: 0.5 };

    #[test]
    fn rank_mapping() {
        assert_eq!(rank_of(8, Direction::Down, 0), 0);
        assert_eq!(rank_of(8, Direction::Down, 7), 7);
        assert_eq!(rank_of(8, Direction::Up, 0), 7);
        assert_eq!(rank_of(8, Direction::Up, 7), 0);
    }

    #[test]
    fn zb1p_beats_1f1b() {
        let (s, m) = (8, 32);
        let zb = zb1p(s, m, T);
        let classic = one_f_one_b(s, m, T);
        assert!(zb.total_time < classic.total_time, "{} vs {}", zb.total_time, classic.total_time);
    }

    #[test]
    fn zb1p_bubble_tracks_analytic() {
        let (s, m) = (8, 64);
        let zb = zb1p(s, m, T);
        let analytic = bubble_zb1p(s, T);
        // The event-driven schedule cannot beat the analytic bound and
        // should land near it (within ~60%: the closed form is for the
        // idealized W placement).
        assert!(zb.bubble_time >= analytic * 0.4, "{} vs {analytic}", zb.bubble_time);
        assert!(zb.bubble_time <= bubble_1f1b(s, T) + 1e-9);
    }

    #[test]
    fn zb1p_work_conserved() {
        let (s, m) = (4, 12);
        let zb = zb1p(s, m, T);
        for busy in &zb.stage_busy {
            assert!((busy - m as f64 * (T.f + T.b + T.w)).abs() < 1e-9);
        }
    }

    #[test]
    fn dualpipe_beats_zb1p_and_1f1b() {
        let (s, m) = (8, 32);
        let dp = dualpipe(s, m, T);
        let zb = zb1p(s, m, T);
        let classic = one_f_one_b(s, m, T);
        assert!(
            dp.total_time < zb.total_time,
            "dualpipe {} vs zb1p {}",
            dp.total_time,
            zb.total_time
        );
        assert!(dp.total_time < classic.total_time);
    }

    #[test]
    fn dualpipe_overlap_bound() {
        // With perfect F&B overlap, each rank executes `micro` F and
        // `micro` B in at least micro·max(f,b) + W time.
        let (s, m) = (4, 16);
        let dp = dualpipe(s, m, T);
        let floor = m as f64 * T.f.max(T.b) + m as f64 * T.w;
        assert!(dp.total_time >= floor - 1e-9, "{} < {floor}", dp.total_time);
        // And it gets close to the floor (bubble is small).
        assert!(dp.total_time <= floor * 1.5, "{} vs {floor}", dp.total_time);
    }

    #[test]
    fn dualpipe_work_conserved_under_overlap() {
        // Busy time counts co-executed pairs once (max(f,b)), so per rank:
        // between micro·max(f,b)+micro·w (all paired) and
        // micro·(f+b+w) (never paired).
        let (s, m) = (4, 12);
        let dp = dualpipe(s, m, T);
        for busy in &dp.stage_busy {
            assert!(*busy >= m as f64 * (T.f.max(T.b) + T.w) - 1e-9);
            assert!(*busy <= m as f64 * (T.f + T.b + T.w) + 1e-9);
        }
    }

    #[test]
    fn dualpipe_scales_with_microbatches() {
        let small = dualpipe(4, 8, T);
        let large = dualpipe(4, 64, T);
        assert!(large.bubble_fraction() < small.bubble_fraction());
    }

    #[test]
    #[should_panic(expected = "even microbatch")]
    fn odd_micro_panics() {
        let _ = dualpipe(4, 9, T);
    }
}
