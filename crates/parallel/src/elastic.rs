//! Elastic shrink: re-plan the training grid after losing GPUs.
//!
//! When a node dies and no spare is available, the alternative to idling
//! the whole job is to drop the failed data-parallel lanes, redistribute
//! their microbatches over the survivors, and keep training at a degraded
//! step time until backfill. This module prices that re-plan with the
//! same Table 4 chunk-time machinery the healthy step uses: the global
//! batch is preserved (tokens per step do not change under shrink), so
//! the degraded step time follows from the same FLOPs spread over fewer
//! GPUs, plus the bubble of the re-balanced microbatch count.

use crate::schedule::{analytic_step_time, bubble_dualpipe};
use crate::trainstep::{chunk_times, TrainStepConfig};
use serde::{Deserialize, Serialize};

/// A degraded-but-running plan after an elastic shrink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShrinkPlan {
    /// GPUs the re-planned grid actually uses (`width × pp`).
    pub gpus_used: usize,
    /// Data-parallel lanes dropped relative to the healthy grid.
    pub dropped_lanes: usize,
    /// Expert-parallel group size after the re-plan: the largest size
    /// ≤ the healthy EP that divides the surviving stage width.
    pub ep: usize,
    /// Microbatches per pipeline after redistributing the dropped lanes'
    /// share (global batch preserved).
    pub microbatches: usize,
    /// Degraded step time, seconds.
    pub step_time_s: f64,
    /// Degraded throughput relative to healthy (`healthy step time ÷
    /// degraded step time`, in `(0, 1]` — same tokens per step, slower).
    pub throughput_factor: f64,
}

/// Full step time of a config under the DualPipe analytic schedule.
fn step_time_s(cfg: &TrainStepConfig) -> f64 {
    let times = chunk_times(cfg);
    let bubble = bubble_dualpipe(cfg.pp, times, 1.0);
    analytic_step_time(cfg.microbatches, times, bubble) + cfg.optimizer_seconds
}

/// Re-plan `cfg`'s grid onto `available_gpus`, dropping whole
/// data-parallel lanes (one GPU per pipeline stage each) and shrinking
/// EP to the largest group that still divides the surviving width.
///
/// Returns `None` when the survivors cannot host even one lane of the
/// `pp`-deep pipeline, when the config is degenerate (`gpus < pp`), or
/// when nothing was actually lost (`available_gpus ≥ cfg.gpus` — the
/// healthy plan stands).
#[must_use]
pub fn replan_shrink(
    cfg: &TrainStepConfig,
    ep: usize,
    available_gpus: usize,
) -> Option<ShrinkPlan> {
    let width = cfg.gpus / cfg.pp;
    if width == 0 || ep == 0 || available_gpus >= cfg.gpus {
        return None;
    }
    let new_width = available_gpus / cfg.pp;
    if new_width == 0 {
        return None;
    }
    let gpus_used = new_width * cfg.pp;
    // The dropped lanes' microbatches move to the survivors; ceil keeps
    // the global batch at least intact (the last microbatch may run
    // light, which the analytic step time prices as full — conservative).
    let microbatches = (cfg.microbatches * width).div_ceil(new_width);
    let new_ep = (1..=ep.min(new_width)).rev().find(|e| new_width.is_multiple_of(*e))?;
    let degraded = TrainStepConfig { gpus: gpus_used, microbatches, ..cfg.clone() };
    let healthy_s = step_time_s(cfg);
    let degraded_s = step_time_s(&degraded);
    Some(ShrinkPlan {
        gpus_used,
        dropped_lanes: width - new_width,
        ep: new_ep,
        microbatches,
        step_time_s: degraded_s,
        throughput_factor: healthy_s / degraded_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v3() -> TrainStepConfig {
        TrainStepConfig::deepseek_v3(1.0)
    }

    #[test]
    fn losing_one_lane_costs_about_one_lane_of_throughput() {
        let cfg = v3();
        // 2048 GPUs, PP16 → 128 lanes; lose one lane's 16 GPUs.
        let p = replan_shrink(&cfg, 64, 2048 - 16).expect("re-plan");
        assert_eq!(p.gpus_used, 2032);
        assert_eq!(p.dropped_lanes, 1);
        assert!(p.microbatches >= 120);
        assert!(p.throughput_factor < 1.0);
        assert!(p.throughput_factor > 126.0 / 128.0, "factor {}", p.throughput_factor);
    }

    #[test]
    fn ep_shrinks_to_divide_the_surviving_width() {
        let cfg = v3();
        // 127 lanes survive: 64 does not divide 127, the largest divisor
        // of 127 (prime) below 64 is 1.
        let p = replan_shrink(&cfg, 64, 2048 - 16).expect("re-plan");
        assert_eq!(p.ep, 1);
        // 96 lanes: largest divisor ≤ 64 is 48.
        let p = replan_shrink(&cfg, 64, 96 * 16).expect("re-plan");
        assert_eq!(p.ep, 48);
    }

    #[test]
    fn deeper_losses_degrade_monotonically() {
        let cfg = v3();
        let mut last = 1.0f64;
        for lost_lanes in [1usize, 8, 32, 64] {
            let p = replan_shrink(&cfg, 64, 2048 - lost_lanes * 16).expect("re-plan");
            assert!(p.throughput_factor < last, "lanes {lost_lanes}: {}", p.throughput_factor);
            last = p.throughput_factor;
        }
    }

    #[test]
    fn no_loss_or_total_loss_yields_none() {
        let cfg = v3();
        assert!(replan_shrink(&cfg, 64, 2048).is_none(), "nothing lost");
        assert!(replan_shrink(&cfg, 64, 4096).is_none(), "grew, not shrank");
        assert!(replan_shrink(&cfg, 64, 15).is_none(), "cannot host one lane");
    }
}
