//! Parallelism and training-step models.
//!
//! §4.2 of the paper describes DeepSeek-V3's hardware-aware parallelism: no
//! tensor parallelism during training, DualPipe pipeline parallelism to
//! overlap attention/MoE compute with MoE communication, and 64-way expert
//! parallelism. Table 4 reports the per-step timing decomposition (1F,
//! 1F1B, bubble, …) and the resulting MFU. This crate implements:
//!
//! * [`schedule`] — an event-driven 1F1B pipeline simulator plus the
//!   analytic bubble formulas for 1F1B, ZB1P and DualPipe.
//! * [`mfu`] — causal / non-causal TFLOPS and MFU accounting (FlashAttention
//!   vs Megatron conventions).
//! * [`trainstep`] — the Table 4 harness: compose chunk times, a schedule
//!   and an optimizer step into the paper's training metrics.
//! * [`elastic`] — shrink re-planning after GPU loss: drop data-parallel
//!   lanes, rebalance microbatches, price the degraded step time.

#![forbid(unsafe_code)]

pub mod dualpipe;
pub mod elastic;
pub mod memory;
pub mod mfu;
pub mod schedule;
pub mod trainstep;

pub use elastic::{replan_shrink, ShrinkPlan};
pub use schedule::{ChunkEvent, ChunkKind, ChunkTimes, PipelineOutcome};
pub use trainstep::{chunk_times, table4, Table4Metrics, TrainStepConfig};
