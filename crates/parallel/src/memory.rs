//! Per-GPU training memory accounting (§2.1's memory wall, concretely).
//!
//! DeepSeek-V3 trains 671B parameters on 80 GB GPUs by composing PP16 ×
//! EP64 (experts sharded) with FP8 weights, BF16 activations and sharded
//! FP32 optimizer state. This calculator decomposes per-GPU memory for any
//! plan and verifies the production plan actually fits — and that naive
//! plans do not.

use dsv3_model::config::{Ffn, ModelConfig};
use serde::{Deserialize, Serialize};

/// A parallelism + precision plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Pipeline stages (layers divided evenly).
    pub pp: usize,
    /// Expert-parallel group size (routed experts divided evenly).
    pub ep: usize,
    /// Data-parallel replicas sharing optimizer shards (ZeRO-1 style).
    pub zero_dp: usize,
    /// Bytes per model weight (1 = FP8).
    pub weight_bytes: f64,
    /// Bytes per gradient element (2 = BF16).
    pub grad_bytes: f64,
    /// Optimizer bytes per parameter (FP32 master + two Adam moments = 12).
    pub optimizer_bytes: f64,
    /// Micro-batch tokens resident per GPU.
    pub tokens_in_flight: usize,
    /// Activation bytes per token per layer held for backward (with
    /// recomputation this is a small multiple of the hidden size).
    pub activation_bytes_per_token_layer: f64,
}

/// Activation bytes held for backward per token per layer under selective
/// recomputation, as a multiple of the model's hidden size (BF16 residual
/// stream, attention output, FFN activation product; norms and QKV/FFN
/// expansions recomputed).
pub const SELECTIVE_ACTIVATION_BYTES_PER_HIDDEN: f64 = 20.0;

impl MemoryPlan {
    /// The DeepSeek-V3 production plan: PP16, EP64, FP8 weights, BF16
    /// grads, ZeRO-sharded FP32 optimizer over 128-way DP, selective
    /// recomputation. The activation term derives from the config's hidden
    /// size so the plan tracks [`dsv3_model::zoo::deepseek_v3`].
    #[must_use]
    pub fn deepseek_v3_production() -> Self {
        let hidden = dsv3_model::zoo::deepseek_v3().hidden as f64;
        Self {
            pp: 16,
            ep: 64,
            zero_dp: 128,
            weight_bytes: 1.0,
            grad_bytes: 2.0,
            optimizer_bytes: 12.0,
            tokens_in_flight: 16 * 4096,
            activation_bytes_per_token_layer: SELECTIVE_ACTIVATION_BYTES_PER_HIDDEN * hidden,
        }
    }
}

/// Per-GPU memory breakdown in GB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Model weights resident on the GPU.
    pub weights_gb: f64,
    /// Gradient buffers.
    pub gradients_gb: f64,
    /// Optimizer shard.
    pub optimizer_gb: f64,
    /// Saved activations.
    pub activations_gb: f64,
}

impl MemoryBreakdown {
    /// Total GB.
    #[must_use]
    pub fn total_gb(&self) -> f64 {
        self.weights_gb + self.gradients_gb + self.optimizer_gb + self.activations_gb
    }

    /// Whether the plan fits a GPU with `hbm_gb` minus a runtime reserve.
    #[must_use]
    pub fn fits(&self, hbm_gb: f64, reserve_gb: f64) -> bool {
        self.total_gb() <= hbm_gb - reserve_gb
    }
}

/// Parameters resident per GPU under a plan: experts divide across EP, the
/// rest divides across PP only.
#[must_use]
pub fn params_per_gpu(cfg: &ModelConfig, plan: &MemoryPlan) -> f64 {
    let p = dsv3_model::flops::param_counts(cfg);
    // Expert parameters = total - activated-path dense part; approximate by
    // separating the MoE FFN mass.
    let expert_params = match cfg.ffn {
        Ffn::Dense { .. } => 0.0,
        Ffn::Moe { routed_experts, expert_intermediate, .. } => {
            let per_expert = 3 * cfg.hidden * expert_intermediate;
            let moe_layers = cfg.layers - cfg.leading_dense_layers;
            (routed_experts * per_expert * moe_layers) as f64
        }
    };
    let dense_params = p.total as f64 - expert_params;
    dense_params / plan.pp as f64 + expert_params / (plan.pp as f64 * plan.ep as f64)
}

/// Compute the per-GPU breakdown.
///
/// # Panics
///
/// Panics on a degenerate plan.
#[must_use]
pub fn breakdown(cfg: &ModelConfig, plan: &MemoryPlan) -> MemoryBreakdown {
    assert!(plan.pp > 0 && plan.ep > 0 && plan.zero_dp > 0, "degenerate plan");
    let params = params_per_gpu(cfg, plan);
    let layers_per_stage = cfg.layers as f64 / plan.pp as f64;
    MemoryBreakdown {
        weights_gb: params * plan.weight_bytes / 1e9,
        gradients_gb: params * plan.grad_bytes / 1e9,
        optimizer_gb: params * plan.optimizer_bytes / plan.zero_dp as f64 / 1e9,
        activations_gb: plan.tokens_in_flight as f64
            * layers_per_stage
            * plan.activation_bytes_per_token_layer
            / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv3_model::zoo;

    #[test]
    fn production_plan_fits_80gb() {
        let b = breakdown(&zoo::deepseek_v3(), &MemoryPlan::deepseek_v3_production());
        assert!(b.fits(80.0, 10.0), "total {} GB: {b:?}", b.total_gb());
        assert!(b.total_gb() > 20.0, "and it is not trivially empty: {}", b.total_gb());
    }

    #[test]
    fn without_expert_parallelism_it_cannot_fit() {
        let plan = MemoryPlan { ep: 1, ..MemoryPlan::deepseek_v3_production() };
        let b = breakdown(&zoo::deepseek_v3(), &plan);
        assert!(!b.fits(80.0, 10.0), "671B/16 stages of experts per GPU: {} GB", b.total_gb());
    }

    #[test]
    fn bf16_weights_double_the_weight_term() {
        let fp8 = breakdown(&zoo::deepseek_v3(), &MemoryPlan::deepseek_v3_production());
        let bf16 = breakdown(
            &zoo::deepseek_v3(),
            &MemoryPlan { weight_bytes: 2.0, ..MemoryPlan::deepseek_v3_production() },
        );
        assert!((bf16.weights_gb / fp8.weights_gb - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_sharding_shrinks_optimizer() {
        let base = MemoryPlan::deepseek_v3_production();
        let unsharded = MemoryPlan { zero_dp: 1, ..base };
        let a = breakdown(&zoo::deepseek_v3(), &base);
        let b = breakdown(&zoo::deepseek_v3(), &unsharded);
        assert!((b.optimizer_gb / a.optimizer_gb - 128.0).abs() < 1e-6);
    }

    #[test]
    fn dense_model_has_no_expert_sharding_escape() {
        // A 405B dense model on the same PP16 plan carries far more weight
        // bytes per GPU than V3 despite being "smaller" — EP only helps MoE.
        let v3 = breakdown(&zoo::deepseek_v3(), &MemoryPlan::deepseek_v3_production());
        let llama = breakdown(&zoo::llama31_405b(), &MemoryPlan::deepseek_v3_production());
        assert!(
            llama.weights_gb > 3.0 * v3.weights_gb,
            "{} vs {}",
            llama.weights_gb,
            v3.weights_gb
        );
    }
}
