//! TFLOPS and MFU accounting, causal and non-causal (Table 4's convention).
//!
//! Causal MFU counts only the lower triangle of the attention matrix (the
//! FlashAttention convention); non-causal counts the full matrix (Megatron).
//! Both are computed over BF16 peak.

use dsv3_model::config::ModelConfig;
use dsv3_model::flops;
use serde::{Deserialize, Serialize};

/// Attention-FLOPs counting convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttnConvention {
    /// Lower-triangle only (FlashAttention).
    Causal,
    /// Full attention matrix (Megatron).
    NonCausal,
}

/// Training FLOPs per token under the given convention.
#[must_use]
pub fn flops_per_token(cfg: &ModelConfig, seq: usize, conv: AttnConvention) -> f64 {
    match conv {
        AttnConvention::Causal => flops::training_flops_per_token(cfg, seq),
        AttnConvention::NonCausal => {
            // Non-causal counts the full seq attended length instead of seq/2:
            // exactly double the causal attention-core term.
            let causal_core = flops::attention_core_flops_per_token(cfg, seq);
            flops::training_flops_per_token(cfg, seq) + 3.0 * causal_core
        }
    }
}

/// Achieved TFLOPS per GPU.
#[must_use]
pub fn achieved_tflops(
    cfg: &ModelConfig,
    seq: usize,
    conv: AttnConvention,
    tokens_per_step: f64,
    step_seconds: f64,
    gpus: usize,
) -> f64 {
    let total = flops_per_token(cfg, seq, conv) * tokens_per_step;
    total / step_seconds / gpus as f64 / 1e12
}

/// Model FLOPs utilization against `peak_tflops` (BF16 dense peak; ~989.5
/// for H800/H100 without sparsity).
#[must_use]
pub fn mfu(
    cfg: &ModelConfig,
    seq: usize,
    conv: AttnConvention,
    tokens_per_step: f64,
    step_seconds: f64,
    gpus: usize,
    peak_tflops: f64,
) -> f64 {
    achieved_tflops(cfg, seq, conv, tokens_per_step, step_seconds, gpus) / peak_tflops
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv3_model::zoo;

    #[test]
    fn noncausal_exceeds_causal() {
        let cfg = zoo::deepseek_v3();
        let c = flops_per_token(&cfg, 4096, AttnConvention::Causal);
        let n = flops_per_token(&cfg, 4096, AttnConvention::NonCausal);
        assert!(n > c);
        // The difference is exactly the causal attention core ×3.
        let core = flops::attention_core_flops_per_token(&cfg, 4096);
        assert!((n - c - 3.0 * core).abs() < 1.0);
    }

    #[test]
    fn table4_mfu_from_paper_timing() {
        // Plugging Table 4's own numbers in (62.9M tokens/step from the V3
        // report's 15360×4096 batch, 19.926 s/step, 2048 GPUs) must land on
        // the printed MFU ≈ 43.7% / 38.9%.
        let cfg = zoo::deepseek_v3();
        let tokens = 15_360.0 * 4096.0;
        let causal = mfu(&cfg, 4096, AttnConvention::Causal, tokens, 19.926, 2048, 989.5);
        let noncausal = mfu(&cfg, 4096, AttnConvention::NonCausal, tokens, 19.926, 2048, 989.5);
        assert!((causal - 0.3894).abs() < 0.01, "causal {causal}");
        assert!((noncausal - 0.4373).abs() < 0.012, "noncausal {noncausal}");
    }

    #[test]
    fn faster_steps_higher_mfu() {
        let cfg = zoo::deepseek_v3();
        let t = 15_360.0 * 4096.0;
        let slow = mfu(&cfg, 4096, AttnConvention::Causal, t, 25.0, 2048, 989.5);
        let fast = mfu(&cfg, 4096, AttnConvention::Causal, t, 19.0, 2048, 989.5);
        assert!(fast > slow);
    }
}
