//! Pipeline-parallel schedules: event-driven 1F1B and analytic bubbles.
//!
//! Chunk granularity: each microbatch contributes one forward (`f`), one
//! input-backward (`b`) and one weight-backward (`w`) chunk per stage.
//! DualPipe (reference \[29\] of the paper) overlaps a forward with a
//! backward chunk bidirectionally;
//! its bubble follows the published formula `(PP/2 − 1)·(F&B + B − 3W)`.

use serde::{Deserialize, Serialize};

/// Per-microbatch, per-stage chunk durations (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkTimes {
    /// Forward chunk.
    pub f: f64,
    /// Input-gradient backward chunk.
    pub b: f64,
    /// Weight-gradient backward chunk.
    pub w: f64,
}

impl ChunkTimes {
    /// Validation helper.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.f > 0.0 && self.b > 0.0 && self.w >= 0.0
    }
}

/// Outcome of simulating (or analytically evaluating) a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// Wall-clock time of one step (seconds), excluding the optimizer.
    pub total_time: f64,
    /// Idle (bubble) time of the most-idle stage (seconds).
    pub bubble_time: f64,
    /// Busy time per stage (seconds).
    pub stage_busy: Vec<f64>,
}

impl PipelineOutcome {
    /// Bubble fraction of the step.
    #[must_use]
    pub fn bubble_fraction(&self) -> f64 {
        self.bubble_time / self.total_time
    }
}

/// Kind of a scheduled pipeline chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChunkKind {
    /// Forward pass of one microbatch through one stage.
    Forward,
    /// Input-gradient backward (includes the weight-gradient work when the
    /// schedule folds W into B, as classic 1F1B does).
    Backward,
    /// Decoupled weight-gradient chunk (ZB1P / DualPipe only).
    WeightGrad,
}

/// One scheduled chunk: microbatch `micro` runs its `kind` chunk on
/// `rank` over `[start, end]` seconds.
///
/// For bidirectional schedules the microbatch id is global across both
/// directions (`0..half` = Down, `half..micro` = Up), so `(micro, kind)`
/// uniquely identifies a chunk and a memory simulator can key per-microbatch
/// state off it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkEvent {
    /// Executing rank (= stage for unidirectional schedules).
    pub rank: usize,
    /// Global microbatch id.
    pub micro: usize,
    /// Chunk kind.
    pub kind: ChunkKind,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// Sort events by start time (rank, then micro, then kind as tiebreak) so
/// an event walker sees a deterministic global order.
pub fn sort_events(events: &mut [ChunkEvent]) {
    events.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then_with(|| a.rank.cmp(&b.rank))
            .then_with(|| a.micro.cmp(&b.micro))
            .then_with(|| a.kind.cmp(&b.kind))
    });
}

/// Event-driven 1F1B schedule: `stages` pipeline stages, `micro`
/// microbatches. Weight-gradient chunks are folded into the backward pass
/// (classic 1F1B does not split them).
///
/// # Panics
///
/// Panics if `stages == 0`, `micro == 0`, or `times` is invalid.
#[must_use]
pub fn one_f_one_b(stages: usize, micro: usize, times: ChunkTimes) -> PipelineOutcome {
    one_f_one_b_events(stages, micro, times).0
}

/// [`one_f_one_b`], additionally returning every scheduled chunk as a
/// [`ChunkEvent`] (sorted by start time). The backward events carry the
/// combined `b + w` duration because classic 1F1B folds W into B.
///
/// # Panics
///
/// Panics if `stages == 0`, `micro == 0`, or `times` is invalid.
#[must_use]
pub fn one_f_one_b_events(
    stages: usize,
    micro: usize,
    times: ChunkTimes,
) -> (PipelineOutcome, Vec<ChunkEvent>) {
    assert!(stages > 0 && micro > 0, "degenerate pipeline");
    assert!(times.is_valid(), "invalid chunk times");
    let f = times.f;
    let bw = times.b + times.w; // classic 1F1B runs B and W together
                                // f_done[s][m] / b_done[s][m] completion times.
    let mut f_done = vec![vec![f64::INFINITY; micro]; stages];
    let mut b_done = vec![vec![f64::INFINITY; micro]; stages];
    let mut stage_free = vec![0f64; stages];
    let mut stage_busy = vec![0f64; stages];
    // Greedy per-stage simulation in global time order: each stage keeps
    // the 1F1B discipline — warmup of (stages - s) forwards, then strictly
    // alternating B, F.
    // We iterate rounds: during each round every stage tries to run its next
    // action if dependencies are met; repeat until all backwards are done.
    let mut next_f = vec![0usize; stages]; // next microbatch to forward
    let mut next_b = vec![0usize; stages]; // next microbatch to backward
    let mut events = Vec::with_capacity(2 * stages * micro);
    loop {
        let mut progressed = false;
        for s in 0..stages {
            loop {
                let warmup_target = (stages - s).min(micro);
                let in_flight = next_f[s] - next_b[s];
                // Decide the next action under 1F1B.
                let want_backward = next_b[s] < micro
                    && (in_flight >= warmup_target || next_f[s] == micro)
                    && in_flight > 0;
                if want_backward {
                    let m = next_b[s];
                    // B(s, m) needs B(s+1, m) (or nothing for the last
                    // stage) and F(s, m).
                    let dep = if s + 1 < stages { b_done[s + 1][m] } else { f_done[s][m] };
                    let dep = dep.max(f_done[s][m]);
                    if dep.is_finite() {
                        let start = dep.max(stage_free[s]);
                        let end = start + bw;
                        b_done[s][m] = end;
                        stage_free[s] = end;
                        stage_busy[s] += bw;
                        events.push(ChunkEvent {
                            rank: s,
                            micro: m,
                            kind: ChunkKind::Backward,
                            start,
                            end,
                        });
                        next_b[s] += 1;
                        progressed = true;
                        continue;
                    }
                }
                if next_f[s] < micro && !want_backward {
                    let m = next_f[s];
                    let dep = if s == 0 { 0.0 } else { f_done[s - 1][m] };
                    if dep.is_finite() {
                        let start = dep.max(stage_free[s]);
                        let end = start + f;
                        f_done[s][m] = end;
                        stage_free[s] = end;
                        stage_busy[s] += f;
                        events.push(ChunkEvent {
                            rank: s,
                            micro: m,
                            kind: ChunkKind::Forward,
                            start,
                            end,
                        });
                        next_f[s] += 1;
                        progressed = true;
                        continue;
                    }
                }
                break;
            }
        }
        if next_b.iter().all(|&b| b == micro) {
            break;
        }
        assert!(progressed, "schedule deadlocked");
    }
    let total_time = b_done.iter().flat_map(|v| v.iter()).copied().fold(0.0f64, f64::max);
    let min_busy = stage_busy.iter().copied().fold(f64::INFINITY, f64::min);
    sort_events(&mut events);
    (PipelineOutcome { total_time, bubble_time: total_time - min_busy, stage_busy }, events)
}

/// Analytic 1F1B bubble: `(PP − 1) · (F + B)` where B includes W.
#[must_use]
pub fn bubble_1f1b(stages: usize, times: ChunkTimes) -> f64 {
    (stages as f64 - 1.0) * (times.f + times.b + times.w)
}

/// Analytic ZB1P (zero-bubble, one-pending-W) bubble:
/// `(PP − 1) · (F + B − 2W)`.
#[must_use]
pub fn bubble_zb1p(stages: usize, times: ChunkTimes) -> f64 {
    (stages as f64 - 1.0) * (times.f + times.b - 2.0 * times.w)
}

/// Analytic DualPipe bubble: `(PP/2 − 1) · (F&B + B − 3W)`, where the
/// overlapped forward+backward chunk `F&B` is `max(f, b) + overlap_slack`
/// (perfect overlap ⇒ `max(f, b)`; we use `f + b − min(f,b)·overlap`).
#[must_use]
pub fn bubble_dualpipe(stages: usize, times: ChunkTimes, overlap: f64) -> f64 {
    assert!((0.0..=1.0).contains(&overlap), "overlap is a fraction");
    let fb = times.f + times.b - overlap * times.f.min(times.b);
    ((stages / 2) as f64 - 1.0) * (fb + times.b - 3.0 * times.w).max(0.0)
}

/// Step time for an analytic schedule: compute work plus bubble.
///
/// With `micro` microbatches each stage runs `micro` F, B and W chunks; the
/// critical path is that work plus the schedule's bubble.
#[must_use]
pub fn analytic_step_time(micro: usize, times: ChunkTimes, bubble: f64) -> f64 {
    micro as f64 * (times.f + times.b + times.w) + bubble
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ChunkTimes = ChunkTimes { f: 1.0, b: 2.0, w: 0.5 };

    #[test]
    fn single_stage_has_no_bubble() {
        let o = one_f_one_b(1, 8, T);
        assert!((o.total_time - 8.0 * 3.5).abs() < 1e-9);
        assert!(o.bubble_time.abs() < 1e-9);
    }

    #[test]
    fn one_f_one_b_matches_analytic() {
        // Classic result: total = (M + S - 1)(f + b+w) when f == b+w is not
        // required; with f != b the sim still cannot beat the analytic
        // bubble. Check against the standard closed form for equal chunks.
        let eq = ChunkTimes { f: 2.0, b: 1.5, w: 0.5 };
        let (s, m) = (4, 16);
        let o = one_f_one_b(s, m, eq);
        let per = eq.f + eq.b + eq.w;
        let expected = (m as f64 + s as f64 - 1.0) * per;
        assert!((o.total_time - expected).abs() < 1e-9, "{} vs {expected}", o.total_time);
        assert!((o.bubble_time - bubble_1f1b(s, eq)).abs() < 1e-9);
    }

    #[test]
    fn bubble_shrinks_relative_with_more_microbatches() {
        let small = one_f_one_b(8, 8, T);
        let large = one_f_one_b(8, 64, T);
        assert!(large.bubble_fraction() < small.bubble_fraction());
    }

    #[test]
    fn schedule_respects_dependencies() {
        // Total time can never be less than the critical path of one
        // microbatch through all stages plus remaining work on the last.
        let (s, m) = (6, 3);
        let o = one_f_one_b(s, m, T);
        let critical = s as f64 * T.f + s as f64 * (T.b + T.w);
        assert!(o.total_time >= critical - 1e-9);
    }

    #[test]
    fn analytic_bubble_ordering() {
        // DualPipe < ZB1P < 1F1B for the paper's chunk shape.
        let s = 16;
        let d = bubble_dualpipe(s, T, 1.0);
        let z = bubble_zb1p(s, T);
        let o = bubble_1f1b(s, T);
        assert!(d < z, "dualpipe {d} vs zb1p {z}");
        assert!(z < o, "zb1p {z} vs 1f1b {o}");
    }

    #[test]
    fn dualpipe_overlap_helps() {
        let none = bubble_dualpipe(16, T, 0.0);
        let full = bubble_dualpipe(16, T, 1.0);
        assert!(full < none);
    }

    #[test]
    fn busy_time_conserved() {
        let (s, m) = (4, 10);
        let o = one_f_one_b(s, m, T);
        for busy in &o.stage_busy {
            assert!((busy - m as f64 * (T.f + T.b + T.w)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_stages_panics() {
        let _ = one_f_one_b(0, 1, T);
    }

    #[test]
    fn events_cover_every_chunk_exactly_once() {
        let (s, m) = (4, 10);
        let (o, ev) = one_f_one_b_events(s, m, T);
        // One F and one B event per (stage, micro); W is folded into B.
        assert_eq!(ev.len(), 2 * s * m);
        for stage in 0..s {
            for kind in [ChunkKind::Forward, ChunkKind::Backward] {
                let of_kind: Vec<_> =
                    ev.iter().filter(|e| e.rank == stage && e.kind == kind).collect();
                assert_eq!(of_kind.len(), m);
                let mut micros: Vec<_> = of_kind.iter().map(|e| e.micro).collect();
                micros.sort_unstable();
                assert_eq!(micros, (0..m).collect::<Vec<_>>());
            }
        }
        // Durations match the chunk times and nothing runs past the end.
        for e in &ev {
            let dur = match e.kind {
                ChunkKind::Forward => T.f,
                ChunkKind::Backward => T.b + T.w,
                ChunkKind::WeightGrad => T.w,
            };
            assert!((e.end - e.start - dur).abs() < 1e-9);
            assert!(e.end <= o.total_time + 1e-9);
        }
        // Sorted by start time.
        for w in ev.windows(2) {
            assert!(w[0].start <= w[1].start + 1e-12);
        }
    }

    #[test]
    fn events_respect_per_stage_serialization() {
        // No two chunks on one stage may overlap in time.
        let (_, ev) = one_f_one_b_events(6, 12, T);
        for s in 0..6 {
            let mut mine: Vec<_> = ev.iter().filter(|e| e.rank == s).collect();
            mine.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in mine.windows(2) {
                assert!(w[1].start >= w[0].end - 1e-9, "overlap on stage {s}");
            }
        }
    }

    #[test]
    fn events_wrapper_is_byte_identical_to_plain() {
        let (s, m) = (8, 24);
        let plain = one_f_one_b(s, m, T);
        let (viaev, _) = one_f_one_b_events(s, m, T);
        assert_eq!(plain, viaev);
    }

    #[test]
    fn one_f_one_b_in_flight_matches_warmup_cap() {
        // The defining 1F1B property (and what bounds activation memory):
        // stage s never holds more than min(stages - s, micro) forwards
        // whose backward has not yet run.
        let (s, m) = (6, 16);
        let (_, mut ev) = one_f_one_b_events(s, m, T);
        sort_events(&mut ev);
        let mut in_flight = vec![0i64; s];
        let mut peak = vec![0i64; s];
        for e in &ev {
            match e.kind {
                ChunkKind::Forward => in_flight[e.rank] += 1,
                ChunkKind::Backward => in_flight[e.rank] -= 1,
                ChunkKind::WeightGrad => {}
            }
            peak[e.rank] = peak[e.rank].max(in_flight[e.rank]);
        }
        for (stage, &p) in peak.iter().enumerate() {
            assert_eq!(p, (s - stage).min(m) as i64, "stage {stage}");
        }
    }
}
