//! The Table 4 harness: training metrics of DeepSeek-V3 on 2,048 GPUs.
//!
//! Table 4 decomposes one training step into warmup forward (1F), the steady
//! 1F1B phase, the drain backward (1B), weight-gradient tail (1W), pipeline
//! bubble, and the optimizer step, and reports throughput (tokens/day) and
//! MFU for the MPFT and MRFT fabrics. This harness rebuilds those metrics
//! from the FLOPs model plus the measured chunk-shape ratios; the fabric
//! enters through a communication-efficiency factor, which is ≈1 for both
//! MPFT and MRFT (the parity Figures 5–6 establish).

use crate::mfu::{achieved_tflops, mfu, AttnConvention};
use crate::schedule::{analytic_step_time, bubble_dualpipe, ChunkTimes};
use dsv3_model::config::ModelConfig;
use dsv3_model::zoo;
use serde::{Deserialize, Serialize};

/// Configuration of a production training step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainStepConfig {
    /// Model being trained.
    pub model: ModelConfig,
    /// Sequence length.
    pub seq: usize,
    /// Global batch in tokens per step (V3: 15360 sequences × 4096).
    pub tokens_per_step: f64,
    /// GPUs in the cluster.
    pub gpus: usize,
    /// Pipeline stages (V3: 16).
    pub pp: usize,
    /// Microbatches per step per pipeline.
    pub microbatches: usize,
    /// BF16 dense peak TFLOPS per GPU.
    pub peak_tflops: f64,
    /// Fraction of peak the compute kernels sustain while running
    /// (calibrated so the end-to-end MFU matches the measured 39%).
    pub kernel_efficiency: f64,
    /// Relative time shares of F : B : W chunks (Table 4 measures
    /// 1.13 : 1.99 : 0.48 — W is cheap because EP communication overlaps
    /// into F and B under DualPipe).
    pub fbw_ratio: (f64, f64, f64),
    /// Optimizer step seconds (measured 0.29–0.31).
    pub optimizer_seconds: f64,
    /// Fabric communication efficiency multiplier on chunk times (1.0 =
    /// perfect; MPFT and MRFT both sit at ≈1.0).
    pub comm_efficiency: f64,
}

impl TrainStepConfig {
    /// DeepSeek-V3's production configuration.
    #[must_use]
    pub fn deepseek_v3(comm_efficiency: f64) -> Self {
        Self {
            model: zoo::deepseek_v3(),
            seq: 4096,
            tokens_per_step: 15_360.0 * 4096.0,
            gpus: 2048,
            pp: 16,
            microbatches: 120,
            peak_tflops: 989.5,
            kernel_efficiency: 0.413,
            fbw_ratio: (1.13, 1.99, 0.48),
            optimizer_seconds: 0.29,
            comm_efficiency,
        }
    }
}

/// Table 4 metrics for one fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Metrics {
    /// Fabric label.
    pub fabric: String,
    /// Billions of tokens per day.
    pub tokens_per_day_b: f64,
    /// Seconds per step.
    pub time_per_step_s: f64,
    /// Warmup forward (s).
    pub f1_s: f64,
    /// Pipeline bubble (s).
    pub bubble_s: f64,
    /// Drain backward (s).
    pub b1_s: f64,
    /// Weight-gradient tail (s).
    pub w1_s: f64,
    /// Steady 1F1B phase (s).
    pub f1b1_s: f64,
    /// Optimizer (s).
    pub opt_s: f64,
    /// Achieved non-causal TFLOPS per GPU.
    pub tflops_noncausal: f64,
    /// Achieved causal TFLOPS per GPU.
    pub tflops_causal: f64,
    /// Non-causal MFU.
    pub mfu_noncausal: f64,
    /// Causal MFU.
    pub mfu_causal: f64,
}

/// Compute Table 4 metrics for `cfg`.
///
/// ```
/// use dsv3_parallel::trainstep::{table4, TrainStepConfig};
///
/// let m = table4("MPFT", &TrainStepConfig::deepseek_v3(1.0));
/// assert!((m.mfu_causal - 0.39).abs() < 0.02);
/// ```
///
/// # Panics
///
/// Panics on degenerate configs (zero sizes, non-positive efficiency).
/// Per-microbatch chunk times implied by `cfg`: the per-GPU compute seconds
/// at kernel efficiency, split by the measured F:B:W shape. This is the raw
/// material of the Table 4 decomposition, exposed so other simulators (e.g.
/// the memory timeline) can schedule the same chunks.
///
/// # Panics
///
/// Panics on degenerate configs (zero sizes, non-positive efficiency).
#[must_use]
pub fn chunk_times(cfg: &TrainStepConfig) -> ChunkTimes {
    assert!(cfg.gpus > 0 && cfg.pp > 0 && cfg.microbatches > 0, "degenerate cluster");
    assert!(cfg.kernel_efficiency > 0.0 && cfg.comm_efficiency > 0.0, "bad efficiency");
    // Total compute time per step if every GPU ran its causal-FLOPs share at
    // kernel efficiency.
    let total_flops = crate::mfu::flops_per_token(&cfg.model, cfg.seq, AttnConvention::Causal)
        * cfg.tokens_per_step;
    let per_gpu_seconds = total_flops
        / cfg.gpus as f64
        / (cfg.peak_tflops * 1e12 * cfg.kernel_efficiency * cfg.comm_efficiency);
    // Split into per-microbatch chunks by the measured F:B:W shape.
    let (rf, rb, rw) = cfg.fbw_ratio;
    let rsum = rf + rb + rw;
    let m = cfg.microbatches as f64;
    ChunkTimes {
        f: per_gpu_seconds * rf / rsum / m,
        b: per_gpu_seconds * rb / rsum / m,
        w: per_gpu_seconds * rw / rsum / m,
    }
}

#[must_use]
pub fn table4(fabric: &str, cfg: &TrainStepConfig) -> Table4Metrics {
    let times = chunk_times(cfg);
    let bubble = bubble_dualpipe(cfg.pp, times, 1.0);
    let pipeline_s = analytic_step_time(cfg.microbatches, times, bubble);
    let step_s = pipeline_s + cfg.optimizer_seconds;
    // Table 4's 1F / 1B / 1W rows: the warmup/drain phases, i.e. one
    // pipeline-depth worth of chunks.
    let f1 = times.f * (cfg.pp as f64 - 1.0);
    let b1 = times.b * (cfg.pp as f64 - 1.0);
    let w1 = times.w * (cfg.pp as f64 - 1.0);
    let f1b1 = pipeline_s - bubble - f1 - b1 - w1;
    let tokens_per_day = cfg.tokens_per_step * (86_400.0 / step_s);
    Table4Metrics {
        fabric: fabric.to_string(),
        tokens_per_day_b: tokens_per_day / 1e9,
        time_per_step_s: step_s,
        f1_s: f1,
        bubble_s: bubble,
        b1_s: b1,
        w1_s: w1,
        f1b1_s: f1b1,
        opt_s: cfg.optimizer_seconds,
        tflops_noncausal: achieved_tflops(
            &cfg.model,
            cfg.seq,
            AttnConvention::NonCausal,
            cfg.tokens_per_step,
            step_s,
            cfg.gpus,
        ),
        tflops_causal: achieved_tflops(
            &cfg.model,
            cfg.seq,
            AttnConvention::Causal,
            cfg.tokens_per_step,
            step_s,
            cfg.gpus,
        ),
        mfu_noncausal: mfu(
            &cfg.model,
            cfg.seq,
            AttnConvention::NonCausal,
            cfg.tokens_per_step,
            step_s,
            cfg.gpus,
            cfg.peak_tflops,
        ),
        mfu_causal: mfu(
            &cfg.model,
            cfg.seq,
            AttnConvention::Causal,
            cfg.tokens_per_step,
            step_s,
            cfg.gpus,
            cfg.peak_tflops,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_shape() {
        let m = table4("MPFT", &TrainStepConfig::deepseek_v3(1.0));
        // Paper: 272.80 B tokens/day, 19.926 s/step, MFU 43.73% / 38.94%.
        assert!((m.time_per_step_s - 19.926).abs() < 1.0, "step {}", m.time_per_step_s);
        assert!((m.tokens_per_day_b - 272.8).abs() < 15.0, "tokens/day {}", m.tokens_per_day_b);
        assert!((m.mfu_causal - 0.3894).abs() < 0.02, "causal mfu {}", m.mfu_causal);
        assert!((m.mfu_noncausal - 0.4373).abs() < 0.02, "noncausal mfu {}", m.mfu_noncausal);
        assert!((m.tflops_causal - 385.0).abs() < 20.0, "causal tflops {}", m.tflops_causal);
        assert!((m.tflops_noncausal - 432.0).abs() < 22.0, "{}", m.tflops_noncausal);
    }

    #[test]
    fn mpft_equals_mrft() {
        let a = table4("MPFT", &TrainStepConfig::deepseek_v3(1.0));
        let b = table4("MRFT", &TrainStepConfig::deepseek_v3(1.0));
        assert!((a.time_per_step_s - b.time_per_step_s).abs() < 1e-12);
    }

    #[test]
    fn step_decomposition_sums() {
        let m = table4("MPFT", &TrainStepConfig::deepseek_v3(1.0));
        let sum = m.f1_s + m.b1_s + m.w1_s + m.f1b1_s + m.bubble_s + m.opt_s;
        assert!((sum - m.time_per_step_s).abs() < 1e-9);
        assert!(m.bubble_s > 0.0 && m.bubble_s < 4.0, "bubble {}", m.bubble_s);
    }

    #[test]
    fn worse_comm_slows_training() {
        let good = table4("x", &TrainStepConfig::deepseek_v3(1.0));
        let bad = table4("y", &TrainStepConfig::deepseek_v3(0.8));
        assert!(bad.time_per_step_s > good.time_per_step_s);
        assert!(bad.mfu_causal < good.mfu_causal);
    }
}
