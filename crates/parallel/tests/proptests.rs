//! Property-based tests for pipeline schedules.

use dsv3_parallel::dualpipe::{dualpipe, zb1p};
use dsv3_parallel::schedule::{analytic_step_time, bubble_dualpipe, one_f_one_b, ChunkTimes};
use proptest::prelude::*;

fn arb_times() -> impl Strategy<Value = ChunkTimes> {
    (0.1f64..5.0, 0.1f64..5.0, 0.0f64..2.0).prop_map(|(f, b, w)| ChunkTimes {
        f,
        b,
        w: w.min(b * 0.9).max(0.01),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every schedule's makespan is bounded below by per-stage work and by
    /// the one-microbatch critical path, and work is conserved.
    #[test]
    fn schedules_lower_bounds(stages in 1usize..8, micro_half in 4usize..16, t in arb_times()) {
        let micro = 2 * micro_half.max(stages);
        let work = micro as f64 * (t.f + t.b + t.w);
        let critical = stages as f64 * (t.f + t.b) + t.w;
        for outcome in [one_f_one_b(stages, micro, t), zb1p(stages, micro, t)] {
            prop_assert!(outcome.total_time >= work - 1e-9);
            prop_assert!(outcome.total_time >= critical - 1e-9);
            for busy in &outcome.stage_busy {
                prop_assert!((busy - work).abs() < 1e-6, "work conserved per stage");
            }
        }
        let dp = dualpipe(stages, micro, t);
        prop_assert!(dp.total_time >= micro as f64 * (t.f.max(t.b) + t.w) - 1e-9);
    }

    /// ZB1P never loses to classic 1F1B, and DualPipe never loses to ZB1P
    /// when chunks overlap well (f ≈ b).
    #[test]
    fn schedule_ordering(stages in 2usize..8, micro_half in 8usize..24, base in 0.5f64..3.0, w in 0.05f64..0.5) {
        let t = ChunkTimes { f: base, b: base, w: w.min(base * 0.9) };
        let micro = 2 * micro_half.max(stages);
        let classic = one_f_one_b(stages, micro, t);
        let zb = zb1p(stages, micro, t);
        let dp = dualpipe(stages, micro, t);
        prop_assert!(zb.total_time <= classic.total_time + 1e-9);
        prop_assert!(dp.total_time <= zb.total_time + 1e-9, "dp {} zb {}", dp.total_time, zb.total_time);
    }

    /// The analytic step-time helper is consistent: work + bubble.
    #[test]
    fn analytic_consistency(stages_half in 1usize..8, micro in 8usize..64, t in arb_times()) {
        let stages = 2 * stages_half;
        let bubble = bubble_dualpipe(stages, t, 1.0);
        let total = analytic_step_time(micro, t, bubble);
        prop_assert!((total - (micro as f64 * (t.f + t.b + t.w) + bubble)).abs() < 1e-9);
        prop_assert!(bubble >= 0.0);
    }
}
