//! Map the metastable boundary of the spike study: which client/admission
//! configurations recover from the 2x retry spike, and where does backoff
//! jitter alone decide the outcome?
//!
//! Run with `cargo run --release -p dsv3-serving --example jitter_scan`.
//!
//! Each row replays the `overload` spike timeline (30 s at 0.9x capacity,
//! 30 s at 2x, 120 s back at 0.9x) under one configuration and prints the
//! mean goodput per phase plus `badrun` — the longest run of post-spike
//! windows where goodput sat below half the offered load while offered
//! load was back at baseline. That is exactly the signal the telemetry
//! metastability detector dwells on (6 windows), so `badrun >= 6` means
//! the watchdog would page.
//!
//! The scan shows three regimes:
//!
//! * **No admission control**: the storm is self-sustaining at any
//!   jitter setting or client timeout — retry amplification (timeout
//!   4 s, budget 3) keeps wasted zombie prefill above capacity forever.
//!   Jitter alone cannot rescue an unprotected system.
//! * **Full shedding** (bounded queue + rate limit + deadline): never
//!   metastable, jitter or not.
//! * **A bare bounded queue near the boundary** (`queue_cap` ~24-32,
//!   where queue wait sits near the client timeout): jitter is
//!   decisive. This is where the `spike-storm` / `spike-storm-jitter`
//!   audit arms live (`queue_cap: 27`).

use dsv3_faults::{Backoff, FaultPlan, RecoveryPolicy};
use dsv3_serving::engine::{run_overload, ServingSimConfig};
use dsv3_serving::overload::{AdmissionConfig, ClientConfig, OverloadConfig, RateLimitConfig};
use dsv3_serving::router::RouterPolicy;
use dsv3_serving::workload::{ArrivalProcess, Phase};

const CAP: f64 = 6.0;

fn arrival() -> ArrivalProcess {
    ArrivalProcess::Phased {
        phases: vec![
            Phase { duration_ms: 30_000.0, rate_per_s: 0.9 * CAP },
            Phase { duration_ms: 30_000.0, rate_per_s: 2.0 * CAP },
            Phase { duration_ms: 120_000.0, rate_per_s: 0.9 * CAP },
        ],
    }
}

fn shed() -> AdmissionConfig {
    AdmissionConfig {
        queue_cap: 256,
        deadline_headroom: 1.0,
        rate_limit: Some(RateLimitConfig { rate_per_s_per_replica: 2.5, burst: 24.0 }),
    }
}

fn run_case(label: &str, ov: &OverloadConfig) {
    let n = ((30.0 * 0.9 * CAP) + (30.0 * 2.0 * CAP) + (120.0 * 0.9 * CAP)) as usize;
    let mut cfg = ServingSimConfig::h800_baseline(
        arrival(),
        n,
        RouterPolicy::Disaggregated { prefill_fraction: 0.25 },
    );
    cfg.workload.seed = 20_250_808;
    let plan = FaultPlan { replicas: 4, planes: 8, links: 0, events: Vec::new() };
    let r = run_overload(&cfg, &plan, &RecoveryPolicy::default(), ov);
    let mean = |from: f64, to: f64| {
        let s: Vec<f64> = r
            .timeline
            .iter()
            .filter(|w| w.start_ms >= from && w.start_ms < to)
            .map(|w| w.goodput_rps)
            .collect();
        if s.is_empty() {
            f64::NAN
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    };
    // Metastability signal: longest run of post-spike windows where
    // goodput < 50% of offered while offered is back at baseline.
    let mut worst = 0usize;
    let mut cur = 0usize;
    for w in r.timeline.iter().filter(|w| w.start_ms >= 60_000.0) {
        let offered_rps = w.offered as f64 / 5.0;
        if w.offered > 0
            && offered_rps < 1.25 * 0.9 * CAP
            && (w.good as f64 / 5.0) < 0.5 * offered_rps
        {
            cur += 1;
            worst = worst.max(cur);
        } else {
            cur = 0;
        }
    }
    println!(
        "{label:<34} spike {:5.2}  plateau(60-120) {:5.2}  recovery(120-180) {:5.2}  badrun {:3}  timeouts {:5}  retries {:5}  rejected {:4}  completed {:4}",
        mean(30_000.0, 60_000.0),
        mean(60_000.0, 120_000.0),
        mean(120_000.0, 180_000.0),
        worst,
        r.overload.client_timeouts,
        r.overload.client_retries,
        r.overload.rejected,
        r.serving.completed,
    );
}

fn main() {
    let base = OverloadConfig {
        timeline_window_ms: 5_000.0,
        priority_classes: 4,
        ..OverloadConfig::disabled()
    };
    let jitter_free = |cl: ClientConfig| ClientConfig { backoff: Backoff::default(), ..cl };

    println!("-- no admission control: metastable regardless of jitter or timeout --");
    let mut ov = base.clone();
    ov.clients = Some(jitter_free(ClientConfig::default()));
    run_case("none / jitter-free", &ov);

    let mut ov = base.clone();
    ov.clients = Some(ClientConfig::default());
    run_case("none / jittered", &ov);

    for t in [6_000.0, 8_000.0, 12_000.0] {
        let mut ov = base.clone();
        ov.clients = Some(ClientConfig { timeout_ms: t, ..ClientConfig::default() });
        run_case(&format!("none / jittered t={t}"), &ov);
        let mut ov = base.clone();
        ov.clients = Some(jitter_free(ClientConfig { timeout_ms: t, ..ClientConfig::default() }));
        run_case(&format!("none / jitter-free t={t}"), &ov);
    }

    let mut ov = base.clone();
    ov.clients = Some(ClientConfig {
        backoff: Backoff { base_ms: 500.0, factor: 2.0, max_ms: 20_000.0, jitter: true },
        ..ClientConfig::default()
    });
    run_case("none / jittered slow backoff", &ov);

    let mut ov = base.clone();
    ov.clients = Some(ClientConfig { retry_budget: 1, ..ClientConfig::default() });
    run_case("none / jittered budget=1", &ov);

    println!("-- full shedding: never metastable --");
    let mut ov = base.clone();
    ov.admission = Some(shed());
    ov.clients = Some(jitter_free(ClientConfig::default()));
    run_case("shed / jitter-free", &ov);

    let mut ov = base.clone();
    ov.admission = Some(shed());
    ov.clients = Some(ClientConfig::default());
    run_case("shed / jittered", &ov);

    println!("-- bare bounded queue at the boundary: jitter decides --");
    for cap in [20usize, 22, 24, 25, 26, 27, 28, 29, 30, 31, 32] {
        let mut ov = base.clone();
        ov.admission =
            Some(AdmissionConfig { queue_cap: cap, deadline_headroom: 0.0, rate_limit: None });
        ov.clients = Some(jitter_free(ClientConfig::default()));
        run_case(&format!("qcap={cap} / jitter-free"), &ov);
        let mut ov2 = ov.clone();
        ov2.clients = Some(ClientConfig::default());
        run_case(&format!("qcap={cap} / jittered"), &ov2);
    }
}
