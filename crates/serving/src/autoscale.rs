//! Reactive autoscaling for the serving engine's prefill and decode
//! pools, with provisioning lag and a crash-loop circuit breaker.
//!
//! The DeepSeek-V3 production deployment sizes prefill and decode pools
//! independently for the offered load (§2.3.1 disaggregation; the
//! technical report's serving section). This module adds the *reactive*
//! version: pools scale on queue-depth/backlog signals, scale-ups pay a
//! provisioning lag (a replica ordered now helps later — the reason
//! autoscaling alone cannot absorb a sharp spike, and admission control
//! must hold the line meanwhile), scale-downs are immediate and
//! drain-free, and a circuit breaker ejects replicas that crash-loop on
//! a `FaultPlan` timeline faster than they can be useful.
//!
//! KV capacity is a *shared* tier in this model
//! (`KvCacheManager` is constructed once per run), so scaling moves
//! compute slots — batch capacity and prefill bandwidth — not cache
//! bytes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Crash-loop circuit breaker: eject a replica that keeps dying.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Crashes within `window_ms` that trip the breaker.
    pub crash_threshold: u32,
    /// Sliding crash-counting window, ms.
    pub window_ms: f64,
    /// How long a tripped replica stays ejected (out of the healthy
    /// set even if the fault plan has repaired it), ms.
    pub cooloff_ms: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { crash_threshold: 3, window_ms: 60_000.0, cooloff_ms: 120_000.0 }
    }
}

/// Reactive-autoscaler parameters. `decode_base`/`prefill_base` anchor
/// the scale: the engine's configured `max_batch` and prefill rate
/// describe the *base* pools, and live pools scale them linearly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Decode replicas at t = 0 (must equal the fault plan's `replicas`
    /// so crash timelines keep addressing real replicas).
    pub decode_base: usize,
    /// Floor for decode scale-down.
    pub decode_min: usize,
    /// Ceiling for decode scale-up.
    pub decode_max: usize,
    /// Prefill replicas at t = 0.
    pub prefill_base: usize,
    /// Floor for prefill scale-down.
    pub prefill_min: usize,
    /// Ceiling for prefill scale-up.
    pub prefill_max: usize,
    /// Scale decode up when (smoothed) ready-queue depth per live
    /// replica exceeds this.
    pub up_queue_per_replica: f64,
    /// Scale decode down when (smoothed) *total decode work* — queued
    /// plus actively decoding — per live replica falls below this. A
    /// drained queue with a full batch is a healthy pool, not an idle
    /// one.
    pub down_queue_per_replica: f64,
    /// Scale prefill up when the prefill backlog exceeds this many ms of
    /// station work.
    pub prefill_up_backlog_ms: f64,
    /// Scale prefill down when the backlog falls below this.
    pub prefill_down_backlog_ms: f64,
    /// Signal-evaluation period, simulated ms.
    pub evaluate_every_ms: f64,
    /// Minimum time between consecutive scale actions per pool, ms.
    pub cooldown_ms: f64,
    /// Delay between ordering a replica and it joining the pool, ms.
    pub provision_lag_ms: f64,
    /// Crash-loop ejection (`None` = no breaker).
    pub breaker: Option<BreakerConfig>,
}

impl AutoscaleConfig {
    /// A reasonable reactive policy for a pool of `decode_base` decode
    /// and `prefill_base` prefill replicas, allowed to grow 4x.
    #[must_use]
    pub fn reactive(decode_base: usize, prefill_base: usize) -> Self {
        Self {
            decode_base,
            decode_min: decode_base.div_ceil(2).max(1),
            decode_max: decode_base * 4,
            prefill_base,
            prefill_min: prefill_base.div_ceil(2).max(1),
            prefill_max: prefill_base * 4,
            up_queue_per_replica: 8.0,
            down_queue_per_replica: 1.0,
            prefill_up_backlog_ms: 2_000.0,
            prefill_down_backlog_ms: 200.0,
            evaluate_every_ms: 1_000.0,
            cooldown_ms: 5_000.0,
            provision_lag_ms: 15_000.0,
            breaker: Some(BreakerConfig::default()),
        }
    }
}

/// What the autoscaler did over a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AutoscaleStats {
    /// Decode scale-up orders placed.
    pub decode_scale_ups: usize,
    /// Decode scale-downs applied.
    pub decode_scale_downs: usize,
    /// Prefill scale-up orders placed.
    pub prefill_scale_ups: usize,
    /// Prefill scale-downs applied.
    pub prefill_scale_downs: usize,
    /// Peak live decode replicas.
    pub decode_peak: usize,
    /// Live decode replicas at the end of the run.
    pub decode_final: usize,
    /// Peak live prefill replicas.
    pub prefill_peak: usize,
    /// Live prefill replicas at the end of the run.
    pub prefill_final: usize,
    /// Replicas ejected by the crash-loop breaker.
    pub breaker_ejections: usize,
}

/// Live autoscaler state (engine-internal).
#[derive(Debug, Clone)]
pub(crate) struct AutoscaleState {
    /// Live decode replicas (provisioned and past their lag).
    pub(crate) decode_live: usize,
    /// Live prefill replicas.
    pub(crate) prefill_live: usize,
    /// In-flight provisions: (ready_ms, is_decode), kept sorted.
    pending: Vec<(f64, bool)>,
    next_eval_ms: f64,
    decode_hold_until: f64,
    prefill_hold_until: f64,
    /// Recent crash times per replica, pruned to the breaker window.
    crash_times: BTreeMap<usize, Vec<f64>>,
    /// Breaker ejections: replica -> ejected-until time.
    eject_until: BTreeMap<usize, f64>,
    /// Smoothed ready-queue depth (decode scale-up signal).
    queue_ewma: f64,
    /// Smoothed queued + actively-decoding work (decode scale-down
    /// signal).
    work_ewma: f64,
    /// Smoothed prefill backlog, ms.
    backlog_ewma: f64,
    /// False until the first evaluation primes the EWMAs.
    primed: bool,
    pub(crate) stats: AutoscaleStats,
}

/// EWMA weight on the newest sample: heavy enough to track a spike
/// within a few evaluation periods, light enough that one drained
/// queue sample cannot trigger a scale-down.
const SIGNAL_ALPHA: f64 = 0.3;

impl AutoscaleState {
    pub(crate) fn new(cfg: &AutoscaleConfig) -> Self {
        assert!(cfg.decode_base >= 1 && cfg.prefill_base >= 1, "pools need a base replica");
        assert!(
            (cfg.decode_min..=cfg.decode_max).contains(&cfg.decode_base),
            "decode_base outside [min, max]"
        );
        assert!(
            (cfg.prefill_min..=cfg.prefill_max).contains(&cfg.prefill_base),
            "prefill_base outside [min, max]"
        );
        let stats = AutoscaleStats {
            decode_peak: cfg.decode_base,
            prefill_peak: cfg.prefill_base,
            ..AutoscaleStats::default()
        };
        Self {
            decode_live: cfg.decode_base,
            prefill_live: cfg.prefill_base,
            pending: Vec::new(),
            next_eval_ms: cfg.evaluate_every_ms,
            decode_hold_until: 0.0,
            prefill_hold_until: 0.0,
            crash_times: BTreeMap::new(),
            eject_until: BTreeMap::new(),
            queue_ewma: 0.0,
            work_ewma: 0.0,
            backlog_ewma: 0.0,
            primed: false,
            stats,
        }
    }

    /// Bring provisions whose lag has elapsed into the live pools.
    pub(crate) fn apply_due(&mut self, cfg: &AutoscaleConfig, now_ms: f64) {
        while self.pending.first().is_some_and(|&(t, _)| t <= now_ms) {
            let (_, is_decode) = self.pending.remove(0);
            if is_decode {
                self.decode_live = (self.decode_live + 1).min(cfg.decode_max);
                self.stats.decode_peak = self.stats.decode_peak.max(self.decode_live);
            } else {
                self.prefill_live = (self.prefill_live + 1).min(cfg.prefill_max);
                self.stats.prefill_peak = self.stats.prefill_peak.max(self.prefill_live);
            }
        }
    }

    /// Record a crash; returns true if the breaker ejected the replica.
    pub(crate) fn on_crash(&mut self, cfg: &AutoscaleConfig, replica: usize, now_ms: f64) -> bool {
        let Some(breaker) = &cfg.breaker else { return false };
        let times = self.crash_times.entry(replica).or_default();
        times.push(now_ms);
        times.retain(|&t| now_ms - t <= breaker.window_ms);
        if times.len() as u32 >= breaker.crash_threshold
            && self.eject_until.get(&replica).is_none_or(|&until| until <= now_ms)
        {
            self.eject_until.insert(replica, now_ms + breaker.cooloff_ms);
            self.stats.breaker_ejections += 1;
            return true;
        }
        false
    }

    /// True if the breaker currently holds this replica out of service.
    pub(crate) fn is_ejected(&self, replica: usize, now_ms: f64) -> bool {
        self.eject_until.get(&replica).is_some_and(|&until| until > now_ms)
    }

    /// Feed the period signals; scale pools with lag/cooldowns.
    /// `decode_queue` is the ready-queue depth, `decode_active` the
    /// jobs currently holding a batch slot — the scale-down signal
    /// needs both, because a drained queue at full occupancy means the
    /// pool is exactly sized, not oversized.
    pub(crate) fn evaluate(
        &mut self,
        cfg: &AutoscaleConfig,
        now_ms: f64,
        decode_queue: usize,
        decode_active: usize,
        prefill_backlog_ms: f64,
    ) {
        if now_ms < self.next_eval_ms {
            return;
        }
        self.next_eval_ms = now_ms + cfg.evaluate_every_ms;

        let queue = decode_queue as f64;
        let work = (decode_queue + decode_active) as f64;
        if self.primed {
            self.queue_ewma += SIGNAL_ALPHA * (queue - self.queue_ewma);
            self.work_ewma += SIGNAL_ALPHA * (work - self.work_ewma);
            self.backlog_ewma += SIGNAL_ALPHA * (prefill_backlog_ms - self.backlog_ewma);
        } else {
            self.queue_ewma = queue;
            self.work_ewma = work;
            self.backlog_ewma = prefill_backlog_ms;
            self.primed = true;
        }

        let pending_decode = self.pending.iter().filter(|&&(_, d)| d).count();
        let per_replica = self.queue_ewma / self.decode_live.max(1) as f64;
        let work_per_replica = self.work_ewma / self.decode_live.max(1) as f64;
        if now_ms >= self.decode_hold_until {
            if per_replica > cfg.up_queue_per_replica
                && self.decode_live + pending_decode < cfg.decode_max
            {
                let pos =
                    self.pending.partition_point(|&(t, _)| t <= now_ms + cfg.provision_lag_ms);
                self.pending.insert(pos, (now_ms + cfg.provision_lag_ms, true));
                self.stats.decode_scale_ups += 1;
                self.decode_hold_until = now_ms + cfg.cooldown_ms;
            } else if work_per_replica < cfg.down_queue_per_replica
                && pending_decode == 0
                && self.decode_live > cfg.decode_min
            {
                self.decode_live -= 1;
                self.stats.decode_scale_downs += 1;
                self.decode_hold_until = now_ms + cfg.cooldown_ms;
            }
        }

        let pending_prefill = self.pending.len() - pending_decode;
        if now_ms >= self.prefill_hold_until {
            if self.backlog_ewma > cfg.prefill_up_backlog_ms
                && self.prefill_live + pending_prefill < cfg.prefill_max
            {
                let pos =
                    self.pending.partition_point(|&(t, _)| t <= now_ms + cfg.provision_lag_ms);
                self.pending.insert(pos, (now_ms + cfg.provision_lag_ms, false));
                self.stats.prefill_scale_ups += 1;
                self.prefill_hold_until = now_ms + cfg.cooldown_ms;
            } else if self.backlog_ewma < cfg.prefill_down_backlog_ms
                && pending_prefill == 0
                && self.prefill_live > cfg.prefill_min
            {
                self.prefill_live -= 1;
                self.stats.prefill_scale_downs += 1;
                self.prefill_hold_until = now_ms + cfg.cooldown_ms;
            }
        }
    }

    /// Next time something scheduled here happens (provision landing or
    /// the next evaluation) — feeds the engine's idle next-event jump.
    pub(crate) fn next_wake_ms(&self) -> f64 {
        let pending = self.pending.first().map_or(f64::INFINITY, |&(t, _)| t);
        pending.min(self.next_eval_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig::reactive(4, 2)
    }

    #[test]
    fn reactive_config_is_internally_consistent() {
        let c = cfg();
        assert!(c.decode_min <= c.decode_base && c.decode_base <= c.decode_max);
        assert!(c.prefill_min <= c.prefill_base && c.prefill_base <= c.prefill_max);
        assert!(c.down_queue_per_replica < c.up_queue_per_replica);
        assert!(c.prefill_down_backlog_ms < c.prefill_up_backlog_ms);
    }

    #[test]
    fn scale_up_pays_provisioning_lag() {
        let c = cfg();
        let mut s = AutoscaleState::new(&c);
        assert_eq!(s.decode_live, 4);
        // Deep queue at t=1000 → order one replica; it is NOT live yet.
        s.evaluate(&c, 1_000.0, 100, 0, 0.0);
        assert_eq!(s.stats.decode_scale_ups, 1);
        s.apply_due(&c, 1_000.0);
        assert_eq!(s.decode_live, 4, "provisioning lag must delay the capacity");
        // Cooldown blocks another order even at the next eval.
        s.evaluate(&c, 2_000.0, 100, 0, 0.0);
        assert_eq!(s.stats.decode_scale_ups, 1);
        // After the lag the replica lands.
        s.apply_due(&c, 1_000.0 + c.provision_lag_ms);
        assert_eq!(s.decode_live, 5);
        assert_eq!(s.stats.decode_peak, 5);
        assert!(s.next_wake_ms().is_finite());
    }

    #[test]
    fn scale_down_is_immediate_and_respects_floor() {
        let c = cfg();
        let mut s = AutoscaleState::new(&c);
        let mut t = c.evaluate_every_ms;
        for _ in 0..50 {
            s.evaluate(&c, t, 0, 0, 0.0);
            s.apply_due(&c, t);
            t += c.cooldown_ms.max(c.evaluate_every_ms);
        }
        assert_eq!(s.decode_live, c.decode_min, "drains to the floor, not below");
        assert_eq!(s.prefill_live, c.prefill_min);
        assert!(s.stats.decode_scale_downs >= 1);
        assert!(s.stats.prefill_scale_downs >= 1);
    }

    #[test]
    fn full_batch_with_empty_queue_never_scales_down() {
        let c = cfg();
        let mut s = AutoscaleState::new(&c);
        let mut t = c.evaluate_every_ms;
        // Queue drained every step but 64 jobs actively decoding:
        // the pool is exactly sized, not idle.
        for _ in 0..50 {
            s.evaluate(&c, t, 0, 64, 1_000.0);
            s.apply_due(&c, t);
            t += c.cooldown_ms.max(c.evaluate_every_ms);
        }
        assert_eq!(s.decode_live, 4, "occupied slots must block decode scale-down");
        assert_eq!(s.stats.decode_scale_downs, 0);
    }

    #[test]
    fn prefill_scales_on_backlog_independently_of_decode() {
        let c = cfg();
        let mut s = AutoscaleState::new(&c);
        // Decode queue in the dead band (per-replica 4, between 1 and 8)
        // so only the prefill signal acts.
        s.evaluate(&c, 1_000.0, 16, 0, 10_000.0);
        assert_eq!(s.stats.prefill_scale_ups, 1);
        assert_eq!(s.stats.decode_scale_ups, 0);
        assert_eq!(s.stats.decode_scale_downs, 0);
        s.apply_due(&c, 1_000.0 + c.provision_lag_ms);
        assert_eq!(s.prefill_live, 3);
        assert_eq!(s.decode_live, 4);
    }

    #[test]
    fn breaker_ejects_crash_loops_and_releases_after_cooloff() {
        let c = cfg();
        let mut s = AutoscaleState::new(&c);
        assert!(!s.on_crash(&c, 1, 0.0));
        assert!(!s.on_crash(&c, 1, 10_000.0));
        assert!(s.on_crash(&c, 1, 20_000.0), "third crash in the window trips");
        assert!(s.is_ejected(1, 20_001.0));
        assert!(!s.is_ejected(0, 20_001.0), "only the looping replica is ejected");
        let release = 20_000.0 + BreakerConfig::default().cooloff_ms;
        assert!(!s.is_ejected(1, release + 1.0));
        assert_eq!(s.stats.breaker_ejections, 1);
        // Crashes spread wider than the window never trip.
        let mut calm = AutoscaleState::new(&c);
        assert!(!calm.on_crash(&c, 2, 0.0));
        assert!(!calm.on_crash(&c, 2, 70_000.0));
        assert!(!calm.on_crash(&c, 2, 140_000.0));
        assert_eq!(calm.stats.breaker_ejections, 0);
    }

    #[test]
    fn no_breaker_config_never_ejects() {
        let mut c = cfg();
        c.breaker = None;
        let mut s = AutoscaleState::new(&c);
        for i in 0..20 {
            assert!(!s.on_crash(&c, 0, i as f64 * 100.0));
        }
        assert!(!s.is_ejected(0, 2_000.0));
    }
}
