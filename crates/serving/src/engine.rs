//! Continuous-batching decode engine: a request-level discrete-event
//! simulator composing the repo's analytical substrates.
//!
//! Time advances in decode steps. Each step's duration comes from the EP
//! speed-limit model (`dsv3_inference::tpot`) evaluated at the *current*
//! batch size, so latency degrades as the batch grows exactly as §2.3.2's
//! arithmetic says it must. Admission is gated by the KV-cache manager
//! (`dsv3_inference::kvcache`): requests wait in a FIFO when the cache is
//! full, and mid-flight out-of-memory preempts the youngest request back
//! to the queue. Prefill placement follows the router policy
//! ([`crate::router::RouterPolicy`]), calibrated against
//! `dsv3_inference::disagg`. Optional MTP speculative decoding drains
//! several tokens per request per step with the acceptance-chain
//! statistics of `dsv3_model::mtp` (draft-verification compute is folded
//! into `step_overhead`, matching `mtp::tps_speedup`'s cost model).
//!
//! Everything is driven by seeded RNG and ordered containers, so equal
//! configs produce byte-identical reports.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dsv3_inference::kvcache::{CacheError, KvCacheManager};
use dsv3_inference::SpeedLimitConfig;
use dsv3_model::zoo;

use crate::metrics::Summary;
use crate::router::RouterPolicy;
use crate::workload::{self, ArrivalProcess, LengthDistribution, Request, WorkloadConfig};

/// MTP speculative-decoding parameters (§2.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MtpSpec {
    /// Draft modules chained per step.
    pub modules: usize,
    /// Per-position draft acceptance probability.
    pub acceptance: f64,
    /// Relative per-step cost of running the draft modules (the `1 + x`
    /// denominator of `dsv3_model::mtp::tps_speedup`).
    pub step_overhead: f64,
}

/// Decode-engine parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// EP speed-limit model; `tokens_per_device` is overridden each step
    /// with the live batch size.
    pub speed: SpeedLimitConfig,
    /// KV-cache byte budget of the decode pool.
    pub kv_capacity_bytes: usize,
    /// Cache element width (2 = BF16, 1 = FP8).
    pub kv_bytes_per_elem: usize,
    /// Hard cap on concurrently decoding requests.
    pub max_batch: usize,
    /// Full-pool prefill throughput, tokens per millisecond. The router
    /// policy decides how much of it prefill actually gets.
    pub prefill_tokens_per_ms: f64,
    /// Speculative decoding; `None` = plain autoregressive.
    pub mtp: Option<MtpSpec>,
    /// Safety cap on simulated decode steps (overload runs terminate with
    /// the un-served tail counted against SLO attainment).
    pub max_steps: usize,
}

/// Latency targets a request must meet to count toward goodput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Time-to-first-token bound, ms.
    pub ttft_ms: f64,
    /// Per-token decode latency bound, ms.
    pub tpot_ms: f64,
}

/// Complete simulator input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSimConfig {
    /// Request stream.
    pub workload: WorkloadConfig,
    /// Decode engine.
    pub engine: EngineConfig,
    /// Prefill placement.
    pub router: RouterPolicy,
    /// Goodput targets.
    pub slo: SloConfig,
}

impl ServingSimConfig {
    /// H800-calibrated baseline: DeepSeek-V3 KV footprint, the §2.3.2
    /// speed limit with a compute floor at the paper's 32-token operating
    /// point, and a 4 GB KV slice so cache pressure is part of the story.
    #[must_use]
    pub fn h800_baseline(arrival: ArrivalProcess, requests: usize, router: RouterPolicy) -> Self {
        let mut speed = SpeedLimitConfig::h800_ib();
        // comp ≈ comm at 32 tokens/device: small batches hit a compute
        // floor instead of scaling comm time all the way to zero.
        speed.compute_us = 120.0;
        Self {
            workload: WorkloadConfig {
                arrival,
                requests,
                prompt: LengthDistribution {
                    mean_tokens: 512.0,
                    cv: 1.0,
                    min_tokens: 16,
                    max_tokens: 4096,
                },
                output: LengthDistribution {
                    mean_tokens: 128.0,
                    cv: 0.5,
                    min_tokens: 8,
                    max_tokens: 1024,
                },
                seed: 20250805,
            },
            engine: EngineConfig {
                speed,
                kv_capacity_bytes: 4_000_000_000,
                kv_bytes_per_elem: 2,
                max_batch: 128,
                prefill_tokens_per_ms: 16.0,
                mtp: None,
                max_steps: 2_000_000,
            },
            router,
            slo: SloConfig { ttft_ms: 2000.0, tpot_ms: 50.0 },
        }
    }
}

/// Simulator output: SLO metrics plus engine health counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests in the workload.
    pub requests: usize,
    /// Requests fully decoded.
    pub completed: usize,
    /// Requests dropped as infeasible (could never fit in the cache).
    pub dropped: usize,
    /// Mid-flight evictions back to the ready queue.
    pub preemptions: usize,
    /// Decode steps executed.
    pub decode_steps: usize,
    /// Simulated wall-clock, ms.
    pub sim_duration_ms: f64,
    /// Time to first token, per completed request.
    pub ttft_ms: Summary,
    /// Per-token decode latency, per completed request with > 1 output.
    pub tpot_ms: Summary,
    /// End-to-end latency, per completed request.
    pub e2e_ms: Summary,
    /// Decode-ready queue depth, sampled each step.
    pub queue_depth: Summary,
    /// KV-cache utilization, sampled each step.
    pub kv_utilization: Summary,
    /// Decoded tokens per second of simulated time.
    pub throughput_tokens_per_s: f64,
    /// Requests per second that met both SLOs.
    pub goodput_rps: f64,
    /// Fraction of all requests that met both SLOs.
    pub slo_attainment: f64,
}

/// A request flowing through the engine, with its resume state.
#[derive(Debug, Clone)]
struct Job {
    req: Request,
    /// KV tokens this job needs on (re-)admission.
    resident_tokens: usize,
    /// Output tokens decoded so far (survives preemption).
    generated: usize,
    /// Absolute time the first output token landed.
    first_token_ms: Option<f64>,
    /// Earliest time the job may be admitted to the decode batch.
    ready_ms: f64,
}

impl Job {
    fn new(req: Request) -> Self {
        let resident = req.prompt_tokens;
        Self {
            req,
            resident_tokens: resident,
            generated: 0,
            first_token_ms: None,
            ready_ms: f64::INFINITY,
        }
    }
}

/// Prefill station state, by router policy.
enum Prefill {
    /// Dedicated FIFO station running at a fixed rate.
    Disaggregated { station_free_ms: f64, rate: f64 },
    /// Backlog drained by stolen decode time (or at the full-pool rate
    /// while decode is idle).
    Unified { backlog: VecDeque<(Job, f64)>, rate: f64 },
}

/// Run the simulation to completion (or the step cap) and report.
///
/// # Panics
///
/// Panics on degenerate configs (zero batch cap, non-positive prefill
/// rate) — the same contract as the underlying analytical models.
#[must_use]
pub fn run(cfg: &ServingSimConfig) -> ServingReport {
    assert!(cfg.engine.max_batch > 0, "batch cap must be positive");
    assert!(cfg.engine.prefill_tokens_per_ms > 0.0, "prefill rate must be positive");

    let total_requests = cfg.workload.requests;
    let mut arrivals = workload::generate(&cfg.workload).into_iter().peekable();
    let model = zoo::deepseek_v3();
    let mut kv =
        KvCacheManager::new(&model, cfg.engine.kv_bytes_per_elem, cfg.engine.kv_capacity_bytes);
    // Independent stream from the workload's so adding MTP never perturbs
    // the generated requests.
    let mut rng = StdRng::seed_from_u64(cfg.workload.seed ^ 0x6d74_7000);

    let mut prefill = match cfg.router {
        RouterPolicy::Unified => Prefill::Unified {
            backlog: VecDeque::new(),
            rate: cfg.router.prefill_rate(cfg.engine.prefill_tokens_per_ms),
        },
        RouterPolicy::Disaggregated { .. } => Prefill::Disaggregated {
            station_free_ms: 0.0,
            rate: cfg.router.prefill_rate(cfg.engine.prefill_tokens_per_ms),
        },
    };
    let decode_slowdown = cfg.router.decode_slowdown();

    let mut ready: VecDeque<Job> = VecDeque::new();
    let mut active: Vec<Job> = Vec::new();
    let mut clock_ms = 0.0f64;

    let mut completed = 0usize;
    let mut dropped = 0usize;
    let mut preemptions = 0usize;
    let mut steps = 0usize;
    let mut good = 0usize;
    let mut tokens_emitted = 0u64;
    let mut ttft_samples = Vec::new();
    let mut tpot_samples = Vec::new();
    let mut e2e_samples = Vec::new();
    let mut qdepth_samples = Vec::new();
    let mut kvutil_samples = Vec::new();

    while completed + dropped < total_requests && steps < cfg.engine.max_steps {
        // Hand arrived requests to the prefill stage.
        while arrivals.peek().is_some_and(|r| r.arrival_ms <= clock_ms) {
            let req = arrivals.next().expect("peeked");
            let job = Job::new(req);
            match &mut prefill {
                Prefill::Disaggregated { station_free_ms, rate } => {
                    let start = job.req.arrival_ms.max(*station_free_ms);
                    let done = start + job.req.prompt_tokens as f64 / *rate;
                    *station_free_ms = done;
                    let mut job = job;
                    job.ready_ms = done;
                    ready.push_back(job);
                }
                Prefill::Unified { backlog, .. } => {
                    let tokens = job.req.prompt_tokens as f64;
                    backlog.push_back((job, tokens));
                }
            }
        }

        // Admit ready jobs FIFO while the batch and the cache have room.
        while active.len() < cfg.engine.max_batch {
            let Some(front) = ready.front() else { break };
            if front.ready_ms > clock_ms {
                break;
            }
            if front.resident_tokens + 1 > kv.capacity_tokens() {
                // Could never hold this context even alone: infeasible.
                ready.pop_front();
                dropped += 1;
                continue;
            }
            match kv.admit(front.req.id, front.resident_tokens) {
                Ok(()) => active.push(ready.pop_front().expect("checked")),
                Err(CacheError::OutOfMemory { .. }) => break,
                Err(e) => unreachable!("admission invariant: {e}"),
            }
        }

        if active.is_empty() {
            // Idle decode pool: jump to the next event.
            let mut next = f64::INFINITY;
            if let Some(r) = arrivals.peek() {
                next = next.min(r.arrival_ms);
            }
            if let Some(front) = ready.front() {
                next = next.min(front.ready_ms);
            }
            if let Prefill::Unified { backlog, rate } = &prefill {
                if let Some((_, remaining)) = backlog.front() {
                    next = next.min(clock_ms + remaining / rate);
                }
            }
            if !next.is_finite() {
                break; // nothing can ever make progress again
            }
            // While decode idles, a unified pool prefills at full rate.
            // The epsilon absorbs float residue so a near-finished head is
            // popped rather than left as an un-drainable sliver that would
            // stall the clock.
            if let Prefill::Unified { backlog, rate } = &mut prefill {
                let mut budget = (next - clock_ms) * *rate;
                let mut t = clock_ms;
                while let Some((_, remaining)) = backlog.front_mut() {
                    if *remaining > budget + 1e-9 {
                        *remaining -= budget;
                        break;
                    }
                    budget = (budget - *remaining).max(0.0);
                    t = (t + *remaining / *rate).min(next);
                    let (mut job, _) = backlog.pop_front().expect("checked");
                    job.ready_ms = t;
                    ready.push_back(job);
                }
            }
            clock_ms = next;
            continue;
        }

        // One decode step at the live batch size.
        steps += 1;
        let mut speed = cfg.engine.speed;
        speed.tokens_per_device = active.len();
        let mut dt = speed.evaluate().tpot_ms * decode_slowdown;
        if let Some(mtp) = &cfg.engine.mtp {
            dt *= 1.0 + mtp.step_overhead;
        }
        if let Prefill::Unified { backlog, rate } = &mut prefill {
            // Calibrated to disagg::unified_tpot: half the outstanding
            // prefill backlog competes with this decode step.
            let backlog_ms: f64 = backlog.iter().map(|(_, t)| t / *rate).sum();
            let stolen_ms = 0.5 * backlog_ms;
            dt += stolen_ms;
            let mut budget = stolen_ms * *rate;
            let done_at = clock_ms + dt;
            while let Some((_, remaining)) = backlog.front_mut() {
                if *remaining > budget + 1e-9 {
                    *remaining -= budget;
                    break;
                }
                budget = (budget - *remaining).max(0.0);
                let (mut job, _) = backlog.pop_front().expect("checked");
                job.ready_ms = done_at;
                ready.push_back(job);
            }
        }
        clock_ms += dt;

        // Drain tokens into each active request, oldest first.
        let mut idx = 0;
        while idx < active.len() {
            let want = match &cfg.engine.mtp {
                None => 1,
                Some(mtp) => {
                    // The verified token always lands; the draft chain
                    // breaks at the first rejection (§2.3.3).
                    let mut k = 1;
                    for _ in 0..mtp.modules {
                        if rng.gen_bool(mtp.acceptance) {
                            k += 1;
                        } else {
                            break;
                        }
                    }
                    k
                }
            };
            let id = active[idx].req.id;
            let need = (active[idx].req.output_tokens - active[idx].generated).min(want);
            let mut emitted = 0;
            let mut dropped_self = false;
            while emitted < need {
                match kv.append_token(id) {
                    Ok(()) => emitted += 1,
                    Err(CacheError::OutOfMemory { .. }) => {
                        if active.len() - 1 > idx {
                            // Preempt the youngest request back to the
                            // queue head; it re-admits with its full
                            // accumulated context.
                            let mut victim = active.pop().expect("len > idx + 1");
                            let held = kv.release(victim.req.id).expect("victim was admitted");
                            victim.resident_tokens = held;
                            victim.ready_ms = clock_ms;
                            ready.push_front(victim);
                            preemptions += 1;
                        } else if active.len() == 1 {
                            // Alone and still out of memory: this context
                            // can never finish. Drop it.
                            let job = active.remove(idx);
                            let _ = kv.release(job.req.id);
                            dropped += 1;
                            dropped_self = true;
                            break;
                        } else {
                            // This request IS the youngest: stall it this
                            // step; an older request will preempt it on
                            // the next pass if pressure persists.
                            break;
                        }
                    }
                    Err(e) => unreachable!("append invariant: {e}"),
                }
            }
            if dropped_self {
                continue; // active[idx] is now the next job
            }
            if emitted > 0 {
                tokens_emitted += emitted as u64;
                active[idx].generated += emitted;
                if active[idx].first_token_ms.is_none() {
                    active[idx].first_token_ms = Some(clock_ms);
                    ttft_samples.push(clock_ms - active[idx].req.arrival_ms);
                }
            }
            if active[idx].generated >= active[idx].req.output_tokens {
                let job = active.remove(idx);
                let _ = kv.release(job.req.id);
                let first = job.first_token_ms.expect("completed implies first token");
                let ttft = first - job.req.arrival_ms;
                let e2e = clock_ms - job.req.arrival_ms;
                let tpot = if job.req.output_tokens > 1 {
                    let tpot = (clock_ms - first) / (job.req.output_tokens - 1) as f64;
                    tpot_samples.push(tpot);
                    tpot
                } else {
                    0.0
                };
                e2e_samples.push(e2e);
                if ttft <= cfg.slo.ttft_ms && tpot <= cfg.slo.tpot_ms {
                    good += 1;
                }
                completed += 1;
            } else {
                idx += 1;
            }
        }

        qdepth_samples.push(ready.len() as f64);
        kvutil_samples.push(kv.utilization());
    }

    let sim_s = (clock_ms / 1000.0).max(f64::MIN_POSITIVE);
    ServingReport {
        requests: total_requests,
        completed,
        dropped,
        preemptions,
        decode_steps: steps,
        sim_duration_ms: clock_ms,
        ttft_ms: Summary::of(&mut ttft_samples),
        tpot_ms: Summary::of(&mut tpot_samples),
        e2e_ms: Summary::of(&mut e2e_samples),
        queue_depth: Summary::of(&mut qdepth_samples),
        kv_utilization: Summary::of(&mut kvutil_samples),
        throughput_tokens_per_s: tokens_emitted as f64 / sim_s,
        goodput_rps: good as f64 / sim_s,
        slo_attainment: good as f64 / total_requests.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_cfg(rate: f64, requests: usize, router: RouterPolicy) -> ServingSimConfig {
        ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            requests,
            router,
        )
    }

    #[test]
    fn completes_all_requests_below_saturation() {
        let report = run(&poisson_cfg(6.0, 400, RouterPolicy::Unified));
        assert_eq!(report.completed, 400);
        assert_eq!(report.dropped, 0);
        assert!(report.slo_attainment > 0.9, "attainment {}", report.slo_attainment);
        assert!(report.tpot_ms.p50 > 0.0);
        assert!(report.ttft_ms.p50 > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = poisson_cfg(10.0, 300, RouterPolicy::Unified);
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn overload_degrades_tail_latency() {
        let calm = run(&poisson_cfg(4.0, 400, RouterPolicy::Unified));
        let slammed = run(&poisson_cfg(40.0, 400, RouterPolicy::Unified));
        assert!(
            slammed.tpot_ms.p99 > 1.5 * calm.tpot_ms.p99,
            "overload p99 {} vs calm {}",
            slammed.tpot_ms.p99,
            calm.tpot_ms.p99
        );
        assert!(slammed.e2e_ms.p99 > calm.e2e_ms.p99);
        assert!(slammed.slo_attainment < calm.slo_attainment);
    }

    #[test]
    fn kv_pressure_forces_preemption_or_queueing() {
        let mut cfg = poisson_cfg(30.0, 300, RouterPolicy::Unified);
        // Starve the cache: ~5.7k tokens ≈ a handful of requests.
        cfg.engine.kv_capacity_bytes = 400_000_000;
        let report = run(&cfg);
        assert!(report.kv_utilization.max > 0.8, "util {:?}", report.kv_utilization);
        assert!(
            report.preemptions > 0 || report.queue_depth.max > 0.0,
            "cache pressure must surface somewhere"
        );
        assert_eq!(report.completed + report.dropped, 300);
    }

    #[test]
    fn infeasible_requests_are_dropped_not_wedged() {
        let mut cfg = poisson_cfg(10.0, 50, RouterPolicy::Unified);
        cfg.engine.kv_capacity_bytes = 80_000_000; // ~1.1k tokens
        cfg.workload.prompt = LengthDistribution::fixed(2048); // never fits
        let report = run(&cfg);
        assert_eq!(report.dropped, 50);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn mtp_raises_throughput() {
        // Past the saturation knee the engine is service-limited, so the
        // ~1.8x token rate of one MTP module shows up in throughput.
        let base = poisson_cfg(40.0, 400, RouterPolicy::Unified);
        let mut with_mtp = base.clone();
        with_mtp.engine.mtp = Some(MtpSpec { modules: 1, acceptance: 0.85, step_overhead: 0.02 });
        let plain = run(&base);
        let spec = run(&with_mtp);
        assert!(
            spec.throughput_tokens_per_s > 1.3 * plain.throughput_tokens_per_s,
            "mtp {} vs plain {}",
            spec.throughput_tokens_per_s,
            plain.throughput_tokens_per_s
        );
    }

    #[test]
    fn step_cap_terminates_overload() {
        let mut cfg = poisson_cfg(500.0, 2000, RouterPolicy::Unified);
        cfg.engine.max_steps = 200;
        let report = run(&cfg);
        assert!(report.decode_steps <= 200);
        assert!(report.completed < 2000);
    }
}
