//! Continuous-batching decode engine: a request-level discrete-event
//! simulator composing the repo's analytical substrates.
//!
//! Time advances in decode steps. Each step's duration comes from the EP
//! speed-limit model (`dsv3_inference::tpot`) evaluated at the *current*
//! batch size, so latency degrades as the batch grows exactly as §2.3.2's
//! arithmetic says it must. Admission is gated by the KV-cache manager
//! (`dsv3_inference::kvcache`): requests wait in a FIFO when the cache is
//! full, and mid-flight out-of-memory preempts the youngest request back
//! to the queue. Prefill placement follows the router policy
//! ([`crate::router::RouterPolicy`]), calibrated against
//! `dsv3_inference::disagg`. Optional MTP speculative decoding drains
//! several tokens per request per step with the acceptance-chain
//! statistics of `dsv3_model::mtp` (draft-verification compute is folded
//! into `step_overhead`, matching `mtp::tps_speedup`'s cost model).
//!
//! Faults arrive during a run through [`run_with_faults`]: a
//! `dsv3_faults::FaultPlan` timeline drives replica crashes (in-flight KV
//! lost, requeue-and-re-prefill with exponential backoff, optional
//! hedging), plane flaps (steps run at the degraded speed limit given by
//! `collectives::failures` retention), stragglers, and SDC strikes. The
//! fault path is strictly additive: with an empty plan every fault branch
//! is dead and [`run`] produces its report byte-for-byte.
//!
//! Everything is driven by seeded RNG and ordered containers, so equal
//! configs produce byte-identical reports.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dsv3_faults::{
    bandwidth_retention, FaultDriver, FaultEvent, FaultKind, FaultPlan, Injectable, RecoveryPolicy,
};
use dsv3_inference::kvcache::{CacheError, KvCacheManager};
use dsv3_inference::SpeedLimitConfig;
use dsv3_model::zoo;
use dsv3_telemetry::Recorder;

use crate::metrics::Summary;
use crate::router::RouterPolicy;
use crate::workload::{self, ArrivalProcess, LengthDistribution, Request, WorkloadConfig};

/// MTP speculative-decoding parameters (§2.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MtpSpec {
    /// Draft modules chained per step.
    pub modules: usize,
    /// Per-position draft acceptance probability.
    pub acceptance: f64,
    /// Relative per-step cost of running the draft modules (the `1 + x`
    /// denominator of `dsv3_model::mtp::tps_speedup`).
    pub step_overhead: f64,
}

/// Decode-engine parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// EP speed-limit model; `tokens_per_device` is overridden each step
    /// with the live batch size.
    pub speed: SpeedLimitConfig,
    /// KV-cache byte budget of the decode pool.
    pub kv_capacity_bytes: usize,
    /// Cache element width (2 = BF16, 1 = FP8).
    pub kv_bytes_per_elem: usize,
    /// Hard cap on concurrently decoding requests.
    pub max_batch: usize,
    /// Full-pool prefill throughput, tokens per millisecond. The router
    /// policy decides how much of it prefill actually gets.
    pub prefill_tokens_per_ms: f64,
    /// Speculative decoding; `None` = plain autoregressive.
    pub mtp: Option<MtpSpec>,
    /// Safety cap on simulated decode steps (overload runs terminate with
    /// the un-served tail counted against SLO attainment).
    pub max_steps: usize,
}

/// Latency targets a request must meet to count toward goodput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Time-to-first-token bound, ms.
    pub ttft_ms: f64,
    /// Per-token decode latency bound, ms.
    pub tpot_ms: f64,
}

/// Complete simulator input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSimConfig {
    /// Request stream.
    pub workload: WorkloadConfig,
    /// Decode engine.
    pub engine: EngineConfig,
    /// Prefill placement.
    pub router: RouterPolicy,
    /// Goodput targets.
    pub slo: SloConfig,
}

impl ServingSimConfig {
    /// H800-calibrated baseline: DeepSeek-V3 KV footprint, the §2.3.2
    /// speed limit with a compute floor at the paper's 32-token operating
    /// point, and a 4 GB KV slice so cache pressure is part of the story.
    #[must_use]
    pub fn h800_baseline(arrival: ArrivalProcess, requests: usize, router: RouterPolicy) -> Self {
        let mut speed = SpeedLimitConfig::h800_ib();
        // comp ≈ comm at 32 tokens/device: small batches hit a compute
        // floor instead of scaling comm time all the way to zero.
        speed.compute_us = 120.0;
        Self {
            workload: WorkloadConfig {
                arrival,
                requests,
                prompt: LengthDistribution {
                    mean_tokens: 512.0,
                    cv: 1.0,
                    min_tokens: 16,
                    max_tokens: 4096,
                },
                output: LengthDistribution {
                    mean_tokens: 128.0,
                    cv: 0.5,
                    min_tokens: 8,
                    max_tokens: 1024,
                },
                seed: 20250805,
            },
            engine: EngineConfig {
                speed,
                kv_capacity_bytes: 4_000_000_000,
                kv_bytes_per_elem: 2,
                max_batch: 128,
                prefill_tokens_per_ms: 16.0,
                mtp: None,
                max_steps: 2_000_000,
            },
            router,
            slo: SloConfig { ttft_ms: 2000.0, tpot_ms: 50.0 },
        }
    }
}

/// Simulator output: SLO metrics plus engine health counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests in the workload.
    pub requests: usize,
    /// Requests fully decoded.
    pub completed: usize,
    /// Requests dropped as infeasible (could never fit in the cache).
    pub dropped: usize,
    /// Mid-flight evictions back to the ready queue.
    pub preemptions: usize,
    /// Decode steps executed.
    pub decode_steps: usize,
    /// Simulated wall-clock, ms.
    pub sim_duration_ms: f64,
    /// Time to first token, per completed request.
    pub ttft_ms: Summary,
    /// Per-token decode latency, per completed request with > 1 output.
    pub tpot_ms: Summary,
    /// End-to-end latency, per completed request.
    pub e2e_ms: Summary,
    /// Decode-ready queue depth, sampled each step.
    pub queue_depth: Summary,
    /// KV-cache utilization, sampled each step.
    pub kv_utilization: Summary,
    /// Decoded tokens per second of simulated time.
    pub throughput_tokens_per_s: f64,
    /// Requests per second that met both SLOs.
    pub goodput_rps: f64,
    /// Fraction of all requests that met both SLOs.
    pub slo_attainment: f64,
}

/// Fault-path counters accumulated by [`run_with_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Replica-crash events delivered.
    pub crash_events: usize,
    /// In-flight jobs evicted (KV lost) by crashes.
    pub jobs_lost_to_crashes: usize,
    /// Requeue-and-re-prefill retries scheduled.
    pub retries: usize,
    /// Requests abandoned after exhausting the retry budget.
    pub rejected: usize,
    /// Hedge clones spawned.
    pub hedges_spawned: usize,
    /// Completions won by the hedge clone rather than the original.
    pub hedge_wins: usize,
    /// Plane-flap events delivered.
    pub plane_flap_events: usize,
    /// Decode steps run at degraded bandwidth.
    pub degraded_steps: usize,
    /// Worst bandwidth retention any step ran at (1.0 = never degraded).
    pub min_bandwidth_retention: f64,
    /// Straggler episodes delivered.
    pub straggler_events: usize,
    /// Decode steps gated by a straggler.
    pub straggler_steps: usize,
    /// SDC strikes delivered.
    pub sdc_events: usize,
    /// SDC strikes caught by the checksum audit.
    pub sdc_detected: usize,
    /// Wall clock spent recomputing audited-bad steps, ms.
    pub sdc_recompute_ms: f64,
    /// Completions whose output an undetected SDC corrupted.
    pub corrupted_completions: usize,
    /// Requests still in flight when the run terminated (step cap or an
    /// unrepairable outage).
    pub unfinished: usize,
}

impl Default for FaultStats {
    fn default() -> Self {
        Self {
            crash_events: 0,
            jobs_lost_to_crashes: 0,
            retries: 0,
            rejected: 0,
            hedges_spawned: 0,
            hedge_wins: 0,
            plane_flap_events: 0,
            degraded_steps: 0,
            min_bandwidth_retention: 1.0,
            straggler_events: 0,
            straggler_steps: 0,
            sdc_events: 0,
            sdc_detected: 0,
            sdc_recompute_ms: 0.0,
            corrupted_completions: 0,
            unfinished: 0,
        }
    }
}

/// Output of [`run_with_faults`]: the serving report plus fault counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyServingReport {
    /// The usual serving metrics (identical to [`run`]'s under an empty
    /// plan).
    pub serving: ServingReport,
    /// What the fault layer did.
    pub faults: FaultStats,
}

/// A request flowing through the engine, with its resume state.
#[derive(Debug, Clone)]
struct Job {
    req: Request,
    /// 0 = original, 1 = hedge clone.
    clone_tag: u8,
    /// KV tokens this job needs on (re-)admission.
    resident_tokens: usize,
    /// Output tokens decoded so far (survives preemption).
    generated: usize,
    /// Absolute time the first output token landed.
    first_token_ms: Option<f64>,
    /// Earliest time the job may be admitted to the decode batch.
    ready_ms: f64,
    /// When this job entered the prefill stage (NaN when its next
    /// admission needs no prefill span, e.g. after a preemption).
    prefill_enter_ms: f64,
    /// When this job last joined the decode batch (NaN before).
    admitted_ms: f64,
}

impl Job {
    fn new(req: Request) -> Self {
        let resident = req.prompt_tokens;
        Self {
            req,
            clone_tag: 0,
            resident_tokens: resident,
            generated: 0,
            first_token_ms: None,
            ready_ms: f64::INFINITY,
            prefill_enter_ms: f64::NAN,
            admitted_ms: f64::NAN,
        }
    }

    /// KV-cache key: clones of one request need distinct cache entries.
    fn cache_id(&self) -> u64 {
        self.req.id * 2 + u64::from(self.clone_tag)
    }

    /// Bookkeeping index of this job's request.
    fn rid(&self) -> usize {
        self.req.id as usize
    }
}

/// Prefill station state, by router policy.
enum Prefill {
    /// Dedicated FIFO station running at a fixed rate.
    Disaggregated { station_free_ms: f64, rate: f64 },
    /// Backlog drained by stolen decode time (or at the full-pool rate
    /// while decode is idle).
    Unified { backlog: VecDeque<(Job, f64)>, rate: f64 },
}

/// Hand a job (fresh arrival or crash requeue) to the prefill stage.
/// `at_ms` is when it enters the station — the true arrival time for new
/// requests, the retry-release time for requeues — and `tokens` is the
/// context to prefill.
fn enqueue_prefill(
    prefill: &mut Prefill,
    ready: &mut VecDeque<Job>,
    mut job: Job,
    at_ms: f64,
    tokens: f64,
) {
    job.prefill_enter_ms = at_ms;
    match prefill {
        Prefill::Disaggregated { station_free_ms, rate } => {
            let start = at_ms.max(*station_free_ms);
            let done = start + tokens / *rate;
            *station_free_ms = done;
            job.ready_ms = done;
            ready.push_back(job);
        }
        Prefill::Unified { backlog, .. } => {
            backlog.push_back((job, tokens));
        }
    }
}

/// Trace-track label for a job ("req{id}", hedge clones suffixed).
fn req_label(job: &Job) -> String {
    if job.clone_tag == 1 {
        format!("req{}.hedge", job.rid())
    } else {
        format!("req{}", job.rid())
    }
}

/// Live fault state: which resources are down right now, plus the
/// consequences queued for the engine to apply at the next step boundary.
struct FaultState {
    replicas: usize,
    planes: usize,
    /// Refcounted outage sets (overlapping faults of one resource stack).
    replica_down: BTreeMap<usize, u32>,
    plane_down: BTreeMap<usize, u32>,
    /// Active straggler episodes by event seq; the worst one gates steps.
    stragglers: BTreeMap<usize, f64>,
    /// Crashes since the engine last drained them (replica ids).
    pending_crashes: Vec<usize>,
    /// SDC strikes since the engine last drained them (detected flags).
    pending_sdc: Vec<bool>,
    stats: FaultStats,
}

impl FaultState {
    fn new(plan: &FaultPlan) -> Self {
        Self {
            replicas: plan.replicas,
            planes: plan.planes,
            replica_down: BTreeMap::new(),
            plane_down: BTreeMap::new(),
            stragglers: BTreeMap::new(),
            pending_crashes: Vec::new(),
            pending_sdc: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    fn healthy_replicas(&self) -> usize {
        self.replicas - self.replica_down.len()
    }

    fn slowdown(&self) -> f64 {
        self.stragglers.values().fold(1.0, |a, &b| a.max(b))
    }
}

impl Injectable for FaultState {
    fn inject(&mut self, seq: usize, event: &FaultEvent) {
        match event.kind {
            FaultKind::ReplicaCrash { replica, .. } => {
                *self.replica_down.entry(replica).or_insert(0) += 1;
                self.pending_crashes.push(replica);
                self.stats.crash_events += 1;
            }
            FaultKind::PlaneFlap { plane, .. } => {
                *self.plane_down.entry(plane).or_insert(0) += 1;
                self.stats.plane_flap_events += 1;
            }
            FaultKind::Straggler { slowdown, .. } => {
                self.stragglers.insert(seq, slowdown);
                self.stats.straggler_events += 1;
            }
            FaultKind::Sdc { detected } => {
                self.pending_sdc.push(detected);
                self.stats.sdc_events += 1;
                if detected {
                    self.stats.sdc_detected += 1;
                }
            }
            // Link-granular failures are a flow-simulator concern
            // (`dsv3_netsim::chaos`); the serving engine's network model is
            // plane-granular, so a single cable loss is absorbed by ECMP.
            FaultKind::LinkFail { .. } => {}
        }
    }

    fn heal(&mut self, seq: usize, event: &FaultEvent) {
        match event.kind {
            FaultKind::ReplicaCrash { replica, .. } => {
                if let Some(c) = self.replica_down.get_mut(&replica) {
                    *c -= 1;
                    if *c == 0 {
                        self.replica_down.remove(&replica);
                    }
                }
            }
            FaultKind::PlaneFlap { plane, .. } => {
                if let Some(c) = self.plane_down.get_mut(&plane) {
                    *c -= 1;
                    if *c == 0 {
                        self.plane_down.remove(&plane);
                    }
                }
            }
            FaultKind::Straggler { .. } => {
                self.stragglers.remove(&seq);
            }
            FaultKind::Sdc { .. } | FaultKind::LinkFail { .. } => {}
        }
    }
}

/// Run the simulation to completion (or the step cap) and report.
///
/// Equivalent to [`run_with_faults`] with an empty plan — byte-for-byte.
///
/// # Panics
///
/// Panics on degenerate configs (zero batch cap, non-positive prefill
/// rate) — the same contract as the underlying analytical models.
#[must_use]
pub fn run(cfg: &ServingSimConfig) -> ServingReport {
    run_with_faults(cfg, &FaultPlan::healthy(), &RecoveryPolicy::default()).serving
}

/// [`run`] plus telemetry into `rec` (see [`run_with_faults_traced`]).
///
/// # Panics
///
/// Same contract as [`run`].
#[must_use]
pub fn run_traced(cfg: &ServingSimConfig, rec: &mut Recorder, scope: &str) -> ServingReport {
    run_with_faults_traced(cfg, &FaultPlan::healthy(), &RecoveryPolicy::default(), rec, scope)
        .serving
}

/// Run the simulation under a deterministic fault timeline.
///
/// Recovery follows `policy`: a crash evicts the replica's in-flight jobs
/// (their KV is lost), each victim re-prefills its full accumulated
/// context after an exponential-backoff delay, a request is rejected once
/// it has crashed more than `max_retries` times, and (optionally) the
/// first crash of a request spawns a hedge clone — first copy to finish
/// wins, the loser is cancelled wherever it happens to be. Plane flaps
/// re-evaluate the speed limit at the degraded bandwidth retention;
/// stragglers gate steps by their slowdown; detected SDC strikes pay a
/// recompute, undetected ones corrupt the youngest active request's
/// output (completions still count, goodput does not).
///
/// # Panics
///
/// Panics on degenerate configs or an invalid `plan`
/// (see [`FaultPlan::validate`]).
#[must_use]
pub fn run_with_faults(
    cfg: &ServingSimConfig,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> FaultyServingReport {
    run_with_faults_traced(cfg, plan, policy, &mut Recorder::disabled(), "")
}

/// [`run_with_faults`] plus telemetry: every request gets a
/// prefill→queued→decode span chain (with preempt/retry/cancel/complete
/// instants) on a `{scope}/requests` track, every delivered fault an
/// instant on `{scope}/faults`, and the engine samples batch size, queue
/// depth, and KV occupancy each decode step on `{scope}/engine`. Latency
/// samples also land in `{scope}.ttft_ms`/`.tpot_ms`/`.e2e_ms`
/// histograms, and lifecycle counts in `{scope}.*` counters. Timestamps
/// are simulation milliseconds scaled to trace microseconds. With a
/// disabled recorder every telemetry branch is dead and the report is
/// byte-identical to [`run_with_faults`] — enforced by test.
///
/// # Panics
///
/// Same contract as [`run_with_faults`].
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_with_faults_traced(
    cfg: &ServingSimConfig,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    rec: &mut Recorder,
    scope: &str,
) -> FaultyServingReport {
    assert!(cfg.engine.max_batch > 0, "batch cap must be positive");
    assert!(cfg.engine.prefill_tokens_per_ms > 0.0, "prefill rate must be positive");

    let total_requests = cfg.workload.requests;
    let mut arrivals = workload::generate(&cfg.workload).into_iter().peekable();
    let model = zoo::deepseek_v3();
    let mut kv =
        KvCacheManager::new(&model, cfg.engine.kv_bytes_per_elem, cfg.engine.kv_capacity_bytes);
    // Independent stream from the workload's so adding MTP never perturbs
    // the generated requests.
    let mut rng = StdRng::seed_from_u64(cfg.workload.seed ^ 0x6d74_7000);

    let mut driver = FaultDriver::new(plan);
    let mut fstate = FaultState::new(plan);

    // Telemetry tracks and metric names. `on` guards every emission so a
    // disabled recorder costs one branch per site and these few one-time
    // allocations per run.
    let on = rec.is_enabled();
    let (pid_engine, pid_req, pid_faults) = if on {
        (
            rec.process(&format!("{scope}/engine")),
            rec.process(&format!("{scope}/requests")),
            rec.process(&format!("{scope}/faults")),
        )
    } else {
        (0, 0, 0)
    };
    let m_batch = format!("{scope}.batch_size");
    let m_queue = format!("{scope}.queue_depth");
    let m_kv = format!("{scope}.kv_utilization");
    let m_ttft = format!("{scope}.ttft_ms");
    let m_tpot = format!("{scope}.tpot_ms");
    let m_e2e = format!("{scope}.e2e_ms");

    let mut prefill = match cfg.router {
        RouterPolicy::Unified => Prefill::Unified {
            backlog: VecDeque::new(),
            rate: cfg.router.prefill_rate(cfg.engine.prefill_tokens_per_ms),
        },
        RouterPolicy::Disaggregated { .. } => Prefill::Disaggregated {
            station_free_ms: 0.0,
            rate: cfg.router.prefill_rate(cfg.engine.prefill_tokens_per_ms),
        },
    };
    let decode_slowdown = cfg.router.decode_slowdown();

    let mut ready: VecDeque<Job> = VecDeque::new();
    let mut active: Vec<Job> = Vec::new();
    // Crash victims waiting out their backoff: (release_ms, seq, job),
    // kept sorted so releases are deterministic.
    let mut delayed: Vec<(f64, u64, Job)> = Vec::new();
    let mut delayed_seq = 0u64;
    let mut clock_ms = 0.0f64;

    // Per-request bookkeeping (indexed by request id). `live` counts
    // clones anywhere in the system; `done` flips exactly once, when the
    // request completes, drops, or is rejected.
    let mut done = vec![false; total_requests];
    let mut live = vec![0u8; total_requests];
    let mut hedged = vec![false; total_requests];
    let mut crash_count = vec![0u32; total_requests];
    let mut corrupted = vec![false; total_requests];
    let mut ttft_recorded = vec![false; total_requests];

    let mut completed = 0usize;
    let mut dropped = 0usize;
    let mut preemptions = 0usize;
    let mut steps = 0usize;
    let mut good = 0usize;
    let mut tokens_emitted = 0u64;
    let mut ttft_samples = Vec::new();
    let mut tpot_samples = Vec::new();
    let mut e2e_samples = Vec::new();
    let mut qdepth_samples = Vec::new();
    let mut kvutil_samples = Vec::new();

    while completed + dropped + fstate.stats.rejected < total_requests
        && steps < cfg.engine.max_steps
    {
        // Deliver fault events due by now, then apply crash consequences:
        // every job on a crashed replica (position i runs on replica
        // i mod R) loses its KV and is requeued, rejected, or hedged.
        driver.poll_traced(clock_ms, &mut fstate, rec, pid_faults, scope);
        for replica in std::mem::take(&mut fstate.pending_crashes) {
            let mut i = active.len();
            while i > 0 {
                i -= 1;
                if i % fstate.replicas != replica {
                    continue;
                }
                let mut victim = active.remove(i);
                // lint:allow(P1) — every active job was admitted into the cache; swallowing a release failure here would silently corrupt KV accounting
                let held = kv.release(victim.cache_id()).expect("active jobs hold cache");
                victim.resident_tokens = held;
                let id = victim.rid();
                let req = victim.req.clone();
                fstate.stats.jobs_lost_to_crashes += 1;
                crash_count[id] += 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&victim));
                    if victim.admitted_ms.is_finite() {
                        rec.span(
                            pid_req,
                            tid,
                            "request",
                            "decode",
                            victim.admitted_ms * 1000.0,
                            clock_ms * 1000.0,
                        );
                    }
                    rec.instant(pid_req, tid, "request", "crash-evict", clock_ms * 1000.0);
                }
                victim.admitted_ms = f64::NAN;
                if crash_count[id] > policy.max_retries {
                    live[id] -= 1;
                    if live[id] == 0 && !done[id] {
                        done[id] = true;
                        fstate.stats.rejected += 1;
                        if on {
                            let tid = rec.thread(pid_req, &req_label(&victim));
                            rec.instant(pid_req, tid, "request", "reject", clock_ms * 1000.0);
                        }
                    }
                } else {
                    fstate.stats.retries += 1;
                    let at = clock_ms + policy.backoff.delay_ms(crash_count[id]);
                    victim.ready_ms = f64::INFINITY;
                    let pos = delayed
                        .partition_point(|(t, s, _)| *t < at || (*t == at && *s < delayed_seq));
                    delayed.insert(pos, (at, delayed_seq, victim));
                    delayed_seq += 1;
                }
                if policy.hedge && !hedged[id] && !done[id] {
                    hedged[id] = true;
                    live[id] += 1;
                    fstate.stats.hedges_spawned += 1;
                    let mut clone = Job::new(req);
                    clone.clone_tag = 1;
                    if on {
                        let tid = rec.thread(pid_req, &req_label(&clone));
                        rec.instant(pid_req, tid, "request", "hedge-spawn", clock_ms * 1000.0);
                    }
                    let tokens = clone.req.prompt_tokens as f64;
                    enqueue_prefill(&mut prefill, &mut ready, clone, clock_ms, tokens);
                }
            }
        }

        // Release crash victims whose backoff has elapsed: they re-enter
        // prefill with their full accumulated context.
        while delayed.first().is_some_and(|(t, _, _)| *t <= clock_ms) {
            let (_, _, job) = delayed.remove(0);
            if done[job.rid()] {
                live[job.rid()] -= 1; // sibling already settled it
                continue;
            }
            if on {
                let tid = rec.thread(pid_req, &req_label(&job));
                rec.instant(pid_req, tid, "request", "retry-release", clock_ms * 1000.0);
            }
            let tokens = job.resident_tokens as f64;
            enqueue_prefill(&mut prefill, &mut ready, job, clock_ms, tokens);
        }

        // Hand arrived requests to the prefill stage.
        while let Some(req) = arrivals.next_if(|r| r.arrival_ms <= clock_ms) {
            live[req.id as usize] = 1;
            let at = req.arrival_ms;
            let tokens = req.prompt_tokens as f64;
            enqueue_prefill(&mut prefill, &mut ready, Job::new(req), at, tokens);
        }

        // Admit ready jobs FIFO while the batch and the cache have room;
        // crashed replicas shrink the batch cap proportionally.
        let healthy = fstate.healthy_replicas();
        let effective_max_batch = (cfg.engine.max_batch * healthy).div_ceil(fstate.replicas);
        while active.len() < effective_max_batch {
            let Some(front) = ready.front() else { break };
            if done[front.rid()] {
                // A sibling clone already settled this request: cancel.
                let Some(job) = ready.pop_front() else { break };
                live[job.rid()] -= 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    rec.instant(pid_req, tid, "request", "cancel", clock_ms * 1000.0);
                }
                continue;
            }
            if front.ready_ms > clock_ms {
                break;
            }
            if front.resident_tokens + 1 > kv.capacity_tokens() {
                // Could never hold this context even alone: infeasible.
                let Some(job) = ready.pop_front() else { break };
                live[job.rid()] -= 1;
                if live[job.rid()] == 0 {
                    done[job.rid()] = true;
                    dropped += 1;
                }
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    rec.instant(pid_req, tid, "request", "drop-infeasible", clock_ms * 1000.0);
                }
                continue;
            }
            match kv.admit(front.cache_id(), front.resident_tokens) {
                Ok(()) => {
                    let Some(mut job) = ready.pop_front() else { break };
                    if on {
                        let tid = rec.thread(pid_req, &req_label(&job));
                        if job.prefill_enter_ms.is_finite() {
                            rec.span(
                                pid_req,
                                tid,
                                "request",
                                "prefill",
                                job.prefill_enter_ms * 1000.0,
                                job.ready_ms * 1000.0,
                            );
                        }
                        rec.span(
                            pid_req,
                            tid,
                            "request",
                            "queued",
                            job.ready_ms * 1000.0,
                            clock_ms * 1000.0,
                        );
                    }
                    job.prefill_enter_ms = f64::NAN;
                    job.admitted_ms = clock_ms;
                    active.push(job);
                }
                Err(CacheError::OutOfMemory { .. }) => break,
                // lint:allow(P1) — admit can only fail Duplicate/Unknown if the ready queue held two jobs with one cache id, which the id allocator forbids; continuing would double-count KV
                Err(e) => unreachable!("admission invariant: {e}"),
            }
        }

        if active.is_empty() {
            // Idle decode pool: jump to the next event.
            let mut next = f64::INFINITY;
            if let Some(r) = arrivals.peek() {
                next = next.min(r.arrival_ms);
            }
            if healthy > 0 {
                // With every replica down, a ready job is not an event:
                // nothing can admit it until a repair (below) lands.
                if let Some(front) = ready.front() {
                    next = next.min(front.ready_ms);
                }
            }
            if let Some(&(t, _, _)) = delayed.first() {
                next = next.min(t);
            }
            if let Some(t) = driver.next_wake_ms() {
                next = next.min(t);
            }
            if let Prefill::Unified { backlog, rate } = &prefill {
                if let Some((_, remaining)) = backlog.front() {
                    next = next.min(clock_ms + remaining / rate);
                }
            }
            if !next.is_finite() {
                break; // nothing can ever make progress again
            }
            // While decode idles, a unified pool prefills at full rate.
            // The epsilon absorbs float residue so a near-finished head is
            // popped rather than left as an un-drainable sliver that would
            // stall the clock.
            if let Prefill::Unified { backlog, rate } = &mut prefill {
                let mut budget = (next - clock_ms) * *rate;
                let mut t = clock_ms;
                while let Some((_, remaining)) = backlog.front_mut() {
                    if *remaining > budget + 1e-9 {
                        *remaining -= budget;
                        break;
                    }
                    budget = (budget - *remaining).max(0.0);
                    t = (t + *remaining / *rate).min(next);
                    let Some((mut job, _)) = backlog.pop_front() else { break };
                    job.ready_ms = t;
                    ready.push_back(job);
                }
            }
            clock_ms = next;
            continue;
        }

        // One decode step at the live batch size.
        steps += 1;
        let step_batch = active.len();
        let mut speed = cfg.engine.speed;
        speed.tokens_per_device = step_batch;
        if !fstate.plane_down.is_empty() {
            // Flapped planes shrink scale-out bandwidth; the step runs at
            // the degraded speed limit (§5.1.1 retention).
            let retention = bandwidth_retention(fstate.planes, fstate.plane_down.len());
            speed.bandwidth_bytes_per_s *= retention;
            fstate.stats.degraded_steps += 1;
            fstate.stats.min_bandwidth_retention =
                fstate.stats.min_bandwidth_retention.min(retention);
        }
        let mut dt = speed.evaluate().tpot_ms * decode_slowdown;
        if let Some(mtp) = &cfg.engine.mtp {
            dt *= 1.0 + mtp.step_overhead;
        }
        let straggle = fstate.slowdown();
        if straggle > 1.0 {
            dt *= straggle;
            fstate.stats.straggler_steps += 1;
        }
        for detected in std::mem::take(&mut fstate.pending_sdc) {
            if detected {
                // Checksum audit caught it: redo the step (§6.1).
                fstate.stats.sdc_recompute_ms += dt;
                dt += dt;
            } else if let Some(last) = active.last() {
                // Silent: the youngest request's output is now wrong.
                corrupted[last.rid()] = true;
            }
        }
        if let Prefill::Unified { backlog, rate } = &mut prefill {
            // Calibrated to disagg::unified_tpot: half the outstanding
            // prefill backlog competes with this decode step.
            let backlog_ms: f64 = backlog.iter().map(|(_, t)| t / *rate).sum();
            let stolen_ms = 0.5 * backlog_ms;
            dt += stolen_ms;
            let mut budget = stolen_ms * *rate;
            let done_at = clock_ms + dt;
            while let Some((_, remaining)) = backlog.front_mut() {
                if *remaining > budget + 1e-9 {
                    *remaining -= budget;
                    break;
                }
                budget = (budget - *remaining).max(0.0);
                let Some((mut job, _)) = backlog.pop_front() else { break };
                job.ready_ms = done_at;
                ready.push_back(job);
            }
        }
        clock_ms += dt;

        // Drain tokens into each active request, oldest first.
        let mut idx = 0;
        while idx < active.len() {
            if done[active[idx].rid()] {
                // A sibling clone finished first: cancel this one.
                let job = active.remove(idx);
                let _ = kv.release(job.cache_id());
                live[job.rid()] -= 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    if job.admitted_ms.is_finite() {
                        rec.span(
                            pid_req,
                            tid,
                            "request",
                            "decode",
                            job.admitted_ms * 1000.0,
                            clock_ms * 1000.0,
                        );
                    }
                    rec.instant(pid_req, tid, "request", "cancel", clock_ms * 1000.0);
                }
                continue;
            }
            let want = match &cfg.engine.mtp {
                None => 1,
                Some(mtp) => {
                    // The verified token always lands; the draft chain
                    // breaks at the first rejection (§2.3.3).
                    let mut k = 1;
                    for _ in 0..mtp.modules {
                        if rng.gen_bool(mtp.acceptance) {
                            k += 1;
                        } else {
                            break;
                        }
                    }
                    k
                }
            };
            let id = active[idx].cache_id();
            let need = (active[idx].req.output_tokens - active[idx].generated).min(want);
            let mut emitted = 0;
            let mut dropped_self = false;
            while emitted < need {
                match kv.append_token(id) {
                    Ok(()) => emitted += 1,
                    Err(CacheError::OutOfMemory { .. }) => {
                        if active.len() - 1 > idx {
                            // Preempt the youngest request back to the
                            // queue head; it re-admits with its full
                            // accumulated context.
                            let Some(mut victim) = active.pop() else { break };
                            // lint:allow(P1) — the victim came out of `active`, so it was admitted; ignoring a release failure would leak its KV bytes forever
                            let held = kv.release(victim.cache_id()).expect("victim was admitted");
                            victim.resident_tokens = held;
                            victim.ready_ms = clock_ms;
                            if on {
                                let tid = rec.thread(pid_req, &req_label(&victim));
                                if victim.admitted_ms.is_finite() {
                                    rec.span(
                                        pid_req,
                                        tid,
                                        "request",
                                        "decode",
                                        victim.admitted_ms * 1000.0,
                                        clock_ms * 1000.0,
                                    );
                                }
                                rec.instant(pid_req, tid, "request", "preempt", clock_ms * 1000.0);
                            }
                            victim.admitted_ms = f64::NAN;
                            ready.push_front(victim);
                            preemptions += 1;
                        } else if active.len() == 1 {
                            // Alone and still out of memory: this context
                            // can never finish. Drop it.
                            let job = active.remove(idx);
                            let _ = kv.release(job.cache_id());
                            live[job.rid()] -= 1;
                            if live[job.rid()] == 0 {
                                done[job.rid()] = true;
                                dropped += 1;
                            }
                            if on {
                                let tid = rec.thread(pid_req, &req_label(&job));
                                if job.admitted_ms.is_finite() {
                                    rec.span(
                                        pid_req,
                                        tid,
                                        "request",
                                        "decode",
                                        job.admitted_ms * 1000.0,
                                        clock_ms * 1000.0,
                                    );
                                }
                                rec.instant(pid_req, tid, "request", "drop-oom", clock_ms * 1000.0);
                            }
                            dropped_self = true;
                            break;
                        } else {
                            // This request IS the youngest: stall it this
                            // step; an older request will preempt it on
                            // the next pass if pressure persists.
                            break;
                        }
                    }
                    // lint:allow(P1) — append on an active id can only fail with OutOfMemory (handled above); UnknownRequest here means the admission bookkeeping is already corrupt
                    Err(e) => unreachable!("append invariant: {e}"),
                }
            }
            if dropped_self {
                continue; // active[idx] is now the next job
            }
            if emitted > 0 {
                tokens_emitted += emitted as u64;
                active[idx].generated += emitted;
                if active[idx].first_token_ms.is_none() {
                    active[idx].first_token_ms = Some(clock_ms);
                    if !ttft_recorded[active[idx].rid()] {
                        ttft_recorded[active[idx].rid()] = true;
                        ttft_samples.push(clock_ms - active[idx].req.arrival_ms);
                    }
                }
            }
            if active[idx].generated >= active[idx].req.output_tokens {
                let job = active.remove(idx);
                let _ = kv.release(job.cache_id());
                live[job.rid()] -= 1;
                done[job.rid()] = true;
                if job.clone_tag == 1 {
                    fstate.stats.hedge_wins += 1;
                }
                let is_corrupt = corrupted[job.rid()];
                if is_corrupt {
                    fstate.stats.corrupted_completions += 1;
                }
                // lint:allow(P1) — generated >= output_tokens >= 1, and the emit loop sets first_token_ms on the first token; a fallback value would fabricate a TTFT sample
                let first = job.first_token_ms.expect("completed implies first token");
                let ttft = first - job.req.arrival_ms;
                let e2e = clock_ms - job.req.arrival_ms;
                let tpot = if job.req.output_tokens > 1 {
                    let tpot = (clock_ms - first) / (job.req.output_tokens - 1) as f64;
                    tpot_samples.push(tpot);
                    tpot
                } else {
                    0.0
                };
                e2e_samples.push(e2e);
                if ttft <= cfg.slo.ttft_ms && tpot <= cfg.slo.tpot_ms && !is_corrupt {
                    good += 1;
                }
                completed += 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    if job.admitted_ms.is_finite() {
                        rec.span(
                            pid_req,
                            tid,
                            "request",
                            "decode",
                            job.admitted_ms * 1000.0,
                            clock_ms * 1000.0,
                        );
                    }
                    rec.instant(pid_req, tid, "request", "complete", clock_ms * 1000.0);
                    rec.observe(&m_ttft, ttft);
                    if job.req.output_tokens > 1 {
                        rec.observe(&m_tpot, tpot);
                    }
                    rec.observe(&m_e2e, e2e);
                }
            } else {
                idx += 1;
            }
        }

        qdepth_samples.push(ready.len() as f64);
        kvutil_samples.push(kv.utilization());
        if on {
            let ts = clock_ms * 1000.0;
            rec.counter_sample(pid_engine, &m_batch, ts, step_batch as f64);
            rec.counter_sample(pid_engine, &m_queue, ts, ready.len() as f64);
            rec.counter_sample(pid_engine, &m_kv, ts, kv.utilization());
        }
    }

    let mut stats = fstate.stats;
    stats.unfinished = total_requests - completed - dropped - stats.rejected;
    let sim_s = (clock_ms / 1000.0).max(f64::MIN_POSITIVE);
    let serving = ServingReport {
        requests: total_requests,
        completed,
        dropped,
        preemptions,
        decode_steps: steps,
        sim_duration_ms: clock_ms,
        ttft_ms: Summary::of(&mut ttft_samples),
        tpot_ms: Summary::of(&mut tpot_samples),
        e2e_ms: Summary::of(&mut e2e_samples),
        queue_depth: Summary::of(&mut qdepth_samples),
        kv_utilization: Summary::of(&mut kvutil_samples),
        throughput_tokens_per_s: tokens_emitted as f64 / sim_s,
        goodput_rps: good as f64 / sim_s,
        slo_attainment: good as f64 / total_requests.max(1) as f64,
    };
    if on {
        rec.counter_add(&format!("{scope}.requests"), total_requests as u64);
        rec.counter_add(&format!("{scope}.completed"), completed as u64);
        rec.counter_add(&format!("{scope}.dropped"), dropped as u64);
        rec.counter_add(&format!("{scope}.preemptions"), preemptions as u64);
        rec.counter_add(&format!("{scope}.decode_steps"), steps as u64);
        rec.counter_add(&format!("{scope}.tokens"), tokens_emitted);
        rec.counter_add(&format!("{scope}.retries"), stats.retries as u64);
        rec.counter_add(&format!("{scope}.rejected"), stats.rejected as u64);
        rec.counter_add(&format!("{scope}.hedge_wins"), stats.hedge_wins as u64);
        rec.gauge_set(&format!("{scope}.slo_attainment"), serving.slo_attainment);
        rec.gauge_set(&format!("{scope}.throughput_tokens_per_s"), serving.throughput_tokens_per_s);
        rec.gauge_set(&format!("{scope}.sim_duration_ms"), serving.sim_duration_ms);
    }
    FaultyServingReport { serving, faults: stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_cfg(rate: f64, requests: usize, router: RouterPolicy) -> ServingSimConfig {
        ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            requests,
            router,
        )
    }

    fn crash(at_ms: f64, replica: usize, repair_ms: f64) -> dsv3_faults::FaultEvent {
        dsv3_faults::FaultEvent {
            at_ms,
            kind: dsv3_faults::FaultKind::ReplicaCrash { replica, repair_ms },
        }
    }

    #[test]
    fn completes_all_requests_below_saturation() {
        let report = run(&poisson_cfg(6.0, 400, RouterPolicy::Unified));
        assert_eq!(report.completed, 400);
        assert_eq!(report.dropped, 0);
        assert!(report.slo_attainment > 0.9, "attainment {}", report.slo_attainment);
        assert!(report.tpot_ms.p50 > 0.0);
        assert!(report.ttft_ms.p50 > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = poisson_cfg(10.0, 300, RouterPolicy::Unified);
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn overload_degrades_tail_latency() {
        let calm = run(&poisson_cfg(4.0, 400, RouterPolicy::Unified));
        let slammed = run(&poisson_cfg(40.0, 400, RouterPolicy::Unified));
        assert!(
            slammed.tpot_ms.p99 > 1.5 * calm.tpot_ms.p99,
            "overload p99 {} vs calm {}",
            slammed.tpot_ms.p99,
            calm.tpot_ms.p99
        );
        assert!(slammed.e2e_ms.p99 > calm.e2e_ms.p99);
        assert!(slammed.slo_attainment < calm.slo_attainment);
    }

    #[test]
    fn kv_pressure_forces_preemption_or_queueing() {
        let mut cfg = poisson_cfg(30.0, 300, RouterPolicy::Unified);
        // Starve the cache: ~5.7k tokens ≈ a handful of requests.
        cfg.engine.kv_capacity_bytes = 400_000_000;
        let report = run(&cfg);
        assert!(report.kv_utilization.max > 0.8, "util {:?}", report.kv_utilization);
        assert!(
            report.preemptions > 0 || report.queue_depth.max > 0.0,
            "cache pressure must surface somewhere"
        );
        assert_eq!(report.completed + report.dropped, 300);
    }

    #[test]
    fn infeasible_requests_are_dropped_not_wedged() {
        let mut cfg = poisson_cfg(10.0, 50, RouterPolicy::Unified);
        cfg.engine.kv_capacity_bytes = 80_000_000; // ~1.1k tokens
        cfg.workload.prompt = LengthDistribution::fixed(2048); // never fits
        let report = run(&cfg);
        assert_eq!(report.dropped, 50);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn mtp_raises_throughput() {
        // Past the saturation knee the engine is service-limited, so the
        // ~1.8x token rate of one MTP module shows up in throughput.
        let base = poisson_cfg(40.0, 400, RouterPolicy::Unified);
        let mut with_mtp = base.clone();
        with_mtp.engine.mtp = Some(MtpSpec { modules: 1, acceptance: 0.85, step_overhead: 0.02 });
        let plain = run(&base);
        let spec = run(&with_mtp);
        assert!(
            spec.throughput_tokens_per_s > 1.3 * plain.throughput_tokens_per_s,
            "mtp {} vs plain {}",
            spec.throughput_tokens_per_s,
            plain.throughput_tokens_per_s
        );
    }

    #[test]
    fn step_cap_terminates_overload() {
        let mut cfg = poisson_cfg(500.0, 2000, RouterPolicy::Unified);
        cfg.engine.max_steps = 200;
        let report = run(&cfg);
        assert!(report.decode_steps <= 200);
        assert!(report.completed < 2000);
    }

    #[test]
    fn empty_plan_is_byte_identical_to_healthy_run() {
        for router in
            [RouterPolicy::Unified, RouterPolicy::Disaggregated { prefill_fraction: 0.25 }]
        {
            let mut cfg = poisson_cfg(12.0, 300, router);
            cfg.engine.mtp = Some(MtpSpec { modules: 1, acceptance: 0.8, step_overhead: 0.03 });
            let healthy = run(&cfg);
            let faulty = run_with_faults(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::hedged());
            assert_eq!(
                serde_json::to_string(&healthy).unwrap(),
                serde_json::to_string(&faulty.serving).unwrap(),
                "empty plan must be a byte-for-byte no-op"
            );
            assert_eq!(faulty.faults.crash_events, 0);
            assert_eq!(faulty.faults.hedges_spawned, 0);
        }
    }

    #[test]
    fn crashes_requeue_and_still_complete_everything() {
        let cfg = poisson_cfg(8.0, 200, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 4,
            planes: 8,
            links: 0,
            events: vec![crash(2_000.0, 1, 3_000.0), crash(9_000.0, 2, 3_000.0)],
        };
        let r = run_with_faults(&cfg, &plan, &RecoveryPolicy::default());
        assert_eq!(r.faults.crash_events, 2);
        assert!(r.faults.jobs_lost_to_crashes > 0, "crashes must hit in-flight work");
        assert_eq!(r.faults.retries, r.faults.jobs_lost_to_crashes);
        assert_eq!(r.faults.rejected, 0);
        assert_eq!(r.faults.unfinished, 0);
        assert_eq!(r.serving.completed + r.serving.dropped, 200, "no request lost");
        let healthy = run(&cfg);
        assert!(
            r.serving.e2e_ms.max >= healthy.e2e_ms.max,
            "re-prefill after a crash cannot shorten the tail"
        );
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let cfg = poisson_cfg(10.0, 250, RouterPolicy::Unified);
        let plan = FaultPlan::generate(&dsv3_faults::FaultPlanConfig {
            seed: 11,
            horizon_ms: 30_000.0,
            crash_mtbf_ms: 8_000.0,
            flap_mtbf_ms: 10_000.0,
            straggler_mtbf_ms: 12_000.0,
            sdc_mtbf_ms: 15_000.0,
            ..dsv3_faults::FaultPlanConfig::default()
        });
        let a = run_with_faults(&cfg, &plan, &RecoveryPolicy::hedged());
        let b = run_with_faults(&cfg, &plan, &RecoveryPolicy::hedged());
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn exhausted_retry_budget_rejects() {
        let cfg = poisson_cfg(8.0, 60, RouterPolicy::Unified);
        // One replica, hammered: every active job dies on each crash.
        let events = (1..=40).map(|i| crash(500.0 * i as f64, 0, 100.0)).collect();
        let plan = FaultPlan { replicas: 1, planes: 8, links: 0, events };
        let policy = RecoveryPolicy { max_retries: 1, ..RecoveryPolicy::default() };
        let r = run_with_faults(&cfg, &plan, &policy);
        assert!(r.faults.rejected > 0, "retry budget must bite: {:?}", r.faults);
        assert_eq!(
            r.serving.completed + r.serving.dropped + r.faults.rejected + r.faults.unfinished,
            60,
            "conservation"
        );
    }

    #[test]
    fn hedging_spawns_clones_and_can_win() {
        let cfg = poisson_cfg(8.0, 150, RouterPolicy::Unified);
        let events = (1..=10).map(|i| crash(1_500.0 * i as f64, 0, 2_000.0)).collect();
        let plan = FaultPlan { replicas: 2, planes: 8, links: 0, events };
        let r = run_with_faults(&cfg, &plan, &RecoveryPolicy::hedged());
        assert!(r.faults.hedges_spawned > 0);
        assert!(r.faults.hedge_wins <= r.faults.hedges_spawned);
        assert_eq!(r.faults.unfinished, 0);
        assert_eq!(r.serving.completed + r.serving.dropped + r.faults.rejected, 150);
    }

    #[test]
    fn plane_flaps_slow_decode_steps() {
        let cfg = poisson_cfg(10.0, 200, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 1,
            planes: 8,
            links: 0,
            events: vec![
                FaultEvent {
                    at_ms: 1_000.0,
                    kind: FaultKind::PlaneFlap { plane: 2, repair_ms: 15_000.0 },
                },
                FaultEvent {
                    at_ms: 3_000.0,
                    kind: FaultKind::PlaneFlap { plane: 5, repair_ms: 15_000.0 },
                },
            ],
        };
        let r = run_with_faults(&cfg, &plan, &RecoveryPolicy::default());
        assert_eq!(r.faults.plane_flap_events, 2);
        assert!(r.faults.degraded_steps > 0);
        assert!((r.faults.min_bandwidth_retention - 6.0 / 8.0).abs() < 1e-12);
        let healthy = run(&cfg);
        assert!(
            r.serving.sim_duration_ms > healthy.sim_duration_ms,
            "degraded bandwidth must stretch the run: {} vs {}",
            r.serving.sim_duration_ms,
            healthy.sim_duration_ms
        );
    }

    #[test]
    fn stragglers_and_sdc_are_accounted() {
        let cfg = poisson_cfg(10.0, 150, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 1,
            planes: 8,
            links: 0,
            events: vec![
                FaultEvent {
                    at_ms: 1_000.0,
                    kind: FaultKind::Straggler { slowdown: 2.0, duration_ms: 5_000.0 },
                },
                FaultEvent { at_ms: 2_000.0, kind: FaultKind::Sdc { detected: true } },
                FaultEvent { at_ms: 2_500.0, kind: FaultKind::Sdc { detected: false } },
            ],
        };
        let r = run_with_faults(&cfg, &plan, &RecoveryPolicy::default());
        assert_eq!(r.faults.straggler_events, 1);
        assert!(r.faults.straggler_steps > 0);
        assert_eq!(r.faults.sdc_events, 2);
        assert_eq!(r.faults.sdc_detected, 1);
        assert!(r.faults.sdc_recompute_ms > 0.0);
        assert_eq!(r.faults.corrupted_completions, 1, "the silent strike corrupts one output");
        assert_eq!(r.serving.completed + r.serving.dropped, 150);
    }

    #[test]
    fn traced_run_report_is_identical_to_plain_run() {
        let cfg = poisson_cfg(10.0, 200, RouterPolicy::Unified);
        let plain = run(&cfg);
        let mut rec = Recorder::new();
        let traced = run_traced(&cfg, &mut rec, "serving");
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&traced).unwrap(),
            "telemetry must never perturb the simulation"
        );
        assert!(!rec.events().is_empty());
        assert_eq!(rec.counters()["serving.completed"], traced.completed as u64);
        assert_eq!(rec.histogram("serving.ttft_ms").unwrap().count(), traced.completed as u64);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let cfg = poisson_cfg(10.0, 200, RouterPolicy::Disaggregated { prefill_fraction: 0.5 });
        let mut rec = Recorder::disabled();
        let traced = run_traced(&cfg, &mut rec, "serving");
        assert_eq!(
            serde_json::to_string(&run(&cfg)).unwrap(),
            serde_json::to_string(&traced).unwrap()
        );
        assert!(rec.events().is_empty());
        assert!(rec.counters().is_empty());
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let cfg = poisson_cfg(10.0, 150, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 2,
            planes: 8,
            links: 0,
            events: vec![crash(2_000.0, 0, 3_000.0)],
        };
        let trace = |()| {
            let mut rec = Recorder::new();
            let _ = run_with_faults_traced(&cfg, &plan, &RecoveryPolicy::hedged(), &mut rec, "s");
            rec.export_trace().to_json()
        };
        assert_eq!(trace(()), trace(()), "same seed, byte-identical trace");
    }

    #[test]
    fn trace_contains_lifecycle_spans_and_fault_instants() {
        let cfg = poisson_cfg(10.0, 150, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 2,
            planes: 8,
            links: 0,
            events: vec![crash(2_000.0, 0, 3_000.0)],
        };
        let mut rec = Recorder::new();
        let r = run_with_faults_traced(&cfg, &plan, &RecoveryPolicy::default(), &mut rec, "s");
        assert!(r.faults.jobs_lost_to_crashes > 0, "crash must land mid-flight");
        let events = rec.events();
        let spans = |name: &str| events.iter().filter(|e| e.ph == "X" && e.name == name).count();
        assert!(spans("prefill") > 0);
        assert!(spans("queued") > 0);
        assert!(spans("decode") >= r.serving.completed, "every completion closes a decode span");
        let instants = |name: &str| events.iter().filter(|e| e.ph == "i" && e.name == name).count();
        assert_eq!(instants("complete"), r.serving.completed);
        assert!(
            events.iter().any(|e| e.ph == "i" && e.name.starts_with("inject replica-crash")),
            "fault injection must appear in the serving trace"
        );
        assert!(events.iter().any(|e| e.ph == "C" && e.name == "s.batch_size"));
        // Spans never have negative extent and all timestamps are finite.
        assert!(events.iter().all(|e| e.ts.is_finite() && e.dur >= 0.0));
    }

    #[test]
    fn unrepaired_total_outage_terminates_with_unfinished() {
        let cfg = poisson_cfg(10.0, 80, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 1,
            planes: 8,
            links: 0,
            events: vec![crash(1_000.0, 0, f64::INFINITY)],
        };
        let policy = RecoveryPolicy { max_retries: 100, ..RecoveryPolicy::default() };
        let r = run_with_faults(&cfg, &plan, &policy);
        assert!(r.faults.unfinished > 0, "outage strands the tail: {:?}", r.faults);
        assert_eq!(
            r.serving.completed + r.serving.dropped + r.faults.rejected + r.faults.unfinished,
            80
        );
    }
}
