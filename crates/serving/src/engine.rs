//! Continuous-batching decode engine: a request-level discrete-event
//! simulator composing the repo's analytical substrates.
//!
//! Time advances in decode steps. Each step's duration comes from the EP
//! speed-limit model (`dsv3_inference::tpot`) evaluated at the *current*
//! batch size, so latency degrades as the batch grows exactly as §2.3.2's
//! arithmetic says it must. Admission is gated by the KV-cache manager
//! (`dsv3_inference::kvcache`): requests wait in a FIFO when the cache is
//! full, and mid-flight out-of-memory preempts the youngest request back
//! to the queue. Prefill placement follows the router policy
//! ([`crate::router::RouterPolicy`]), calibrated against
//! `dsv3_inference::disagg`. Optional MTP speculative decoding drains
//! several tokens per request per step with the acceptance-chain
//! statistics of `dsv3_model::mtp` (draft-verification compute is folded
//! into `step_overhead`, matching `mtp::tps_speedup`'s cost model).
//!
//! Faults arrive during a run through [`run_with_faults`]: a
//! `dsv3_faults::FaultPlan` timeline drives replica crashes (in-flight KV
//! lost, requeue-and-re-prefill with exponential backoff, optional
//! hedging), plane flaps (steps run at the degraded speed limit given by
//! `collectives::failures` retention), stragglers, and SDC strikes. The
//! fault path is strictly additive: with an empty plan every fault branch
//! is dead and [`run`] produces its report byte-for-byte.
//!
//! Overload robustness arrives through [`run_overload`]: admission
//! control (queue bound, token bucket, deadline predictor), a
//! graceful-degradation ladder, closed-loop clients with timeouts and
//! jittered-backoff retries, and reactive pool autoscaling — see
//! [`crate::overload`] and [`crate::autoscale`]. The overload path is
//! additive the same way: with [`OverloadConfig::disabled`] every branch
//! is dead and the report is byte-identical to [`run_with_faults`]'s.
//!
//! Everything is driven by seeded RNG and ordered containers, so equal
//! configs produce byte-identical reports.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dsv3_faults::{
    bandwidth_retention, FaultDriver, FaultEvent, FaultKind, FaultPlan, Injectable, RecoveryPolicy,
};
use dsv3_inference::kvcache::{CacheError, KvCacheManager};
use dsv3_inference::SpeedLimitConfig;
use dsv3_model::zoo;
use dsv3_telemetry::Recorder;
use dsv3_units::{ms_to_s, ms_to_us};

use crate::autoscale::{AutoscaleState, AutoscaleStats};
use crate::metrics::Summary;
use crate::overload::{
    GoodputWindow, LadderState, OverloadConfig, OverloadServingReport, OverloadStats, TokenBucket,
};
use crate::router::RouterPolicy;
use crate::workload::{self, ArrivalProcess, LengthDistribution, Request, WorkloadConfig};

/// MTP speculative-decoding parameters (§2.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MtpSpec {
    /// Draft modules chained per step.
    pub modules: usize,
    /// Per-position draft acceptance probability.
    pub acceptance: f64,
    /// Relative per-step cost of running the draft modules (the `1 + x`
    /// denominator of `dsv3_model::mtp::tps_speedup`).
    pub step_overhead: f64,
}

/// Decode-engine parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// EP speed-limit model; `tokens_per_device` is overridden each step
    /// with the live batch size.
    pub speed: SpeedLimitConfig,
    /// KV-cache byte budget of the decode pool.
    pub kv_capacity_bytes: usize,
    /// Cache element width (2 = BF16, 1 = FP8).
    pub kv_bytes_per_elem: usize,
    /// Hard cap on concurrently decoding requests.
    pub max_batch: usize,
    /// Full-pool prefill throughput, tokens per millisecond. The router
    /// policy decides how much of it prefill actually gets.
    pub prefill_tokens_per_ms: f64,
    /// Speculative decoding; `None` = plain autoregressive.
    pub mtp: Option<MtpSpec>,
    /// Safety cap on simulated decode steps (overload runs terminate with
    /// the un-served tail counted against SLO attainment).
    pub max_steps: usize,
}

/// Latency targets a request must meet to count toward goodput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Time-to-first-token bound, ms.
    pub ttft_ms: f64,
    /// Per-token decode latency bound, ms.
    pub tpot_ms: f64,
}

/// Complete simulator input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSimConfig {
    /// Request stream.
    pub workload: WorkloadConfig,
    /// Decode engine.
    pub engine: EngineConfig,
    /// Prefill placement.
    pub router: RouterPolicy,
    /// Goodput targets.
    pub slo: SloConfig,
}

impl ServingSimConfig {
    /// H800-calibrated baseline: DeepSeek-V3 KV footprint, the §2.3.2
    /// speed limit with a compute floor at the paper's 32-token operating
    /// point, and a 4 GB KV slice so cache pressure is part of the story.
    #[must_use]
    pub fn h800_baseline(arrival: ArrivalProcess, requests: usize, router: RouterPolicy) -> Self {
        let mut speed = SpeedLimitConfig::h800_ib();
        // comp ≈ comm at 32 tokens/device: small batches hit a compute
        // floor instead of scaling comm time all the way to zero.
        speed.compute_us = 120.0;
        Self {
            workload: WorkloadConfig {
                arrival,
                requests,
                prompt: LengthDistribution {
                    mean_tokens: 512.0,
                    cv: 1.0,
                    min_tokens: 16,
                    max_tokens: 4096,
                },
                output: LengthDistribution {
                    mean_tokens: 128.0,
                    cv: 0.5,
                    min_tokens: 8,
                    max_tokens: 1024,
                },
                seed: 20250805,
            },
            engine: EngineConfig {
                speed,
                kv_capacity_bytes: 4_000_000_000,
                kv_bytes_per_elem: 2,
                max_batch: 128,
                prefill_tokens_per_ms: 16.0,
                mtp: None,
                max_steps: 2_000_000,
            },
            router,
            slo: SloConfig { ttft_ms: 2000.0, tpot_ms: 50.0 },
        }
    }
}

/// Simulator output: SLO metrics plus engine health counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests in the workload.
    pub requests: usize,
    /// Requests fully decoded.
    pub completed: usize,
    /// Requests dropped as infeasible (could never fit in the cache).
    pub dropped: usize,
    /// Mid-flight evictions back to the ready queue.
    pub preemptions: usize,
    /// Decode steps executed.
    pub decode_steps: usize,
    /// Simulated wall-clock, ms.
    pub sim_duration_ms: f64,
    /// Time to first token, per completed request.
    pub ttft_ms: Summary,
    /// Per-token decode latency, per completed request with > 1 output.
    pub tpot_ms: Summary,
    /// End-to-end latency, per completed request.
    pub e2e_ms: Summary,
    /// Decode-ready queue depth, sampled each step.
    pub queue_depth: Summary,
    /// KV-cache utilization, sampled each step.
    pub kv_utilization: Summary,
    /// Decoded tokens per second of simulated time.
    pub throughput_tokens_per_s: f64,
    /// Requests per second that met both SLOs.
    pub goodput_rps: f64,
    /// Fraction of all requests that met both SLOs.
    pub slo_attainment: f64,
}

/// Fault-path counters accumulated by [`run_with_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Replica-crash events delivered.
    pub crash_events: usize,
    /// In-flight jobs evicted (KV lost) by crashes.
    pub jobs_lost_to_crashes: usize,
    /// Requeue-and-re-prefill retries scheduled.
    pub retries: usize,
    /// Requests abandoned after exhausting the retry budget.
    pub rejected: usize,
    /// Hedge clones spawned.
    pub hedges_spawned: usize,
    /// Completions won by the hedge clone rather than the original.
    pub hedge_wins: usize,
    /// Plane-flap events delivered.
    pub plane_flap_events: usize,
    /// Decode steps run at degraded bandwidth.
    pub degraded_steps: usize,
    /// Worst bandwidth retention any step ran at (1.0 = never degraded).
    pub min_bandwidth_retention: f64,
    /// Straggler episodes delivered.
    pub straggler_events: usize,
    /// Decode steps gated by a straggler.
    pub straggler_steps: usize,
    /// SDC strikes delivered.
    pub sdc_events: usize,
    /// SDC strikes caught by the checksum audit.
    pub sdc_detected: usize,
    /// Wall clock spent recomputing audited-bad steps, ms.
    pub sdc_recompute_ms: f64,
    /// Completions whose output an undetected SDC corrupted.
    pub corrupted_completions: usize,
    /// Requests still in flight when the run terminated (step cap or an
    /// unrepairable outage).
    pub unfinished: usize,
}

impl Default for FaultStats {
    fn default() -> Self {
        Self {
            crash_events: 0,
            jobs_lost_to_crashes: 0,
            retries: 0,
            rejected: 0,
            hedges_spawned: 0,
            hedge_wins: 0,
            plane_flap_events: 0,
            degraded_steps: 0,
            min_bandwidth_retention: 1.0,
            straggler_events: 0,
            straggler_steps: 0,
            sdc_events: 0,
            sdc_detected: 0,
            sdc_recompute_ms: 0.0,
            corrupted_completions: 0,
            unfinished: 0,
        }
    }
}

/// Output of [`run_with_faults`]: the serving report plus fault counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyServingReport {
    /// The usual serving metrics (identical to [`run`]'s under an empty
    /// plan).
    pub serving: ServingReport,
    /// What the fault layer did.
    pub faults: FaultStats,
}

/// A request flowing through the engine, with its resume state.
#[derive(Debug, Clone)]
struct Job {
    req: Request,
    /// 0 = original, 1 = hedge clone.
    clone_tag: u8,
    /// Client attempt number (0 = first submission). Bumped when a
    /// closed-loop client abandons and resubmits; stale attempts still
    /// in the system are zombies the engine cancels on sight.
    attempt: u32,
    /// KV tokens this job needs on (re-)admission.
    resident_tokens: usize,
    /// Output tokens decoded so far (survives preemption).
    generated: usize,
    /// Absolute time the first output token landed.
    first_token_ms: Option<f64>,
    /// Earliest time the job may be admitted to the decode batch.
    ready_ms: f64,
    /// When this job entered the prefill stage (NaN when its next
    /// admission needs no prefill span, e.g. after a preemption).
    prefill_enter_ms: f64,
    /// When this job last joined the decode batch (NaN before).
    admitted_ms: f64,
}

impl Job {
    fn new(req: Request) -> Self {
        let resident = req.prompt_tokens;
        Self {
            req,
            clone_tag: 0,
            attempt: 0,
            resident_tokens: resident,
            generated: 0,
            first_token_ms: None,
            ready_ms: f64::INFINITY,
            prefill_enter_ms: f64::NAN,
            admitted_ms: f64::NAN,
        }
    }

    /// KV-cache key: clones and retry attempts of one request need
    /// distinct cache entries. Attempt 0 reduces to the historical
    /// `id·2 + clone_tag`, so baseline runs keep their exact BTreeMap
    /// ordering (request ids are far below 2^31 in practice).
    fn cache_id(&self) -> u64 {
        (u64::from(self.attempt) << 32) | (self.req.id * 2 + u64::from(self.clone_tag))
    }

    /// Bookkeeping index of this job's request.
    fn rid(&self) -> usize {
        self.req.id as usize
    }
}

/// Prefill station state, by router policy.
enum Prefill {
    /// Dedicated FIFO station running at a fixed rate.
    Disaggregated { station_free_ms: f64, rate: f64 },
    /// Backlog drained by stolen decode time (or at the full-pool rate
    /// while decode is idle).
    Unified { backlog: VecDeque<(Job, f64)>, rate: f64 },
}

/// Hand a job (fresh arrival or crash requeue) to the prefill stage.
/// `at_ms` is when it enters the station — the true arrival time for new
/// requests, the retry-release time for requeues — and `tokens` is the
/// context to prefill.
fn enqueue_prefill(
    prefill: &mut Prefill,
    ready: &mut VecDeque<Job>,
    mut job: Job,
    at_ms: f64,
    tokens: f64,
) {
    job.prefill_enter_ms = at_ms;
    match prefill {
        Prefill::Disaggregated { station_free_ms, rate } => {
            let start = at_ms.max(*station_free_ms);
            let done = start + tokens / *rate;
            *station_free_ms = done;
            job.ready_ms = done;
            ready.push_back(job);
        }
        Prefill::Unified { backlog, .. } => {
            backlog.push_back((job, tokens));
        }
    }
}

/// Trace-track label for a job ("req{id}", hedge clones suffixed).
fn req_label(job: &Job) -> String {
    if job.clone_tag == 1 {
        format!("req{}.hedge", job.rid())
    } else {
        format!("req{}", job.rid())
    }
}

/// Live fault state: which resources are down right now, plus the
/// consequences queued for the engine to apply at the next step boundary.
struct FaultState {
    replicas: usize,
    planes: usize,
    /// Refcounted outage sets (overlapping faults of one resource stack).
    replica_down: BTreeMap<usize, u32>,
    plane_down: BTreeMap<usize, u32>,
    /// Active straggler episodes by event seq; the worst one gates steps.
    stragglers: BTreeMap<usize, f64>,
    /// Crashes since the engine last drained them (replica ids).
    pending_crashes: Vec<usize>,
    /// SDC strikes since the engine last drained them (detected flags).
    pending_sdc: Vec<bool>,
    stats: FaultStats,
}

impl FaultState {
    fn new(plan: &FaultPlan) -> Self {
        Self {
            replicas: plan.replicas,
            planes: plan.planes,
            replica_down: BTreeMap::new(),
            plane_down: BTreeMap::new(),
            stragglers: BTreeMap::new(),
            pending_crashes: Vec::new(),
            pending_sdc: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    fn healthy_replicas(&self) -> usize {
        self.replicas - self.replica_down.len()
    }

    fn slowdown(&self) -> f64 {
        self.stragglers.values().fold(1.0, |a, &b| a.max(b))
    }
}

impl Injectable for FaultState {
    fn inject(&mut self, seq: usize, event: &FaultEvent) {
        match event.kind {
            FaultKind::ReplicaCrash { replica, .. } => {
                *self.replica_down.entry(replica).or_insert(0) += 1;
                self.pending_crashes.push(replica);
                self.stats.crash_events += 1;
            }
            FaultKind::PlaneFlap { plane, .. } => {
                *self.plane_down.entry(plane).or_insert(0) += 1;
                self.stats.plane_flap_events += 1;
            }
            FaultKind::Straggler { slowdown, .. } => {
                self.stragglers.insert(seq, slowdown);
                self.stats.straggler_events += 1;
            }
            FaultKind::Sdc { detected } => {
                self.pending_sdc.push(detected);
                self.stats.sdc_events += 1;
                if detected {
                    self.stats.sdc_detected += 1;
                }
            }
            // Link-granular failures are a flow-simulator concern
            // (`dsv3_netsim::chaos`); the serving engine's network model is
            // plane-granular, so a single cable loss is absorbed by ECMP.
            FaultKind::LinkFail { .. } => {}
        }
    }

    fn heal(&mut self, seq: usize, event: &FaultEvent) {
        match event.kind {
            FaultKind::ReplicaCrash { replica, .. } => {
                if let Some(c) = self.replica_down.get_mut(&replica) {
                    *c -= 1;
                    if *c == 0 {
                        self.replica_down.remove(&replica);
                    }
                }
            }
            FaultKind::PlaneFlap { plane, .. } => {
                if let Some(c) = self.plane_down.get_mut(&plane) {
                    *c -= 1;
                    if *c == 0 {
                        self.plane_down.remove(&plane);
                    }
                }
            }
            FaultKind::Straggler { .. } => {
                self.stragglers.remove(&seq);
            }
            FaultKind::Sdc { .. } | FaultKind::LinkFail { .. } => {}
        }
    }
}

/// Run the simulation to completion (or the step cap) and report.
///
/// Equivalent to [`run_with_faults`] with an empty plan — byte-for-byte.
///
/// # Panics
///
/// Panics on degenerate configs (zero batch cap, non-positive prefill
/// rate) — the same contract as the underlying analytical models.
#[must_use]
pub fn run(cfg: &ServingSimConfig) -> ServingReport {
    run_with_faults(cfg, &FaultPlan::healthy(), &RecoveryPolicy::default()).serving
}

/// [`run`] plus telemetry into `rec` (see [`run_with_faults_traced`]).
///
/// # Panics
///
/// Same contract as [`run`].
#[must_use]
pub fn run_traced(cfg: &ServingSimConfig, rec: &mut Recorder, scope: &str) -> ServingReport {
    run_with_faults_traced(cfg, &FaultPlan::healthy(), &RecoveryPolicy::default(), rec, scope)
        .serving
}

/// Run the simulation under a deterministic fault timeline.
///
/// Recovery follows `policy`: a crash evicts the replica's in-flight jobs
/// (their KV is lost), each victim re-prefills its full accumulated
/// context after an exponential-backoff delay, a request is rejected once
/// it has crashed more than `max_retries` times, and (optionally) the
/// first crash of a request spawns a hedge clone — first copy to finish
/// wins, the loser is cancelled wherever it happens to be. Plane flaps
/// re-evaluate the speed limit at the degraded bandwidth retention;
/// stragglers gate steps by their slowdown; detected SDC strikes pay a
/// recompute, undetected ones corrupt the youngest active request's
/// output (completions still count, goodput does not).
///
/// # Panics
///
/// Panics on degenerate configs or an invalid `plan`
/// (see [`FaultPlan::validate`]).
#[must_use]
pub fn run_with_faults(
    cfg: &ServingSimConfig,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> FaultyServingReport {
    run_with_faults_traced(cfg, plan, policy, &mut Recorder::disabled(), "")
}

/// [`run_with_faults`] plus telemetry: every request gets a
/// prefill→queued→decode span chain (with preempt/retry/cancel/complete
/// instants) on a `{scope}/requests` track, every delivered fault an
/// instant on `{scope}/faults`, and the engine samples batch size, queue
/// depth, and KV occupancy each decode step on `{scope}/engine`. Latency
/// samples also land in `{scope}.ttft_ms`/`.tpot_ms`/`.e2e_ms`
/// histograms, and lifecycle counts in `{scope}.*` counters. Timestamps
/// are simulation milliseconds scaled to trace microseconds. With a
/// disabled recorder every telemetry branch is dead and the report is
/// byte-identical to [`run_with_faults`] — enforced by test.
///
/// # Panics
///
/// Same contract as [`run_with_faults`].
#[must_use]
pub fn run_with_faults_traced(
    cfg: &ServingSimConfig,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    rec: &mut Recorder,
    scope: &str,
) -> FaultyServingReport {
    let r = simulate(cfg, plan, policy, None, rec, scope);
    FaultyServingReport { serving: r.serving, faults: r.faults }
}

/// Run the simulation with the overload-robustness layer active:
/// admission control, the degradation ladder, closed-loop retrying
/// clients, and reactive autoscaling, per `ov` (see [`crate::overload`]).
///
/// With [`OverloadConfig::disabled`] the serving and fault reports are
/// byte-identical to [`run_with_faults`]'s — every overload branch is
/// guarded, the overload layer draws from its own seeded RNG stream, and
/// the disabled path performs no extra float arithmetic on shared state.
///
/// # Panics
///
/// Same contract as [`run_with_faults`], plus: an autoscale config whose
/// `decode_base` disagrees with `plan.replicas` (the crash timeline
/// would address a pool that does not exist).
#[must_use]
pub fn run_overload(
    cfg: &ServingSimConfig,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    ov: &OverloadConfig,
) -> OverloadServingReport {
    simulate(cfg, plan, policy, Some(ov), &mut Recorder::disabled(), "")
}

/// [`run_overload`] plus telemetry: everything [`run_with_faults_traced`]
/// records, plus an instant for every shed/timeout/retry/give-up on the
/// request track, every rung transition and scale decision on the engine
/// track, and per-step gauges for the active rung and live pool sizes.
///
/// # Panics
///
/// Same contract as [`run_overload`].
// lint:entry — the serving engine step loop (overload superset: admission,
// ladder, autoscale, retries, hedging all run under this entry).
#[must_use]
pub fn run_overload_traced(
    cfg: &ServingSimConfig,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    ov: &OverloadConfig,
    rec: &mut Recorder,
    scope: &str,
) -> OverloadServingReport {
    simulate(cfg, plan, policy, Some(ov), rec, scope)
}

/// The one simulation loop behind every public entry point. `ov = None`
/// (or a disabled config) reproduces the pre-overload engine
/// byte-for-byte.
#[allow(clippy::too_many_lines)]
fn simulate(
    cfg: &ServingSimConfig,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    ov: Option<&OverloadConfig>,
    rec: &mut Recorder,
    scope: &str,
) -> OverloadServingReport {
    assert!(cfg.engine.max_batch > 0, "batch cap must be positive");
    assert!(cfg.engine.prefill_tokens_per_ms > 0.0, "prefill rate must be positive");

    let total_requests = cfg.workload.requests;
    let mut arrivals = workload::generate(&cfg.workload).into_iter().peekable();
    let model = zoo::deepseek_v3();
    let mut kv =
        KvCacheManager::new(&model, cfg.engine.kv_bytes_per_elem, cfg.engine.kv_capacity_bytes);
    // Independent stream from the workload's so adding MTP never perturbs
    // the generated requests.
    let mut rng = StdRng::seed_from_u64(cfg.workload.seed ^ 0x6d74_7000);

    let mut driver = FaultDriver::new(plan);
    let mut fstate = FaultState::new(plan);

    // Overload layer: every feature is individually optional, and each
    // `None` below kills its branches dead so the legacy path stays
    // byte-identical.
    let adm = ov.and_then(|o| o.admission.as_ref());
    let ladder_cfg = ov.and_then(|o| o.ladder.as_ref());
    let clients = ov.and_then(|o| o.clients.as_ref());
    let as_cfg = ov.and_then(|o| o.autoscale.as_ref());
    let priority_classes = ov.map_or(1, |o| o.priority_classes.max(1));
    let window_ms = ov.map_or(0.0, |o| o.timeline_window_ms);
    if let Some(ac) = as_cfg {
        assert_eq!(
            ac.decode_base, plan.replicas,
            "autoscale decode_base must match the fault plan's replica count"
        );
    }
    let mut ostats = OverloadStats::default();
    let mut ladder = LadderState::new();
    let mut bucket = adm.and_then(|a| a.rate_limit.as_ref()).map(TokenBucket::new);
    let mut ascale = as_cfg.map(AutoscaleState::new);
    // Jitter draws come from their own stream so client backoff never
    // perturbs the MTP RNG.
    let mut jitter_rng = StdRng::seed_from_u64(cfg.workload.seed ^ 0x6f76_6a74);
    let base_prefill_rate = cfg.router.prefill_rate(cfg.engine.prefill_tokens_per_ms);

    // Closed-loop client state, indexed by request id. `req_info` keeps
    // each request as generated so a timed-out attempt can be resubmitted
    // verbatim (original arrival stamp included — latency samples charge
    // the client's full wait, retries and all).
    let mut req_info: Vec<Option<Request>> = vec![None; total_requests];
    let mut attempt_cur = vec![0u32; total_requests];
    let mut retries_used = vec![0u32; total_requests];
    let mut prev_backoff = vec![0.0f64; total_requests];
    let mut crash_prev_backoff = vec![0.0f64; total_requests];
    let mut served_first_token = vec![false; total_requests];
    // (deadline, seq, rid, attempt), kept sorted by deadline: client
    // retries and fresh arrivals interleave within an iteration, so the
    // push order alone is not quite chronological.
    let mut timeouts: Vec<(f64, u64, usize, u32)> = Vec::new();
    let mut timeout_seq = 0u64;
    // Client retries waiting out their backoff, sorted like `delayed`.
    let mut client_delayed: Vec<(f64, u64, Request)> = Vec::new();
    let mut client_seq = 0u64;

    // Goodput timeline: (offered, completed, good) per window.
    let mut windows: Vec<(usize, usize, usize)> = Vec::new();
    // Smoothed decode-step duration: feeds the deadline predictor and
    // the ladder's pressure signal.
    let mut ewma_step_ms = 0.0f64;
    // The admission cap the previous iteration ran with (the pressure
    // estimate uses it before this iteration's value exists).
    let mut last_cap = cfg.engine.max_batch;

    // Telemetry tracks and metric names. `on` guards every emission so a
    // disabled recorder costs one branch per site and these few one-time
    // allocations per run.
    let on = rec.is_enabled();
    let (pid_engine, pid_req, pid_faults) = if on {
        (
            rec.process(&format!("{scope}/engine")),
            rec.process(&format!("{scope}/requests")),
            rec.process(&format!("{scope}/faults")),
        )
    } else {
        (0, 0, 0)
    };
    let m_batch = format!("{scope}.batch_size");
    let m_queue = format!("{scope}.queue_depth");
    let m_kv = format!("{scope}.kv_utilization");
    let m_ttft = format!("{scope}.ttft_ms");
    let m_tpot = format!("{scope}.tpot_ms");
    let m_e2e = format!("{scope}.e2e_ms");
    // Overload-only telemetry handles, created only when a feature is on
    // so the disabled path emits exactly the legacy trace.
    let ov_any = ov.is_some_and(|o| !o.is_disabled());
    let tid_engine = if on && ov_any { rec.thread(pid_engine, "engine") } else { 0 };
    let m_rung = format!("{scope}.rung");
    let m_decode_live = format!("{scope}.decode_replicas");
    let m_prefill_live = format!("{scope}.prefill_replicas");
    // Time-series tracks for the watch detectors (`dsv3 audit`). The
    // queue/kv/batch/rung names are shared with the counter samples
    // above; series live in their own namespace in the recorder.
    let s_offered = format!("{scope}.offered");
    let s_good = format!("{scope}.slo.good");
    let s_ttft_ok = format!("{scope}.slo.ttft_ok");
    let s_tpot_ok = format!("{scope}.slo.tpot_ok");
    let mut s_replica: Vec<String> = Vec::new();
    let mut replica_counts: Vec<u32> = Vec::new();

    let mut prefill = match cfg.router {
        RouterPolicy::Unified => Prefill::Unified {
            backlog: VecDeque::new(),
            rate: cfg.router.prefill_rate(cfg.engine.prefill_tokens_per_ms),
        },
        RouterPolicy::Disaggregated { .. } => Prefill::Disaggregated {
            station_free_ms: 0.0,
            rate: cfg.router.prefill_rate(cfg.engine.prefill_tokens_per_ms),
        },
    };
    let decode_slowdown = cfg.router.decode_slowdown();

    let mut ready: VecDeque<Job> = VecDeque::new();
    let mut active: Vec<Job> = Vec::new();
    // Crash victims waiting out their backoff: (release_ms, seq, job),
    // kept sorted so releases are deterministic.
    let mut delayed: Vec<(f64, u64, Job)> = Vec::new();
    let mut delayed_seq = 0u64;
    let mut clock_ms = 0.0f64;

    // Per-request bookkeeping (indexed by request id). `live` counts
    // clones anywhere in the system; `done` flips exactly once, when the
    // request completes, drops, or is rejected.
    let mut done = vec![false; total_requests];
    let mut live = vec![0u8; total_requests];
    let mut hedged = vec![false; total_requests];
    let mut crash_count = vec![0u32; total_requests];
    let mut corrupted = vec![false; total_requests];
    let mut ttft_recorded = vec![false; total_requests];

    let mut completed = 0usize;
    let mut dropped = 0usize;
    let mut preemptions = 0usize;
    let mut steps = 0usize;
    let mut idle_jumps = 0usize;
    let mut good = 0usize;
    let mut tokens_emitted = 0u64;
    let mut ttft_samples = Vec::new();
    let mut tpot_samples = Vec::new();
    let mut e2e_samples = Vec::new();
    let mut qdepth_samples = Vec::new();
    let mut kvutil_samples = Vec::new();

    // Schedule a client retry for a shed/timed-out attempt, or settle the
    // request as rejected once the retry budget is spent. A macro (not a
    // closure) because it mutably borrows half the loop state.
    macro_rules! client_retry_or_reject {
        ($cl:expr, $rid:expr, $req:expr, $now:expr) => {{
            if retries_used[$rid] >= $cl.retry_budget {
                if !done[$rid] {
                    done[$rid] = true;
                    ostats.rejected += 1;
                    if on {
                        let tid = rec.thread(pid_req, &format!("req{}", $rid));
                        rec.instant(pid_req, tid, "request", "give-up", ms_to_us($now));
                    }
                }
            } else {
                retries_used[$rid] += 1;
                let d = $cl.backoff.delay_ms_jittered(
                    retries_used[$rid],
                    prev_backoff[$rid],
                    &mut jitter_rng,
                );
                prev_backoff[$rid] = d;
                ostats.client_retries += 1;
                let at = $now + d;
                let pos = client_delayed
                    .partition_point(|(t, s, _)| *t < at || (*t == at && *s < client_seq));
                client_delayed.insert(pos, (at, client_seq, $req));
                client_seq += 1;
            }
        }};
    }

    // Offer one submission attempt (fresh arrival or client retry) to the
    // admission gate; on admit it enters prefill, on shed the client
    // retries or the request is settled as rejected. With every overload
    // feature off this reduces exactly to the legacy enqueue.
    macro_rules! submit {
        ($req:expr, $attempt:expr, $at:expr) => {{
            let req: Request = $req;
            let rid = req.id as usize;
            let at: f64 = $at;
            if ov_any {
                ostats.offered_attempts += 1;
            }
            let mut shed: Option<&'static str> = None;
            if let Some(rung) = ladder_cfg.and_then(|lc| ladder.active(lc)) {
                let prio = (req.id % u64::from(priority_classes)) as u8;
                if prio < rung.shed_below_priority {
                    ostats.shed_priority += 1;
                    shed = Some("shed-priority");
                } else if rung.context_cap_tokens > 0 && req.prompt_tokens > rung.context_cap_tokens
                {
                    ostats.shed_context += 1;
                    shed = Some("shed-context");
                }
            }
            if shed.is_none() {
                if let Some(a) = adm {
                    let queued = ready.len()
                        + match &prefill {
                            Prefill::Unified { backlog, .. } => backlog.len(),
                            Prefill::Disaggregated { .. } => 0,
                        };
                    let live_decode = ascale.as_ref().map_or(fstate.replicas, |s| s.decode_live);
                    if a.queue_cap > 0 && queued >= a.queue_cap {
                        ostats.shed_queue_full += 1;
                        shed = Some("shed-queue-full");
                    } else if let (Some(rl), Some(b)) = (a.rate_limit.as_ref(), bucket.as_mut()) {
                        if !b.try_take(rl, live_decode, at) {
                            ostats.shed_rate_limited += 1;
                            shed = Some("shed-rate-limit");
                        }
                    }
                    if shed.is_none() && a.deadline_headroom > 0.0 {
                        // Predicted TTFT = prefill completion estimate plus
                        // the decode queue ahead, each slot costing one
                        // smoothed step per mean output token share.
                        let prompt = req.prompt_tokens as f64;
                        let prefill_est = match &prefill {
                            Prefill::Disaggregated { station_free_ms, rate } => {
                                station_free_ms.max(at) + prompt / *rate - at
                            }
                            Prefill::Unified { backlog, rate } => {
                                (backlog.iter().map(|(_, t)| *t).sum::<f64>() + prompt) / *rate
                            }
                        };
                        let per_slot = if ewma_step_ms > 0.0 {
                            ewma_step_ms * cfg.workload.output.mean_tokens / last_cap.max(1) as f64
                        } else {
                            0.0
                        };
                        let predicted = prefill_est + ready.len() as f64 * per_slot;
                        if predicted > a.deadline_headroom * cfg.slo.ttft_ms {
                            ostats.shed_deadline += 1;
                            shed = Some("shed-deadline");
                        }
                    }
                }
            }
            match shed {
                None => {
                    if ov_any {
                        ostats.admitted_attempts += 1;
                    }
                    live[rid] += 1;
                    if let Some(cl) = clients {
                        let deadline = at + cl.timeout_ms;
                        let pos = timeouts.partition_point(|(t, s, _, _)| {
                            *t < deadline || (*t == deadline && *s < timeout_seq)
                        });
                        timeouts.insert(pos, (deadline, timeout_seq, rid, $attempt));
                        timeout_seq += 1;
                        served_first_token[rid] = false;
                    }
                    let mut job = Job::new(req);
                    job.attempt = $attempt;
                    let tokens = job.req.prompt_tokens as f64;
                    enqueue_prefill(&mut prefill, &mut ready, job, at, tokens);
                }
                Some(label) => {
                    if on {
                        let tid = rec.thread(pid_req, &format!("req{rid}"));
                        rec.instant(pid_req, tid, "request", label, ms_to_us(clock_ms));
                    }
                    if let Some(cl) = clients {
                        client_retry_or_reject!(cl, rid, req, clock_ms);
                    } else if !done[rid] {
                        done[rid] = true;
                        ostats.rejected += 1;
                    }
                }
            }
        }};
    }

    while completed + dropped + fstate.stats.rejected + ostats.rejected < total_requests
        && steps < cfg.engine.max_steps
    {
        // Closed-loop clients: fire timeouts that have come due. The
        // abandoned attempt becomes a zombie (cancelled wherever the
        // engine next touches it); the client retries after jittered
        // backoff or gives up for good.
        if let Some(cl) = clients {
            while timeouts.first().is_some_and(|&(d, _, _, _)| d <= clock_ms) {
                let (_, _, rid, att) = timeouts.remove(0);
                if done[rid] || att != attempt_cur[rid] || served_first_token[rid] {
                    continue; // settled, superseded, or already streaming
                }
                ostats.client_timeouts += 1;
                attempt_cur[rid] += 1; // invalidate the in-flight attempt
                if on {
                    let tid = rec.thread(pid_req, &format!("req{rid}"));
                    rec.instant(pid_req, tid, "request", "client-timeout", ms_to_us(clock_ms));
                }
                let Some(req) = req_info[rid].clone() else { continue };
                client_retry_or_reject!(cl, rid, req, clock_ms);
            }
        }

        // Deliver fault events due by now, then apply crash consequences:
        // every job on a crashed replica (position i runs on replica
        // i mod R) loses its KV and is requeued, rejected, or hedged.
        driver.poll_traced(clock_ms, &mut fstate, rec, pid_faults, scope);
        for replica in std::mem::take(&mut fstate.pending_crashes) {
            if let (Some(ac), Some(ast)) = (as_cfg, ascale.as_mut()) {
                if ast.on_crash(ac, replica, clock_ms) && on {
                    rec.instant(
                        pid_engine,
                        tid_engine,
                        "autoscale",
                        "breaker-eject",
                        ms_to_us(clock_ms),
                    );
                }
            }
            let rmap = ascale.as_ref().map_or(fstate.replicas, |s| s.decode_live.max(1));
            let mut i = active.len();
            while i > 0 {
                i -= 1;
                if i % rmap != replica {
                    continue;
                }
                let mut victim = active.remove(i);
                // lint:allow(P1) — every active job was admitted into the cache; swallowing a release failure here would silently corrupt KV accounting
                let held = kv.release(victim.cache_id()).expect("active jobs hold cache");
                victim.resident_tokens = held;
                let id = victim.rid();
                if clients.is_some() && victim.attempt != attempt_cur[id] {
                    // The client already timed this attempt out: the crash
                    // just beat the engine to collecting the zombie.
                    live[id] -= 1;
                    ostats.zombies_cancelled += 1;
                    if on {
                        let tid = rec.thread(pid_req, &req_label(&victim));
                        rec.instant(pid_req, tid, "request", "cancel-zombie", ms_to_us(clock_ms));
                    }
                    continue;
                }
                let req = victim.req.clone();
                fstate.stats.jobs_lost_to_crashes += 1;
                crash_count[id] += 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&victim));
                    if victim.admitted_ms.is_finite() {
                        rec.span(
                            pid_req,
                            tid,
                            "request",
                            "decode",
                            ms_to_us(victim.admitted_ms),
                            ms_to_us(clock_ms),
                        );
                    }
                    rec.instant(pid_req, tid, "request", "crash-evict", ms_to_us(clock_ms));
                }
                victim.admitted_ms = f64::NAN;
                if crash_count[id] > policy.max_retries {
                    live[id] -= 1;
                    if live[id] == 0 && !done[id] {
                        done[id] = true;
                        fstate.stats.rejected += 1;
                        if on {
                            let tid = rec.thread(pid_req, &req_label(&victim));
                            rec.instant(pid_req, tid, "request", "reject", ms_to_us(clock_ms));
                        }
                    }
                } else {
                    fstate.stats.retries += 1;
                    // With a jitter-free policy (the default) this is
                    // exactly `delay_ms` and never touches the RNG.
                    // lint:allow(R2) — jitter_rng is a dedicated child stream seeded from the run seed; the crash-retry loop drains it in deterministic event order
                    let d = policy.backoff.delay_ms_jittered(
                        crash_count[id],
                        crash_prev_backoff[id],
                        &mut jitter_rng,
                    );
                    crash_prev_backoff[id] = d;
                    let at = clock_ms + d;
                    victim.ready_ms = f64::INFINITY;
                    let pos = delayed
                        .partition_point(|(t, s, _)| *t < at || (*t == at && *s < delayed_seq));
                    delayed.insert(pos, (at, delayed_seq, victim));
                    delayed_seq += 1;
                }
                if policy.hedge && !hedged[id] && !done[id] {
                    hedged[id] = true;
                    live[id] += 1;
                    fstate.stats.hedges_spawned += 1;
                    let mut clone = Job::new(req);
                    clone.clone_tag = 1;
                    clone.attempt = attempt_cur[id];
                    if on {
                        let tid = rec.thread(pid_req, &req_label(&clone));
                        rec.instant(pid_req, tid, "request", "hedge-spawn", ms_to_us(clock_ms));
                    }
                    let tokens = clone.req.prompt_tokens as f64;
                    enqueue_prefill(&mut prefill, &mut ready, clone, clock_ms, tokens);
                }
            }
        }

        // Release crash victims whose backoff has elapsed: they re-enter
        // prefill with their full accumulated context.
        while delayed.first().is_some_and(|(t, _, _)| *t <= clock_ms) {
            let (_, _, job) = delayed.remove(0);
            if done[job.rid()] {
                live[job.rid()] -= 1; // sibling already settled it
                continue;
            }
            if clients.is_some() && job.attempt != attempt_cur[job.rid()] {
                live[job.rid()] -= 1; // client timed it out while it waited
                ostats.zombies_cancelled += 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    rec.instant(pid_req, tid, "request", "cancel-zombie", ms_to_us(clock_ms));
                }
                continue;
            }
            if on {
                let tid = rec.thread(pid_req, &req_label(&job));
                rec.instant(pid_req, tid, "request", "retry-release", ms_to_us(clock_ms));
            }
            let tokens = job.resident_tokens as f64;
            enqueue_prefill(&mut prefill, &mut ready, job, clock_ms, tokens);
        }

        // Release client retries whose backoff has elapsed: they re-enter
        // through admission like any fresh arrival.
        while client_delayed.first().is_some_and(|&(t, _, _)| t <= clock_ms) {
            let (t, _, req) = client_delayed.remove(0);
            let rid = req.id as usize;
            if done[rid] {
                continue; // settled while the client waited
            }
            if on {
                let tid = rec.thread(pid_req, &format!("req{rid}"));
                rec.instant(pid_req, tid, "request", "client-resubmit", ms_to_us(clock_ms));
            }
            submit!(req, attempt_cur[rid], t);
        }

        // Hand arrived requests to the admission gate (the legacy direct
        // enqueue when every overload feature is off).
        while let Some(req) = arrivals.next_if(|r| r.arrival_ms <= clock_ms) {
            let rid = req.id as usize;
            let at = req.arrival_ms;
            if on {
                // Fresh arrivals only: client retries re-enter elsewhere,
                // so this series is the *offered* load the metastability
                // detector compares goodput against.
                rec.series(&s_offered, at, 1.0);
            }
            if window_ms > 0.0 {
                let w = (at / window_ms) as usize;
                if windows.len() <= w {
                    windows.resize(w + 1, (0, 0, 0));
                }
                windows[w].0 += 1;
            }
            if clients.is_some() {
                req_info[rid] = Some(req.clone());
            }
            submit!(req, 0, at);
        }

        // Reactive autoscaling: land provisions that have come due, read
        // this period's signals, maybe scale. The prefill station's rate
        // tracks the live prefill pool.
        if let (Some(ac), Some(ast)) = (as_cfg, ascale.as_mut()) {
            ast.apply_due(ac, clock_ms);
            let backlog_ms = match &prefill {
                Prefill::Disaggregated { station_free_ms, .. } => {
                    (station_free_ms - clock_ms).max(0.0)
                }
                Prefill::Unified { backlog, rate } => backlog.iter().map(|(_, t)| t / *rate).sum(),
            };
            let before = ast.stats;
            ast.evaluate(ac, clock_ms, ready.len(), active.len(), backlog_ms);
            if on {
                let after = ast.stats;
                let ts = ms_to_us(clock_ms);
                if after.decode_scale_ups > before.decode_scale_ups {
                    rec.instant(pid_engine, tid_engine, "autoscale", "scale-up decode", ts);
                }
                if after.decode_scale_downs > before.decode_scale_downs {
                    rec.instant(pid_engine, tid_engine, "autoscale", "scale-down decode", ts);
                }
                if after.prefill_scale_ups > before.prefill_scale_ups {
                    rec.instant(pid_engine, tid_engine, "autoscale", "scale-up prefill", ts);
                }
                if after.prefill_scale_downs > before.prefill_scale_downs {
                    rec.instant(pid_engine, tid_engine, "autoscale", "scale-down prefill", ts);
                }
            }
            let pf_mult = ast.prefill_live as f64 / ac.prefill_base as f64;
            match &mut prefill {
                Prefill::Disaggregated { rate, .. } | Prefill::Unified { rate, .. } => {
                    *rate = base_prefill_rate * pf_mult;
                }
            }
        }

        // Degradation ladder: pressure is the predicted TTFT for a new
        // arrival — prefill wait plus ready-queue drain — against the
        // TTFT SLO; transitions carry hysteresis (dwell). The prefill
        // term matters in disaggregated mode, where overload piles up
        // station-side and the ready queue stays deceptively short.
        if let Some(lc) = ladder_cfg {
            let per_slot = if ewma_step_ms > 0.0 {
                ewma_step_ms * cfg.workload.output.mean_tokens / last_cap.max(1) as f64
            } else {
                0.0
            };
            let prefill_wait_ms = match &prefill {
                Prefill::Disaggregated { station_free_ms, .. } => {
                    (station_free_ms - clock_ms).max(0.0)
                }
                Prefill::Unified { backlog, rate } => backlog.iter().map(|(_, t)| t / *rate).sum(),
            };
            let pressure = (prefill_wait_ms + ready.len() as f64 * per_slot) / cfg.slo.ttft_ms;
            if let Some((from, to)) = ladder.update(lc, pressure, clock_ms) {
                ostats.rung_transitions += 1;
                ostats.max_rung = ostats.max_rung.max(to);
                if on {
                    let name = if to > from {
                        format!("rung-degrade {from}->{to}")
                    } else {
                        format!("rung-recover {from}->{to}")
                    };
                    rec.instant(pid_engine, tid_engine, "ladder", &name, ms_to_us(clock_ms));
                }
            }
        }

        // Admit ready jobs FIFO while the batch and the cache have room;
        // crashed replicas shrink the batch cap proportionally, and an
        // active rung may shrink it further.
        let cap_batch = match ladder_cfg.and_then(|lc| ladder.active(lc)) {
            Some(rung) => {
                let capped = (cfg.engine.max_batch as f64 * rung.batch_cap_factor) as usize;
                capped.max(1)
            }
            None => cfg.engine.max_batch,
        };
        let (healthy, pool_size) = match (as_cfg, ascale.as_ref()) {
            (Some(ac), Some(ast)) => {
                let down = (0..ast.decode_live)
                    .filter(|r| fstate.replica_down.contains_key(r) || ast.is_ejected(*r, clock_ms))
                    .count();
                (ast.decode_live - down, ac.decode_base)
            }
            _ => (fstate.healthy_replicas(), fstate.replicas),
        };
        let effective_max_batch = (cap_batch * healthy).div_ceil(pool_size);
        last_cap = effective_max_batch.max(1);
        while active.len() < effective_max_batch {
            let Some(front) = ready.front() else { break };
            if done[front.rid()] {
                // A sibling clone already settled this request: cancel.
                let Some(job) = ready.pop_front() else { break };
                live[job.rid()] -= 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    rec.instant(pid_req, tid, "request", "cancel", ms_to_us(clock_ms));
                }
                continue;
            }
            if clients.is_some() && front.attempt != attempt_cur[front.rid()] {
                // Client timed this attempt out while it queued: cancel on
                // sight rather than let a zombie hold the FIFO head.
                let Some(job) = ready.pop_front() else { break };
                live[job.rid()] -= 1;
                ostats.zombies_cancelled += 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    rec.instant(pid_req, tid, "request", "cancel-zombie", ms_to_us(clock_ms));
                }
                continue;
            }
            if front.ready_ms > clock_ms {
                break;
            }
            if front.resident_tokens + 1 > kv.capacity_tokens() {
                // Could never hold this context even alone: infeasible.
                let Some(job) = ready.pop_front() else { break };
                live[job.rid()] -= 1;
                if live[job.rid()] == 0 {
                    done[job.rid()] = true;
                    dropped += 1;
                }
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    rec.instant(pid_req, tid, "request", "drop-infeasible", ms_to_us(clock_ms));
                }
                continue;
            }
            match kv.admit(front.cache_id(), front.resident_tokens) {
                Ok(()) => {
                    let Some(mut job) = ready.pop_front() else { break };
                    if on {
                        let tid = rec.thread(pid_req, &req_label(&job));
                        if job.prefill_enter_ms.is_finite() {
                            rec.span(
                                pid_req,
                                tid,
                                "request",
                                "prefill",
                                ms_to_us(job.prefill_enter_ms),
                                ms_to_us(job.ready_ms),
                            );
                        }
                        rec.span(
                            pid_req,
                            tid,
                            "request",
                            "queued",
                            ms_to_us(job.ready_ms),
                            ms_to_us(clock_ms),
                        );
                    }
                    job.prefill_enter_ms = f64::NAN;
                    job.admitted_ms = clock_ms;
                    active.push(job);
                }
                Err(CacheError::OutOfMemory { .. }) => break,
                // lint:allow(P1) — admit can only fail Duplicate/Unknown if the ready queue held two jobs with one cache id, which the id allocator forbids; continuing would double-count KV
                Err(e) => unreachable!("admission invariant: {e}"),
            }
        }

        if active.is_empty() {
            // Idle decode pool: jump to the next event.
            let mut next = f64::INFINITY;
            if let Some(r) = arrivals.peek() {
                next = next.min(r.arrival_ms);
            }
            if healthy > 0 {
                // With every replica down, a ready job is not an event:
                // nothing can admit it until a repair (below) lands.
                if let Some(front) = ready.front() {
                    next = next.min(front.ready_ms);
                }
            }
            if let Some(&(t, _, _)) = delayed.first() {
                next = next.min(t);
            }
            if let Some(&(d, _, _, _)) = timeouts.first() {
                next = next.min(d);
            }
            if let Some(&(t, _, _)) = client_delayed.first() {
                next = next.min(t);
            }
            if let Some(ast) = &ascale {
                next = next.min(ast.next_wake_ms());
                // Autoscale wake-ups recur forever; cap idle spins so a
                // permanently dead pool cannot loop the clock endlessly.
                idle_jumps += 1;
                if idle_jumps > 4 * cfg.engine.max_steps + 1_000_000 {
                    break;
                }
            }
            if let Some(t) = driver.next_wake_ms() {
                next = next.min(t);
            }
            if let Prefill::Unified { backlog, rate } = &prefill {
                if let Some((_, remaining)) = backlog.front() {
                    next = next.min(clock_ms + remaining / rate);
                }
            }
            if !next.is_finite() {
                break; // nothing can ever make progress again
            }
            // While decode idles, a unified pool prefills at full rate.
            // The epsilon absorbs float residue so a near-finished head is
            // popped rather than left as an un-drainable sliver that would
            // stall the clock.
            if let Prefill::Unified { backlog, rate } = &mut prefill {
                let mut budget = (next - clock_ms) * *rate;
                let mut t = clock_ms;
                while let Some((_, remaining)) = backlog.front_mut() {
                    if *remaining > budget + 1e-9 {
                        *remaining -= budget;
                        break;
                    }
                    budget = (budget - *remaining).max(0.0);
                    t = (t + *remaining / *rate).min(next);
                    let Some((mut job, _)) = backlog.pop_front() else { break };
                    job.ready_ms = t;
                    ready.push_back(job);
                }
            }
            if ladder.level > 0 {
                ostats.degraded_ms += next - clock_ms;
            }
            clock_ms = next;
            continue;
        }

        // One decode step at the live batch size.
        steps += 1;
        let step_batch = active.len();
        let mut speed = cfg.engine.speed;
        speed.tokens_per_device = step_batch;
        if let (Some(ac), Some(ast)) = (as_cfg, ascale.as_ref()) {
            // A scaled pool spreads the batch across more (or fewer)
            // replicas than the speed model's baseline assumes.
            speed.tokens_per_device =
                (step_batch * ac.decode_base).div_ceil(ast.decode_live.max(1)).max(1);
        }
        if !fstate.plane_down.is_empty() {
            // Flapped planes shrink scale-out bandwidth; the step runs at
            // the degraded speed limit (§5.1.1 retention).
            let retention = bandwidth_retention(fstate.planes, fstate.plane_down.len());
            speed.bandwidth_bytes_per_s *= retention;
            fstate.stats.degraded_steps += 1;
            fstate.stats.min_bandwidth_retention =
                fstate.stats.min_bandwidth_retention.min(retention);
        }
        // The first ladder rung turns MTP off: no speculative draft chain,
        // no per-step draft overhead.
        let mtp_off = ladder_cfg.and_then(|lc| ladder.active(lc)).is_some_and(|r| r.disable_mtp);
        let mut dt = speed.evaluate().tpot_ms * decode_slowdown;
        if let Some(mtp) = cfg.engine.mtp.as_ref().filter(|_| !mtp_off) {
            dt *= 1.0 + mtp.step_overhead;
        }
        let straggle = fstate.slowdown();
        if straggle > 1.0 {
            dt *= straggle;
            fstate.stats.straggler_steps += 1;
        }
        for detected in std::mem::take(&mut fstate.pending_sdc) {
            if detected {
                // Checksum audit caught it: redo the step (§6.1).
                fstate.stats.sdc_recompute_ms += dt;
                dt += dt;
            } else if let Some(last) = active.last() {
                // Silent: the youngest request's output is now wrong.
                corrupted[last.rid()] = true;
            }
        }
        if let Prefill::Unified { backlog, rate } = &mut prefill {
            // Calibrated to disagg::unified_tpot: half the outstanding
            // prefill backlog competes with this decode step.
            let backlog_ms: f64 = backlog.iter().map(|(_, t)| t / *rate).sum();
            let stolen_ms = 0.5 * backlog_ms;
            dt += stolen_ms;
            let mut budget = stolen_ms * *rate;
            let done_at = clock_ms + dt;
            while let Some((_, remaining)) = backlog.front_mut() {
                if *remaining > budget + 1e-9 {
                    *remaining -= budget;
                    break;
                }
                budget = (budget - *remaining).max(0.0);
                let Some((mut job, _)) = backlog.pop_front() else { break };
                job.ready_ms = done_at;
                ready.push_back(job);
            }
        }
        ewma_step_ms = if ewma_step_ms > 0.0 { 0.9 * ewma_step_ms + 0.1 * dt } else { dt };
        if ladder.level > 0 {
            ostats.degraded_ms += dt;
        }
        clock_ms += dt;

        // Drain tokens into each active request, oldest first.
        let mut idx = 0;
        while idx < active.len() {
            if done[active[idx].rid()] {
                // A sibling clone finished first: cancel this one.
                let job = active.remove(idx);
                let _ = kv.release(job.cache_id());
                live[job.rid()] -= 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    if job.admitted_ms.is_finite() {
                        rec.span(
                            pid_req,
                            tid,
                            "request",
                            "decode",
                            ms_to_us(job.admitted_ms),
                            ms_to_us(clock_ms),
                        );
                    }
                    rec.instant(pid_req, tid, "request", "cancel", ms_to_us(clock_ms));
                }
                continue;
            }
            if clients.is_some() && active[idx].attempt != attempt_cur[active[idx].rid()] {
                // Client timed this attempt out mid-decode: cancel before
                // it emits another token.
                let job = active.remove(idx);
                let _ = kv.release(job.cache_id());
                live[job.rid()] -= 1;
                ostats.zombies_cancelled += 1;
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    if job.admitted_ms.is_finite() {
                        rec.span(
                            pid_req,
                            tid,
                            "request",
                            "decode",
                            ms_to_us(job.admitted_ms),
                            ms_to_us(clock_ms),
                        );
                    }
                    rec.instant(pid_req, tid, "request", "cancel-zombie", ms_to_us(clock_ms));
                }
                continue;
            }
            let want = match cfg.engine.mtp.as_ref().filter(|_| !mtp_off) {
                None => 1,
                Some(mtp) => {
                    // The verified token always lands; the draft chain
                    // breaks at the first rejection (§2.3.3).
                    let mut k = 1;
                    for _ in 0..mtp.modules {
                        if rng.gen_bool(mtp.acceptance) {
                            k += 1;
                        } else {
                            break;
                        }
                    }
                    k
                }
            };
            let id = active[idx].cache_id();
            let need = (active[idx].req.output_tokens - active[idx].generated).min(want);
            let mut emitted = 0;
            let mut dropped_self = false;
            while emitted < need {
                match kv.append_token(id) {
                    Ok(()) => emitted += 1,
                    Err(CacheError::OutOfMemory { .. }) => {
                        if active.len() - 1 > idx {
                            // Preempt the youngest request back to the
                            // queue head; it re-admits with its full
                            // accumulated context.
                            let Some(mut victim) = active.pop() else { break };
                            // lint:allow(P1) — the victim came out of `active`, so it was admitted; ignoring a release failure would leak its KV bytes forever
                            let held = kv.release(victim.cache_id()).expect("victim was admitted");
                            victim.resident_tokens = held;
                            victim.ready_ms = clock_ms;
                            if on {
                                let tid = rec.thread(pid_req, &req_label(&victim));
                                if victim.admitted_ms.is_finite() {
                                    rec.span(
                                        pid_req,
                                        tid,
                                        "request",
                                        "decode",
                                        ms_to_us(victim.admitted_ms),
                                        ms_to_us(clock_ms),
                                    );
                                }
                                rec.instant(pid_req, tid, "request", "preempt", ms_to_us(clock_ms));
                            }
                            victim.admitted_ms = f64::NAN;
                            ready.push_front(victim);
                            preemptions += 1;
                        } else if active.len() == 1 {
                            // Alone and still out of memory: this context
                            // can never finish. Drop it.
                            let job = active.remove(idx);
                            let _ = kv.release(job.cache_id());
                            live[job.rid()] -= 1;
                            if live[job.rid()] == 0 {
                                done[job.rid()] = true;
                                dropped += 1;
                            }
                            if on {
                                let tid = rec.thread(pid_req, &req_label(&job));
                                if job.admitted_ms.is_finite() {
                                    rec.span(
                                        pid_req,
                                        tid,
                                        "request",
                                        "decode",
                                        ms_to_us(job.admitted_ms),
                                        ms_to_us(clock_ms),
                                    );
                                }
                                rec.instant(
                                    pid_req,
                                    tid,
                                    "request",
                                    "drop-oom",
                                    ms_to_us(clock_ms),
                                );
                            }
                            dropped_self = true;
                            break;
                        } else {
                            // This request IS the youngest: stall it this
                            // step; an older request will preempt it on
                            // the next pass if pressure persists.
                            break;
                        }
                    }
                    // lint:allow(P1) — append on an active id can only fail with OutOfMemory (handled above); UnknownRequest here means the admission bookkeeping is already corrupt
                    Err(e) => unreachable!("append invariant: {e}"),
                }
            }
            if dropped_self {
                continue; // active[idx] is now the next job
            }
            if emitted > 0 {
                tokens_emitted += emitted as u64;
                active[idx].generated += emitted;
                if clients.is_some() {
                    // A streaming attempt is safe from its client timeout.
                    served_first_token[active[idx].rid()] = true;
                }
                if active[idx].first_token_ms.is_none() {
                    active[idx].first_token_ms = Some(clock_ms);
                    if !ttft_recorded[active[idx].rid()] {
                        ttft_recorded[active[idx].rid()] = true;
                        ttft_samples.push(clock_ms - active[idx].req.arrival_ms);
                    }
                }
            }
            if active[idx].generated >= active[idx].req.output_tokens {
                let job = active.remove(idx);
                let _ = kv.release(job.cache_id());
                live[job.rid()] -= 1;
                done[job.rid()] = true;
                if job.clone_tag == 1 {
                    fstate.stats.hedge_wins += 1;
                }
                let is_corrupt = corrupted[job.rid()];
                if is_corrupt {
                    fstate.stats.corrupted_completions += 1;
                }
                // lint:allow(P1) — generated >= output_tokens >= 1, and the emit loop sets first_token_ms on the first token; a fallback value would fabricate a TTFT sample
                let first = job.first_token_ms.expect("completed implies first token");
                let ttft = first - job.req.arrival_ms;
                let e2e = clock_ms - job.req.arrival_ms;
                let tpot = if job.req.output_tokens > 1 {
                    let tpot = (clock_ms - first) / (job.req.output_tokens - 1) as f64;
                    tpot_samples.push(tpot);
                    tpot
                } else {
                    0.0
                };
                e2e_samples.push(e2e);
                let is_good = ttft <= cfg.slo.ttft_ms && tpot <= cfg.slo.tpot_ms && !is_corrupt;
                if is_good {
                    good += 1;
                }
                completed += 1;
                if window_ms > 0.0 {
                    let w = (clock_ms / window_ms) as usize;
                    if windows.len() <= w {
                        windows.resize(w + 1, (0, 0, 0));
                    }
                    windows[w].1 += 1;
                    if is_good {
                        windows[w].2 += 1;
                    }
                }
                if on {
                    let tid = rec.thread(pid_req, &req_label(&job));
                    if job.admitted_ms.is_finite() {
                        rec.span(
                            pid_req,
                            tid,
                            "request",
                            "decode",
                            ms_to_us(job.admitted_ms),
                            ms_to_us(clock_ms),
                        );
                    }
                    rec.instant(pid_req, tid, "request", "complete", ms_to_us(clock_ms));
                    rec.observe(&m_ttft, ttft);
                    if job.req.output_tokens > 1 {
                        rec.observe(&m_tpot, tpot);
                    }
                    rec.observe(&m_e2e, e2e);
                    let ok = |pass: bool| if pass { 1.0 } else { 0.0 };
                    rec.series(&s_ttft_ok, clock_ms, ok(ttft <= cfg.slo.ttft_ms));
                    if job.req.output_tokens > 1 {
                        rec.series(&s_tpot_ok, clock_ms, ok(tpot <= cfg.slo.tpot_ms));
                    }
                    rec.series(&s_good, clock_ms, ok(is_good));
                }
            } else {
                idx += 1;
            }
        }

        qdepth_samples.push(ready.len() as f64);
        kvutil_samples.push(kv.utilization());
        if on {
            let ts = ms_to_us(clock_ms);
            rec.counter_sample(pid_engine, &m_batch, ts, step_batch as f64);
            rec.counter_sample(pid_engine, &m_queue, ts, ready.len() as f64);
            rec.counter_sample(pid_engine, &m_kv, ts, kv.utilization());
            rec.series(&m_batch, clock_ms, step_batch as f64);
            rec.series(&m_queue, clock_ms, ready.len() as f64);
            rec.series(&m_kv, clock_ms, kv.utilization());
            if ov_any {
                rec.counter_sample(pid_engine, &m_rung, ts, ladder.level as f64);
                rec.series(&m_rung, clock_ms, ladder.level as f64);
                if let Some(ast) = &ascale {
                    rec.counter_sample(pid_engine, &m_decode_live, ts, ast.decode_live as f64);
                    rec.counter_sample(pid_engine, &m_prefill_live, ts, ast.prefill_live as f64);
                    rec.series(&m_decode_live, clock_ms, ast.decode_live as f64);
                    rec.series(&m_prefill_live, clock_ms, ast.prefill_live as f64);
                }
            }
            // Per-replica active-load series for the straggler detector,
            // using the same index→replica mapping as crash handling.
            let rmap = ascale.as_ref().map_or(fstate.replicas, |s| s.decode_live.max(1));
            while s_replica.len() < rmap {
                s_replica.push(format!("{scope}.replica{}.active", s_replica.len()));
            }
            replica_counts.clear();
            replica_counts.resize(rmap, 0);
            for i in 0..active.len() {
                replica_counts[i % rmap] += 1;
            }
            for (name, &c) in s_replica.iter().zip(&replica_counts) {
                rec.series(name, clock_ms, f64::from(c));
            }
        }
    }

    let mut stats = fstate.stats;
    stats.unfinished = total_requests - completed - dropped - stats.rejected - ostats.rejected;
    let sim_s = ms_to_s(clock_ms).max(f64::MIN_POSITIVE);
    let serving = ServingReport {
        requests: total_requests,
        completed,
        dropped,
        preemptions,
        decode_steps: steps,
        sim_duration_ms: clock_ms,
        ttft_ms: Summary::of(&mut ttft_samples),
        tpot_ms: Summary::of(&mut tpot_samples),
        e2e_ms: Summary::of(&mut e2e_samples),
        queue_depth: Summary::of(&mut qdepth_samples),
        kv_utilization: Summary::of(&mut kvutil_samples),
        throughput_tokens_per_s: tokens_emitted as f64 / sim_s,
        goodput_rps: good as f64 / sim_s,
        slo_attainment: good as f64 / total_requests.max(1) as f64,
    };
    if on {
        rec.counter_add(&format!("{scope}.requests"), total_requests as u64);
        rec.counter_add(&format!("{scope}.completed"), completed as u64);
        rec.counter_add(&format!("{scope}.dropped"), dropped as u64);
        rec.counter_add(&format!("{scope}.preemptions"), preemptions as u64);
        rec.counter_add(&format!("{scope}.decode_steps"), steps as u64);
        rec.counter_add(&format!("{scope}.tokens"), tokens_emitted);
        rec.counter_add(&format!("{scope}.retries"), stats.retries as u64);
        rec.counter_add(&format!("{scope}.rejected"), stats.rejected as u64);
        rec.counter_add(&format!("{scope}.hedge_wins"), stats.hedge_wins as u64);
        rec.gauge_set(&format!("{scope}.slo_attainment"), serving.slo_attainment);
        rec.gauge_set(&format!("{scope}.throughput_tokens_per_s"), serving.throughput_tokens_per_s);
        rec.gauge_set(&format!("{scope}.sim_duration_ms"), serving.sim_duration_ms);
    }
    let autoscale_stats = match ascale {
        Some(mut ast) => {
            ast.stats.decode_final = ast.decode_live;
            ast.stats.prefill_final = ast.prefill_live;
            ast.stats
        }
        None => AutoscaleStats::default(),
    };
    let timeline: Vec<GoodputWindow> = windows
        .iter()
        .enumerate()
        .map(|(i, &(off, comp, g))| GoodputWindow {
            start_ms: i as f64 * window_ms,
            offered: off,
            completed: comp,
            good: g,
            goodput_rps: g as f64 / ms_to_s(window_ms),
        })
        .collect();
    if on && ov_any {
        let shed = ostats.shed_queue_full
            + ostats.shed_rate_limited
            + ostats.shed_deadline
            + ostats.shed_priority
            + ostats.shed_context;
        rec.counter_add(&format!("{scope}.ov_offered_attempts"), ostats.offered_attempts as u64);
        rec.counter_add(&format!("{scope}.ov_shed"), shed as u64);
        rec.counter_add(&format!("{scope}.ov_client_timeouts"), ostats.client_timeouts as u64);
        rec.counter_add(&format!("{scope}.ov_client_retries"), ostats.client_retries as u64);
        rec.counter_add(&format!("{scope}.ov_zombies_cancelled"), ostats.zombies_cancelled as u64);
        rec.counter_add(&format!("{scope}.ov_rejected"), ostats.rejected as u64);
        rec.counter_add(&format!("{scope}.ov_rung_transitions"), ostats.rung_transitions as u64);
        rec.counter_add(
            &format!("{scope}.ov_breaker_ejections"),
            autoscale_stats.breaker_ejections as u64,
        );
    }
    OverloadServingReport {
        serving,
        faults: stats,
        overload: ostats,
        autoscale: autoscale_stats,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::AutoscaleConfig;
    use crate::overload::{AdmissionConfig, ClientConfig, LadderConfig};

    fn poisson_cfg(rate: f64, requests: usize, router: RouterPolicy) -> ServingSimConfig {
        ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            requests,
            router,
        )
    }

    fn crash(at_ms: f64, replica: usize, repair_ms: f64) -> dsv3_faults::FaultEvent {
        dsv3_faults::FaultEvent {
            at_ms,
            kind: dsv3_faults::FaultKind::ReplicaCrash { replica, repair_ms },
        }
    }

    #[test]
    fn completes_all_requests_below_saturation() {
        let report = run(&poisson_cfg(6.0, 400, RouterPolicy::Unified));
        assert_eq!(report.completed, 400);
        assert_eq!(report.dropped, 0);
        assert!(report.slo_attainment > 0.9, "attainment {}", report.slo_attainment);
        assert!(report.tpot_ms.p50 > 0.0);
        assert!(report.ttft_ms.p50 > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = poisson_cfg(10.0, 300, RouterPolicy::Unified);
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn overload_degrades_tail_latency() {
        let calm = run(&poisson_cfg(4.0, 400, RouterPolicy::Unified));
        let slammed = run(&poisson_cfg(40.0, 400, RouterPolicy::Unified));
        assert!(
            slammed.tpot_ms.p99 > 1.5 * calm.tpot_ms.p99,
            "overload p99 {} vs calm {}",
            slammed.tpot_ms.p99,
            calm.tpot_ms.p99
        );
        assert!(slammed.e2e_ms.p99 > calm.e2e_ms.p99);
        assert!(slammed.slo_attainment < calm.slo_attainment);
    }

    #[test]
    fn kv_pressure_forces_preemption_or_queueing() {
        let mut cfg = poisson_cfg(30.0, 300, RouterPolicy::Unified);
        // Starve the cache: ~5.7k tokens ≈ a handful of requests.
        cfg.engine.kv_capacity_bytes = 400_000_000;
        let report = run(&cfg);
        assert!(report.kv_utilization.max > 0.8, "util {:?}", report.kv_utilization);
        assert!(
            report.preemptions > 0 || report.queue_depth.max > 0.0,
            "cache pressure must surface somewhere"
        );
        assert_eq!(report.completed + report.dropped, 300);
    }

    #[test]
    fn infeasible_requests_are_dropped_not_wedged() {
        let mut cfg = poisson_cfg(10.0, 50, RouterPolicy::Unified);
        cfg.engine.kv_capacity_bytes = 80_000_000; // ~1.1k tokens
        cfg.workload.prompt = LengthDistribution::fixed(2048); // never fits
        let report = run(&cfg);
        assert_eq!(report.dropped, 50);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn mtp_raises_throughput() {
        // Past the saturation knee the engine is service-limited, so the
        // ~1.8x token rate of one MTP module shows up in throughput.
        let base = poisson_cfg(40.0, 400, RouterPolicy::Unified);
        let mut with_mtp = base.clone();
        with_mtp.engine.mtp = Some(MtpSpec { modules: 1, acceptance: 0.85, step_overhead: 0.02 });
        let plain = run(&base);
        let spec = run(&with_mtp);
        assert!(
            spec.throughput_tokens_per_s > 1.3 * plain.throughput_tokens_per_s,
            "mtp {} vs plain {}",
            spec.throughput_tokens_per_s,
            plain.throughput_tokens_per_s
        );
    }

    #[test]
    fn step_cap_terminates_overload() {
        let mut cfg = poisson_cfg(500.0, 2000, RouterPolicy::Unified);
        cfg.engine.max_steps = 200;
        let report = run(&cfg);
        assert!(report.decode_steps <= 200);
        assert!(report.completed < 2000);
    }

    #[test]
    fn empty_plan_is_byte_identical_to_healthy_run() {
        for router in
            [RouterPolicy::Unified, RouterPolicy::Disaggregated { prefill_fraction: 0.25 }]
        {
            let mut cfg = poisson_cfg(12.0, 300, router);
            cfg.engine.mtp = Some(MtpSpec { modules: 1, acceptance: 0.8, step_overhead: 0.03 });
            let healthy = run(&cfg);
            let faulty = run_with_faults(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::hedged());
            assert_eq!(
                serde_json::to_string(&healthy).unwrap(),
                serde_json::to_string(&faulty.serving).unwrap(),
                "empty plan must be a byte-for-byte no-op"
            );
            assert_eq!(faulty.faults.crash_events, 0);
            assert_eq!(faulty.faults.hedges_spawned, 0);
        }
    }

    #[test]
    fn crashes_requeue_and_still_complete_everything() {
        let cfg = poisson_cfg(8.0, 200, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 4,
            planes: 8,
            links: 0,
            events: vec![crash(2_000.0, 1, 3_000.0), crash(9_000.0, 2, 3_000.0)],
        };
        let r = run_with_faults(&cfg, &plan, &RecoveryPolicy::default());
        assert_eq!(r.faults.crash_events, 2);
        assert!(r.faults.jobs_lost_to_crashes > 0, "crashes must hit in-flight work");
        assert_eq!(r.faults.retries, r.faults.jobs_lost_to_crashes);
        assert_eq!(r.faults.rejected, 0);
        assert_eq!(r.faults.unfinished, 0);
        assert_eq!(r.serving.completed + r.serving.dropped, 200, "no request lost");
        let healthy = run(&cfg);
        assert!(
            r.serving.e2e_ms.max >= healthy.e2e_ms.max,
            "re-prefill after a crash cannot shorten the tail"
        );
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let cfg = poisson_cfg(10.0, 250, RouterPolicy::Unified);
        let plan = FaultPlan::generate(&dsv3_faults::FaultPlanConfig {
            seed: 11,
            horizon_ms: 30_000.0,
            crash_mtbf_ms: 8_000.0,
            flap_mtbf_ms: 10_000.0,
            straggler_mtbf_ms: 12_000.0,
            sdc_mtbf_ms: 15_000.0,
            ..dsv3_faults::FaultPlanConfig::default()
        });
        let a = run_with_faults(&cfg, &plan, &RecoveryPolicy::hedged());
        let b = run_with_faults(&cfg, &plan, &RecoveryPolicy::hedged());
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn exhausted_retry_budget_rejects() {
        let cfg = poisson_cfg(8.0, 60, RouterPolicy::Unified);
        // One replica, hammered: every active job dies on each crash.
        let events = (1..=40).map(|i| crash(500.0 * i as f64, 0, 100.0)).collect();
        let plan = FaultPlan { replicas: 1, planes: 8, links: 0, events };
        let policy = RecoveryPolicy { max_retries: 1, ..RecoveryPolicy::default() };
        let r = run_with_faults(&cfg, &plan, &policy);
        assert!(r.faults.rejected > 0, "retry budget must bite: {:?}", r.faults);
        assert_eq!(
            r.serving.completed + r.serving.dropped + r.faults.rejected + r.faults.unfinished,
            60,
            "conservation"
        );
    }

    #[test]
    fn hedging_spawns_clones_and_can_win() {
        let cfg = poisson_cfg(8.0, 150, RouterPolicy::Unified);
        let events = (1..=10).map(|i| crash(1_500.0 * i as f64, 0, 2_000.0)).collect();
        let plan = FaultPlan { replicas: 2, planes: 8, links: 0, events };
        let r = run_with_faults(&cfg, &plan, &RecoveryPolicy::hedged());
        assert!(r.faults.hedges_spawned > 0);
        assert!(r.faults.hedge_wins <= r.faults.hedges_spawned);
        assert_eq!(r.faults.unfinished, 0);
        assert_eq!(r.serving.completed + r.serving.dropped + r.faults.rejected, 150);
    }

    #[test]
    fn plane_flaps_slow_decode_steps() {
        let cfg = poisson_cfg(10.0, 200, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 1,
            planes: 8,
            links: 0,
            events: vec![
                FaultEvent {
                    at_ms: 1_000.0,
                    kind: FaultKind::PlaneFlap { plane: 2, repair_ms: 15_000.0 },
                },
                FaultEvent {
                    at_ms: 3_000.0,
                    kind: FaultKind::PlaneFlap { plane: 5, repair_ms: 15_000.0 },
                },
            ],
        };
        let r = run_with_faults(&cfg, &plan, &RecoveryPolicy::default());
        assert_eq!(r.faults.plane_flap_events, 2);
        assert!(r.faults.degraded_steps > 0);
        assert!((r.faults.min_bandwidth_retention - 6.0 / 8.0).abs() < 1e-12);
        let healthy = run(&cfg);
        assert!(
            r.serving.sim_duration_ms > healthy.sim_duration_ms,
            "degraded bandwidth must stretch the run: {} vs {}",
            r.serving.sim_duration_ms,
            healthy.sim_duration_ms
        );
    }

    #[test]
    fn stragglers_and_sdc_are_accounted() {
        let cfg = poisson_cfg(10.0, 150, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 1,
            planes: 8,
            links: 0,
            events: vec![
                FaultEvent {
                    at_ms: 1_000.0,
                    kind: FaultKind::Straggler { slowdown: 2.0, duration_ms: 5_000.0 },
                },
                FaultEvent { at_ms: 2_000.0, kind: FaultKind::Sdc { detected: true } },
                FaultEvent { at_ms: 2_500.0, kind: FaultKind::Sdc { detected: false } },
            ],
        };
        let r = run_with_faults(&cfg, &plan, &RecoveryPolicy::default());
        assert_eq!(r.faults.straggler_events, 1);
        assert!(r.faults.straggler_steps > 0);
        assert_eq!(r.faults.sdc_events, 2);
        assert_eq!(r.faults.sdc_detected, 1);
        assert!(r.faults.sdc_recompute_ms > 0.0);
        assert_eq!(r.faults.corrupted_completions, 1, "the silent strike corrupts one output");
        assert_eq!(r.serving.completed + r.serving.dropped, 150);
    }

    #[test]
    fn traced_run_report_is_identical_to_plain_run() {
        let cfg = poisson_cfg(10.0, 200, RouterPolicy::Unified);
        let plain = run(&cfg);
        let mut rec = Recorder::new();
        let traced = run_traced(&cfg, &mut rec, "serving");
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&traced).unwrap(),
            "telemetry must never perturb the simulation"
        );
        assert!(!rec.events().is_empty());
        assert_eq!(rec.counters()["serving.completed"], traced.completed as u64);
        assert_eq!(rec.histogram("serving.ttft_ms").unwrap().count(), traced.completed as u64);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let cfg = poisson_cfg(10.0, 200, RouterPolicy::Disaggregated { prefill_fraction: 0.5 });
        let mut rec = Recorder::disabled();
        let traced = run_traced(&cfg, &mut rec, "serving");
        assert_eq!(
            serde_json::to_string(&run(&cfg)).unwrap(),
            serde_json::to_string(&traced).unwrap()
        );
        assert!(rec.events().is_empty());
        assert!(rec.counters().is_empty());
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let cfg = poisson_cfg(10.0, 150, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 2,
            planes: 8,
            links: 0,
            events: vec![crash(2_000.0, 0, 3_000.0)],
        };
        let trace = |()| {
            let mut rec = Recorder::new();
            let _ = run_with_faults_traced(&cfg, &plan, &RecoveryPolicy::hedged(), &mut rec, "s");
            rec.export_trace().to_json()
        };
        assert_eq!(trace(()), trace(()), "same seed, byte-identical trace");
    }

    #[test]
    fn trace_contains_lifecycle_spans_and_fault_instants() {
        let cfg = poisson_cfg(10.0, 150, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 2,
            planes: 8,
            links: 0,
            events: vec![crash(2_000.0, 0, 3_000.0)],
        };
        let mut rec = Recorder::new();
        let r = run_with_faults_traced(&cfg, &plan, &RecoveryPolicy::default(), &mut rec, "s");
        assert!(r.faults.jobs_lost_to_crashes > 0, "crash must land mid-flight");
        let events = rec.events();
        let spans = |name: &str| events.iter().filter(|e| e.ph == "X" && e.name == name).count();
        assert!(spans("prefill") > 0);
        assert!(spans("queued") > 0);
        assert!(spans("decode") >= r.serving.completed, "every completion closes a decode span");
        let instants = |name: &str| events.iter().filter(|e| e.ph == "i" && e.name == name).count();
        assert_eq!(instants("complete"), r.serving.completed);
        assert!(
            events.iter().any(|e| e.ph == "i" && e.name.starts_with("inject replica-crash")),
            "fault injection must appear in the serving trace"
        );
        assert!(events.iter().any(|e| e.ph == "C" && e.name == "s.batch_size"));
        // Spans never have negative extent and all timestamps are finite.
        assert!(events.iter().all(|e| e.ts.is_finite() && e.dur >= 0.0));
    }

    #[test]
    fn unrepaired_total_outage_terminates_with_unfinished() {
        let cfg = poisson_cfg(10.0, 80, RouterPolicy::Unified);
        let plan = FaultPlan {
            replicas: 1,
            planes: 8,
            links: 0,
            events: vec![crash(1_000.0, 0, f64::INFINITY)],
        };
        let policy = RecoveryPolicy { max_retries: 100, ..RecoveryPolicy::default() };
        let r = run_with_faults(&cfg, &plan, &policy);
        assert!(r.faults.unfinished > 0, "outage strands the tail: {:?}", r.faults);
        assert_eq!(
            r.serving.completed + r.serving.dropped + r.faults.rejected + r.faults.unfinished,
            80
        );
    }

    // ----- overload layer -----

    fn conservation(r: &crate::OverloadServingReport, requests: usize) {
        assert_eq!(
            r.serving.completed
                + r.serving.dropped
                + r.faults.rejected
                + r.overload.rejected
                + r.faults.unfinished,
            requests,
            "conservation: {:?} / {:?}",
            r.faults,
            r.overload
        );
    }

    #[test]
    fn disabled_overload_is_byte_identical_to_run_with_faults() {
        let plan = FaultPlan {
            replicas: 4,
            planes: 8,
            links: 0,
            events: vec![crash(400.0, 1, 600.0), crash(900.0, 2, 500.0)],
        };
        let policy = RecoveryPolicy::default();
        let ov = OverloadConfig::disabled();
        assert!(ov.is_disabled());
        for router in
            [RouterPolicy::Unified, RouterPolicy::Disaggregated { prefill_fraction: 0.25 }]
        {
            let cfg = poisson_cfg(20.0, 250, router);
            let base = run_with_faults(&cfg, &plan, &policy);
            let o = run_overload(&cfg, &plan, &policy, &ov);
            assert_eq!(o.serving, base.serving, "serving must match byte-for-byte");
            assert_eq!(o.faults, base.faults, "fault stats must match byte-for-byte");
            assert_eq!(o.overload, OverloadStats::default());
            assert!(o.timeline.is_empty());
        }
    }

    #[test]
    fn admission_queue_cap_sheds_and_conserves_requests() {
        let cfg = poisson_cfg(60.0, 300, RouterPolicy::Unified);
        let ov = OverloadConfig {
            admission: Some(AdmissionConfig {
                queue_cap: 8,
                deadline_headroom: 0.0,
                rate_limit: None,
            }),
            ..OverloadConfig::disabled()
        };
        let r = run_overload(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::default(), &ov);
        assert!(r.overload.shed_queue_full > 0, "40x overload must overflow an 8-deep queue");
        assert!(r.overload.rejected > 0, "no clients: a shed attempt is a terminal reject");
        assert_eq!(
            r.overload.offered_attempts,
            r.overload.admitted_attempts
                + r.overload.shed_queue_full
                + r.overload.shed_rate_limited
                + r.overload.shed_deadline
                + r.overload.shed_priority
                + r.overload.shed_context
        );
        conservation(&r, 300);
    }

    #[test]
    fn closed_loop_clients_retry_after_shed_and_finish_the_offered_work() {
        let cfg = poisson_cfg(12.0, 200, RouterPolicy::Unified);
        let ov = OverloadConfig {
            admission: Some(AdmissionConfig {
                queue_cap: 16,
                deadline_headroom: 0.0,
                rate_limit: None,
            }),
            clients: Some(ClientConfig {
                timeout_ms: 60_000.0,
                retry_budget: 8,
                ..ClientConfig::default()
            }),
            ..OverloadConfig::disabled()
        };
        let r = run_overload(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::default(), &ov);
        conservation(&r, 200);
        assert_eq!(r.serving.completed, 200, "modest load with retries completes everything");
        assert!(
            r.overload.client_retries > 0 || r.overload.shed_queue_full == 0,
            "any shed must have produced a retry: {:?}",
            r.overload
        );
    }

    #[test]
    fn client_timeouts_cancel_zombies_and_conserve() {
        // Saturating load with impatient clients: attempts time out on the
        // queue, their zombies are collected, and every request still
        // settles exactly once.
        let cfg = poisson_cfg(50.0, 250, RouterPolicy::Unified);
        let ov = OverloadConfig {
            clients: Some(ClientConfig {
                timeout_ms: 1_500.0,
                retry_budget: 2,
                ..ClientConfig::default()
            }),
            ..OverloadConfig::disabled()
        };
        let r = run_overload(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::default(), &ov);
        conservation(&r, 250);
        assert!(r.overload.client_timeouts > 0, "saturation must trip client timeouts");
        assert!(r.overload.zombies_cancelled > 0, "timed-out attempts must be collected");
        assert!(r.overload.rejected > 0, "a 2-retry budget must exhaust under saturation");
    }

    #[test]
    fn ladder_degrades_under_pressure_and_recovers_when_it_drains() {
        let cfg = poisson_cfg(80.0, 400, RouterPolicy::Unified);
        let ov = OverloadConfig {
            ladder: Some(LadderConfig { dwell_ms: 200.0, ..LadderConfig::default() }),
            ..OverloadConfig::disabled()
        };
        let r = run_overload(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::default(), &ov);
        conservation(&r, 400);
        assert!(r.overload.rung_transitions >= 2, "must degrade and later recover");
        assert!(r.overload.max_rung >= 1);
        assert!(r.overload.degraded_ms > 0.0);
        assert_eq!(
            r.overload.rung_transitions % 2,
            0,
            "a finite run that drains ends back at healthy"
        );
    }

    #[test]
    fn autoscale_grows_the_decode_pool_under_sustained_load() {
        let plan = FaultPlan { replicas: 4, planes: 8, links: 0, events: Vec::new() };
        let cfg = poisson_cfg(40.0, 500, RouterPolicy::Unified);
        let ov = OverloadConfig {
            autoscale: Some(AutoscaleConfig {
                provision_lag_ms: 2_000.0,
                cooldown_ms: 1_000.0,
                ..AutoscaleConfig::reactive(4, 2)
            }),
            ..OverloadConfig::disabled()
        };
        let r = run_overload(&cfg, &plan, &RecoveryPolicy::default(), &ov);
        conservation(&r, 500);
        assert!(r.autoscale.decode_scale_ups > 0, "sustained overload must order replicas");
        assert!(r.autoscale.decode_peak > 4, "ordered replicas must land: {:?}", r.autoscale);
        let baseline = run_with_faults(&cfg, &plan, &RecoveryPolicy::default());
        assert!(
            r.serving.sim_duration_ms < baseline.serving.sim_duration_ms,
            "extra capacity must drain the same work sooner: {} vs {}",
            r.serving.sim_duration_ms,
            baseline.serving.sim_duration_ms
        );
    }

    #[test]
    fn autoscale_base_must_match_the_fault_plan() {
        let cfg = poisson_cfg(10.0, 50, RouterPolicy::Unified);
        let ov = OverloadConfig {
            autoscale: Some(AutoscaleConfig::reactive(4, 2)),
            ..OverloadConfig::disabled()
        };
        let err = std::panic::catch_unwind(|| {
            run_overload(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::default(), &ov)
        });
        assert!(err.is_err(), "healthy() has 1 replica, decode_base is 4: must panic");
    }

    #[test]
    fn goodput_timeline_buckets_cover_the_run_and_count_every_arrival() {
        let cfg = poisson_cfg(30.0, 300, RouterPolicy::Unified);
        let ov = OverloadConfig { timeline_window_ms: 1_000.0, ..OverloadConfig::disabled() };
        let r = run_overload(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::default(), &ov);
        assert!(!r.timeline.is_empty());
        assert_eq!(r.timeline.iter().map(|w| w.offered).sum::<usize>(), 300);
        assert_eq!(
            r.timeline.iter().map(|w| w.completed).sum::<usize>(),
            r.serving.completed,
            "every completion lands in exactly one window"
        );
        for (i, w) in r.timeline.iter().enumerate() {
            assert!(w.good <= w.completed);
            assert!((w.start_ms - i as f64 * 1_000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn overload_runs_are_deterministic_per_seed() {
        let cfg = poisson_cfg(45.0, 250, RouterPolicy::Disaggregated { prefill_fraction: 0.25 });
        let plan =
            FaultPlan { replicas: 4, planes: 8, links: 0, events: vec![crash(500.0, 0, 800.0)] };
        let ov = OverloadConfig {
            admission: Some(AdmissionConfig::default()),
            ladder: Some(LadderConfig::default()),
            clients: Some(ClientConfig::default()),
            autoscale: Some(AutoscaleConfig::reactive(4, 2)),
            priority_classes: 4,
            timeline_window_ms: 2_000.0,
        };
        let a = run_overload(&cfg, &plan, &RecoveryPolicy::default(), &ov);
        let b = run_overload(&cfg, &plan, &RecoveryPolicy::default(), &ov);
        assert_eq!(a, b, "the full overload stack must stay deterministic");
        conservation(&a, 250);
    }
}
