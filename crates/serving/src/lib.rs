//! Request-level serving simulator for the DeepSeek-V3 system model.
//!
//! Where `dsv3-inference` answers *per-step* questions analytically (EP
//! speed limits, KV footprints, prefill/decode pool trade-offs), this
//! crate runs whole *requests* through a continuous-batching decode
//! engine and measures what an operator would: TTFT, TPOT, end-to-end
//! latency percentiles, goodput under an SLO, queue depths, and KV-cache
//! utilization.
//!
//! Pipeline: [`workload`] generates seeded request streams (Poisson,
//! bursty, trace replay) → [`router`] places prefill (unified pool vs
//! disaggregated, §2.3.1) → [`engine`] decodes with batch-size-dependent
//! step times (§2.3.2), KV-cache admission/preemption, and optional MTP
//! speculative decoding (§2.3.3) → [`metrics`] summarizes.
//!
//! Faults: [`engine::run_with_faults`] drives the same engine under a
//! deterministic `dsv3_faults::FaultPlan` (replica crashes, plane flaps,
//! stragglers, SDC) with recovery policies — an empty plan reproduces
//! [`run`]'s report byte-for-byte.
//!
//! Overload: [`engine::run_overload`] layers [`overload`] (admission
//! control, a graceful-degradation ladder, closed-loop retrying clients)
//! and [`autoscale`] (reactive pool scaling with provisioning lag and a
//! crash-loop circuit breaker) on the same loop — retry storms and
//! metastable overload become reproducible, then defeatable. A
//! [`OverloadConfig::disabled`] run reproduces [`run_with_faults`]
//! byte-for-byte.
//!
//! ```
//! use dsv3_serving::{run, ArrivalProcess, RouterPolicy, ServingSimConfig};
//!
//! let cfg = ServingSimConfig::h800_baseline(
//!     ArrivalProcess::Poisson { rate_per_s: 8.0 },
//!     200,
//!     RouterPolicy::Unified,
//! );
//! let report = run(&cfg);
//! assert_eq!(report.completed + report.dropped, 200);
//! assert!(report.tpot_ms.p99 >= report.tpot_ms.p50);
//! ```

#![forbid(unsafe_code)]

pub mod autoscale;
pub mod engine;
pub mod metrics;
pub mod overload;
pub mod router;
pub mod workload;

pub use autoscale::{AutoscaleConfig, AutoscaleStats, BreakerConfig};
pub use engine::{
    run, run_overload, run_overload_traced, run_traced, run_with_faults, run_with_faults_traced,
    EngineConfig, FaultStats, FaultyServingReport, MtpSpec, ServingReport, ServingSimConfig,
    SloConfig,
};
pub use metrics::{percentile, Summary};
pub use overload::{
    AdmissionConfig, ClientConfig, GoodputWindow, LadderConfig, OverloadConfig,
    OverloadServingReport, OverloadStats, RateLimitConfig, Rung,
};
pub use router::RouterPolicy;
pub use workload::{ArrivalProcess, LengthDistribution, Phase, Request, WorkloadConfig};
