//! SLO metrics: percentile/summary statistics shared by the serving
//! simulator and the experiment layer.
//!
//! This module is the workspace's one home for percentile math — the
//! experiment runners and report layers use [`Summary`] instead of
//! growing ad-hoc copies (it is re-exported from `dsv3_core::report`).

use serde::{Deserialize, Serialize};

/// Nearest-rank percentile of an ascending-sorted slice, `p` in `[0, 100]`.
///
/// `p = 0` is defined as the minimum (the nearest-rank formula's
/// `ceil(0) = 0` has no rank to name), `p = 100` as the maximum;
/// interior values select rank `ceil(p/100 · n)`. The telemetry
/// histogram (`dsv3_telemetry::Histogram::quantile`) follows the same
/// convention.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of no samples");
    assert!((0.0..=100.0).contains(&p), "p={p} out of range");
    if p == 0.0 {
        return sorted[0];
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[(rank - 1).min(sorted.len() - 1)]
}

/// Mean plus the latency percentiles the serving SLOs are written against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, nearest rank).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize `samples` (unsorted; sorted in place).
    ///
    /// Returns an all-zero summary for an empty set so reports stay
    /// serializable even when no request completed.
    #[must_use]
    pub fn of(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self { count: 0, mean: 0.0, p50: 0.0, p95: 0.0, p99: 0.0, max: 0.0 };
        }
        samples.sort_by(f64::total_cmp);
        Self {
            count: samples.len(),
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            p50: percentile(samples, 50.0),
            p95: percentile(samples, 95.0),
            p99: percentile(samples, 99.0),
            max: samples[samples.len() - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn percentile_endpoints_are_min_and_max() {
        let v = [2.5, 3.5, 9.0];
        assert_eq!(percentile(&v, 0.0), 2.5, "p=0 is the explicit minimum");
        assert_eq!(percentile(&v, 100.0), 9.0, "p=100 is the maximum");
        // Tiny positive p rounds up to rank 1, agreeing with p=0.
        assert_eq!(percentile(&v, 0.001), 2.5);
    }

    #[test]
    fn percentile_of_one_sample_is_that_sample() {
        for p in [0.0, 0.5, 50.0, 99.9, 100.0] {
            assert_eq!(percentile(&[42.0], p), 42.0);
        }
    }

    #[test]
    fn summary_matches_hand_computation() {
        let mut v = vec![3.0, 1.0, 2.0, 4.0];
        let s = Summary::of(&mut v);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&mut []);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }
}
