//! Overload robustness: admission control, a graceful-degradation
//! ladder, and closed-loop clients that retry — the three ingredients of
//! the metastable retry-storm failure mode and of its defense.
//!
//! The paper frames DeepSeek-V3 serving as an SLO problem (§2.3, §6):
//! TTFT/TPOT targets held under hard hardware limits. A serving system
//! meets those targets under overload only by *not doing some of the
//! work*: rejecting traffic it cannot serve in time (admission control),
//! doing cheaper work (degradation rungs), and spreading the retries it
//! causes (jittered backoff, `dsv3_faults::recovery`). Without those,
//! closed-loop clients convert a transient spike into a *metastable*
//! state: every timed-out request re-arrives with its prefill work
//! already wasted, the offered load stays above capacity after the spike
//! ends, and goodput pins near zero — the classic retry-storm collapse.
//!
//! Everything here is configuration and bookkeeping; the mechanics live
//! in [`crate::engine`]'s simulation loop, gated so that a disabled
//! [`OverloadConfig`] leaves the engine byte-identical to
//! [`crate::engine::run_with_faults`].

use serde::{Deserialize, Serialize};

use dsv3_faults::Backoff;

use crate::autoscale::{AutoscaleConfig, AutoscaleStats};
use crate::engine::{FaultStats, ServingReport};

/// Token-bucket rate limiter for one replica group. Deterministic: the
/// bucket refills with simulated time, so equal configs admit identical
/// prefixes of the arrival stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimitConfig {
    /// Sustained admission rate per *live* decode replica, requests/s —
    /// the bucket refill rate scales with the pool, so autoscaling
    /// raises the admissible load.
    pub rate_per_s_per_replica: f64,
    /// Bucket depth in requests (absorbs bursts above the sustained
    /// rate).
    pub burst: f64,
}

/// Admission control: what gets into the engine at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Bound on requests waiting for decode (ready queue + prefill
    /// backlog). Arrivals beyond it are shed on sight. 0 = unbounded.
    pub queue_cap: usize,
    /// Deadline-aware shedding: reject on arrival when the predicted
    /// TTFT exceeds `deadline_headroom · slo.ttft_ms`. The prediction is
    /// prefill completion plus a queue-drain estimate from the engine's
    /// smoothed step time. 0 disables the predictor.
    pub deadline_headroom: f64,
    /// Optional token-bucket rate limiter in front of the queue.
    pub rate_limit: Option<RateLimitConfig>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { queue_cap: 256, deadline_headroom: 1.0, rate_limit: None }
    }
}

/// One rung of the degradation ladder. Rungs are *absolute* operating
/// points, not deltas: rung `k` active means exactly these settings
/// apply. Write them progressively tighter — the canonical order is
/// "drop MTP speculation → shrink batch/context admission → shed
/// low-priority traffic", cheapest reversible knob first.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rung {
    /// Switch off MTP speculative decoding (saves the draft-module
    /// overhead per step).
    pub disable_mtp: bool,
    /// Multiplier on `max_batch` for the *admission cap* (1.0 = no
    /// change). Smaller batches decode faster per §2.3.2's speed limit,
    /// trading throughput for latency.
    pub batch_cap_factor: f64,
    /// Reject arrivals whose prompt exceeds this many tokens (0 = no
    /// context cap). Long contexts are the most KV-expensive work.
    pub context_cap_tokens: usize,
    /// Shed arrivals with priority class below this bound (0 = shed
    /// nothing; priorities are `id % priority_classes`, 0 = lowest).
    pub shed_below_priority: u8,
}

/// The degradation ladder: pressure thresholds plus hysteresis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderConfig {
    /// Rungs in escalation order (`rungs[0]` is the first, mildest
    /// step-down).
    pub rungs: Vec<Rung>,
    /// Step *down* (tighter) when pressure stays above this for
    /// `dwell_ms`. Pressure is predicted queue wait over the TTFT SLO,
    /// so 1.0 means "we are about to start missing deadlines".
    pub high_pressure: f64,
    /// Step *up* (looser) when pressure stays below this for `dwell_ms`.
    /// Keep well under `high_pressure` or the ladder oscillates.
    pub low_pressure: f64,
    /// Dwell time a pressure excursion must persist before a transition
    /// — the hysteresis that stops rung flapping.
    pub dwell_ms: f64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self {
            rungs: vec![
                Rung {
                    disable_mtp: true,
                    batch_cap_factor: 1.0,
                    context_cap_tokens: 0,
                    shed_below_priority: 0,
                },
                Rung {
                    disable_mtp: true,
                    batch_cap_factor: 0.5,
                    context_cap_tokens: 2048,
                    shed_below_priority: 0,
                },
                Rung {
                    disable_mtp: true,
                    batch_cap_factor: 0.5,
                    context_cap_tokens: 1024,
                    shed_below_priority: 1,
                },
            ],
            high_pressure: 0.8,
            low_pressure: 0.3,
            dwell_ms: 2_000.0,
        }
    }
}

/// Closed-loop client behavior: the demand side of the retry storm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Client abandons the attempt when no first token has arrived by
    /// this deadline and (budget permitting) retries. The abandoned
    /// attempt keeps consuming engine resources until the engine notices
    /// — that zombie work is what makes overload metastable.
    pub timeout_ms: f64,
    /// Total retries a client makes before giving up for good.
    pub retry_budget: u32,
    /// Delay schedule between abandon/shed and the retry. Enable
    /// [`Backoff::jitter`] to decorrelate the storm.
    pub backoff: Backoff,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self { timeout_ms: 4_000.0, retry_budget: 3, backoff: Backoff::default().jittered() }
    }
}

/// The full overload-robustness layer. Every part is optional and
/// default-off; [`OverloadConfig::disabled`] is the explicit all-off
/// value under which the engine is byte-identical to the plain fault
/// path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Admission control (`None` = admit everything, the legacy
    /// behavior).
    pub admission: Option<AdmissionConfig>,
    /// Graceful-degradation ladder (`None` = never degrade).
    pub ladder: Option<LadderConfig>,
    /// Closed-loop clients (`None` = open loop: shed work vanishes).
    pub clients: Option<ClientConfig>,
    /// Reactive autoscaling (`None` = fixed pools).
    pub autoscale: Option<AutoscaleConfig>,
    /// Number of priority classes; request priority is
    /// `id % priority_classes` (0 = lowest, shed first). 1 = everyone
    /// equal.
    pub priority_classes: u8,
    /// Goodput-timeline bucket width, ms (0 = no timeline). The
    /// timeline is how the metastable plateau and the post-spike
    /// recovery are measured.
    pub timeline_window_ms: f64,
}

impl OverloadConfig {
    /// Everything off: the engine must behave byte-identically to
    /// [`crate::engine::run_with_faults`].
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            admission: None,
            ladder: None,
            clients: None,
            autoscale: None,
            priority_classes: 1,
            timeline_window_ms: 0.0,
        }
    }

    /// True if every feature is off (the byte-identity precondition).
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.admission.is_none()
            && self.ladder.is_none()
            && self.clients.is_none()
            && self.autoscale.is_none()
            && self.timeline_window_ms <= 0.0
    }
}

/// Counters for every overload decision the engine made.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverloadStats {
    /// Submission attempts offered to admission (first tries + client
    /// retries).
    pub offered_attempts: usize,
    /// Attempts that passed admission into the prefill stage.
    pub admitted_attempts: usize,
    /// Attempts shed because the admission queue was full.
    pub shed_queue_full: usize,
    /// Attempts shed by the token-bucket rate limiter.
    pub shed_rate_limited: usize,
    /// Attempts shed by the deadline predictor (would miss TTFT).
    pub shed_deadline: usize,
    /// Attempts shed by the active rung's priority bound.
    pub shed_priority: usize,
    /// Attempts shed by the active rung's context cap.
    pub shed_context: usize,
    /// Client timeouts fired (attempt abandoned without a first token).
    pub client_timeouts: usize,
    /// Client retries submitted after a timeout or shed.
    pub client_retries: usize,
    /// Abandoned (zombie) attempts the engine cancelled before they
    /// wasted a full decode.
    pub zombies_cancelled: usize,
    /// Requests terminally rejected by the overload layer (shed with no
    /// client loop, or clients that exhausted the retry budget).
    pub rejected: usize,
    /// Ladder transitions (both directions).
    pub rung_transitions: usize,
    /// Deepest rung reached (0 = never degraded).
    pub max_rung: usize,
    /// Simulated time spent on any rung > 0, ms.
    pub degraded_ms: f64,
}

/// One bucket of the goodput timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputWindow {
    /// Window start, simulated ms.
    pub start_ms: f64,
    /// First-time request arrivals in the window (not retries).
    pub offered: usize,
    /// Completions in the window.
    pub completed: usize,
    /// SLO-good completions in the window.
    pub good: usize,
    /// Good completions per second of window.
    pub goodput_rps: f64,
}

/// Output of [`crate::engine::run_overload`]: the serving + fault
/// reports plus everything the overload layer did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadServingReport {
    /// The usual serving metrics.
    pub serving: ServingReport,
    /// Fault-layer counters.
    pub faults: FaultStats,
    /// Overload-layer counters.
    pub overload: OverloadStats,
    /// Autoscaler counters.
    pub autoscale: AutoscaleStats,
    /// Windowed goodput (empty when `timeline_window_ms` is 0).
    pub timeline: Vec<GoodputWindow>,
}

/// Runtime token-bucket state (engine-internal).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TokenBucket {
    tokens: f64,
    last_ms: f64,
}

impl TokenBucket {
    pub(crate) fn new(cfg: &RateLimitConfig) -> Self {
        Self { tokens: cfg.burst, last_ms: 0.0 }
    }

    /// Refill for elapsed simulated time (rate scales with live
    /// replicas), then try to take one token.
    pub(crate) fn try_take(&mut self, cfg: &RateLimitConfig, replicas: usize, now_ms: f64) -> bool {
        let rate_per_ms = cfg.rate_per_s_per_replica * replicas as f64 / 1000.0;
        self.tokens = (self.tokens + (now_ms - self.last_ms).max(0.0) * rate_per_ms).min(cfg.burst);
        self.last_ms = now_ms;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Runtime ladder state (engine-internal): current rung plus the
/// hysteresis timers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LadderState {
    /// Active rung: 0 = healthy, `k` = `rungs[k-1]` applies.
    pub(crate) level: usize,
    above_since: Option<f64>,
    below_since: Option<f64>,
}

impl LadderState {
    pub(crate) fn new() -> Self {
        Self { level: 0, above_since: None, below_since: None }
    }

    /// The active rung's settings, if degraded.
    pub(crate) fn active<'a>(&self, cfg: &'a LadderConfig) -> Option<&'a Rung> {
        self.level.checked_sub(1).and_then(|i| cfg.rungs.get(i))
    }

    /// Feed a pressure sample; returns `Some((from, to))` on a rung
    /// transition. Excursions must persist for `dwell_ms` before acting,
    /// and each transition re-arms the timer, so the ladder walks one
    /// rung per dwell period at most.
    pub(crate) fn update(
        &mut self,
        cfg: &LadderConfig,
        pressure: f64,
        now_ms: f64,
    ) -> Option<(usize, usize)> {
        if pressure >= cfg.high_pressure {
            self.below_since = None;
            let since = *self.above_since.get_or_insert(now_ms);
            if now_ms - since >= cfg.dwell_ms && self.level < cfg.rungs.len() {
                let from = self.level;
                self.level += 1;
                self.above_since = Some(now_ms);
                return Some((from, self.level));
            }
        } else if pressure <= cfg.low_pressure {
            self.above_since = None;
            let since = *self.below_since.get_or_insert(now_ms);
            if now_ms - since >= cfg.dwell_ms && self.level > 0 {
                let from = self.level;
                self.level -= 1;
                self.below_since = Some(now_ms);
                return Some((from, self.level));
            }
        } else {
            self.above_since = None;
            self.below_since = None;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_reports_disabled() {
        assert!(OverloadConfig::disabled().is_disabled());
        let mut on = OverloadConfig::disabled();
        on.admission = Some(AdmissionConfig::default());
        assert!(!on.is_disabled());
    }

    #[test]
    fn token_bucket_admits_burst_then_throttles_then_refills() {
        let cfg = RateLimitConfig { rate_per_s_per_replica: 10.0, burst: 3.0 };
        let mut b = TokenBucket::new(&cfg);
        // Burst: 3 instant admits, then dry.
        assert!(b.try_take(&cfg, 1, 0.0));
        assert!(b.try_take(&cfg, 1, 0.0));
        assert!(b.try_take(&cfg, 1, 0.0));
        assert!(!b.try_take(&cfg, 1, 0.0));
        // 10 rps → one token per 100 ms.
        assert!(!b.try_take(&cfg, 1, 50.0));
        assert!(b.try_take(&cfg, 1, 150.0));
        // Refill rate scales with the replica pool: 4 replicas fill 4x
        // faster.
        assert!(b.try_take(&cfg, 4, 175.0));
        // Bucket never exceeds burst depth.
        assert!(b.try_take(&cfg, 1, 1_000_000.0));
        assert!(b.try_take(&cfg, 1, 1_000_000.0));
        assert!(b.try_take(&cfg, 1, 1_000_000.0));
        assert!(!b.try_take(&cfg, 1, 1_000_000.0));
    }

    #[test]
    fn ladder_steps_down_after_dwell_and_back_up_with_hysteresis() {
        let cfg = LadderConfig::default();
        let mut s = LadderState::new();
        // A short excursion does nothing.
        assert_eq!(s.update(&cfg, 2.0, 0.0), None);
        assert_eq!(s.update(&cfg, 2.0, 1_000.0), None);
        // Dropping back between the thresholds re-arms the timer.
        assert_eq!(s.update(&cfg, 0.5, 1_500.0), None);
        assert_eq!(s.update(&cfg, 2.0, 2_000.0), None);
        assert_eq!(s.update(&cfg, 2.0, 3_000.0), None, "dwell restarted at 2000");
        // Sustained pressure: one rung per dwell period.
        assert_eq!(s.update(&cfg, 2.0, 4_000.0), Some((0, 1)));
        assert_eq!(s.update(&cfg, 2.0, 5_999.0), None);
        assert_eq!(s.update(&cfg, 2.0, 6_000.0), Some((1, 2)));
        assert_eq!(s.update(&cfg, 2.0, 8_000.0), Some((2, 3)));
        assert_eq!(s.update(&cfg, 2.0, 20_000.0), None, "bottom rung holds");
        assert_eq!(s.level, 3);
        assert!(s.active(&cfg).is_some());
        // Recovery: low pressure must also dwell before stepping up.
        assert_eq!(s.update(&cfg, 0.1, 21_000.0), None);
        assert_eq!(s.update(&cfg, 0.1, 23_000.0), Some((3, 2)));
        assert_eq!(s.update(&cfg, 0.1, 25_000.0), Some((2, 1)));
        assert_eq!(s.update(&cfg, 0.1, 27_000.0), Some((1, 0)));
        assert_eq!(s.level, 0);
        assert!(s.active(&cfg).is_none());
        // Mid-band pressure holds the current rung forever.
        assert_eq!(s.update(&cfg, 0.5, 100_000.0), None);
    }

    #[test]
    fn default_rungs_escalate_monotonically() {
        let cfg = LadderConfig::default();
        assert!(cfg.low_pressure < cfg.high_pressure);
        for w in cfg.rungs.windows(2) {
            assert!(w[1].batch_cap_factor <= w[0].batch_cap_factor);
            assert!(w[1].shed_below_priority >= w[0].shed_below_priority);
            let cap = |r: &Rung| {
                if r.context_cap_tokens == 0 {
                    usize::MAX
                } else {
                    r.context_cap_tokens
                }
            };
            assert!(cap(&w[1]) <= cap(&w[0]));
        }
    }
}
