//! Placement policy: unified pool vs prefill/decode disaggregation.
//!
//! The request-level simulator reuses the calibration of
//! `dsv3_inference::disagg` (§2.3.1): a unified pool lets prefill bursts
//! steal decode compute (half the outstanding backlog competes with each
//! decode step), while disaggregation isolates decode at the cost of a
//! smaller decode pool whose per-step time inflates by the conservative
//! linear bound, capped at 2×.

use serde::{Deserialize, Serialize};

/// Where prefill work runs relative to the decode pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// One pool serves both phases; prefill steals decode step time.
    Unified,
    /// Dedicated prefill pool; decode pool shrinks but never sees prefill.
    Disaggregated {
        /// Fraction of GPUs moved to the prefill pool, in `(0, 1)`.
        prefill_fraction: f64,
    },
}

impl RouterPolicy {
    /// Multiplier on the decode step time from shrinking the decode pool
    /// (1.0 for the unified pool). Matches
    /// `dsv3_inference::disagg::disaggregated_tpot`'s conservative bound.
    #[must_use]
    pub fn decode_slowdown(&self) -> f64 {
        match self {
            RouterPolicy::Unified => 1.0,
            RouterPolicy::Disaggregated { prefill_fraction } => {
                assert!(
                    (0.0..1.0).contains(prefill_fraction),
                    "prefill fraction must leave decode GPUs"
                );
                (1.0 / (1.0 - prefill_fraction)).min(2.0)
            }
        }
    }

    /// Prefill throughput available to this policy, given the full pool's
    /// rate: the whole pool in the unified case (interleaved with decode),
    /// the dedicated slice otherwise.
    #[must_use]
    pub fn prefill_rate(&self, full_pool_tokens_per_ms: f64) -> f64 {
        match self {
            RouterPolicy::Unified => full_pool_tokens_per_ms,
            RouterPolicy::Disaggregated { prefill_fraction } => {
                full_pool_tokens_per_ms * prefill_fraction
            }
        }
    }

    /// Short display name.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RouterPolicy::Unified => "unified",
            RouterPolicy::Disaggregated { .. } => "disaggregated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv3_inference::disagg::{self, ServingConfig};

    #[test]
    fn slowdown_matches_disagg_calibration() {
        let cfg = ServingConfig::default();
        let policy = RouterPolicy::Disaggregated { prefill_fraction: cfg.prefill_pool_fraction };
        let analytical = disagg::disaggregated_tpot(&cfg);
        let expected = cfg.decode_step_us * policy.decode_slowdown();
        assert!((analytical.mean_us - expected).abs() < 1e-9);
    }

    #[test]
    fn slowdown_caps_at_two() {
        let policy = RouterPolicy::Disaggregated { prefill_fraction: 0.9 };
        assert_eq!(policy.decode_slowdown(), 2.0);
        assert_eq!(RouterPolicy::Unified.decode_slowdown(), 1.0);
    }

    #[test]
    fn prefill_rate_splits_the_pool() {
        let policy = RouterPolicy::Disaggregated { prefill_fraction: 0.25 };
        assert_eq!(policy.prefill_rate(16.0), 4.0);
        assert_eq!(RouterPolicy::Unified.prefill_rate(16.0), 16.0);
    }
}
