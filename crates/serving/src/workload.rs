//! Workload generation: arrival processes and request-length
//! distributions, fully determined by a seed so simulator reports are
//! byte-reproducible.
//!
//! Three arrival processes cover the serving scenarios in the paper's
//! §5 discussion: steady Poisson traffic, bursty traffic (Gamma
//! interarrivals with a squared coefficient of variation > 1, the regime
//! where prefill interference hurts unified pools), and replayable traces
//! for calibration against recorded workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Interarrival-time process for request admission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential interarrivals at `rate_per_s`.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// Bursty arrivals: Gamma-distributed interarrivals with the same
    /// mean rate but squared coefficient of variation `burstiness`
    /// (`burstiness = 1` degenerates to Poisson; larger values cluster
    /// arrivals into bursts separated by lulls).
    Bursty {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
        /// Squared coefficient of variation of interarrival times (>= 1).
        burstiness: f64,
    },
    /// Replay explicit interarrival gaps (milliseconds). Cycled if the
    /// request count exceeds the trace length.
    Trace {
        /// Interarrival gaps in milliseconds, replayed in order.
        interarrival_ms: Vec<f64>,
    },
    /// Piecewise-constant Poisson: the rate steps through [`Phase`]s in
    /// order and the last phase's rate extends forever. This is the spike
    /// shape of the overload experiments (base load → transient surge →
    /// base load) and is sampled *exactly* — an exponential unit of
    /// arrival work is spent across phase boundaries by inversion, so a
    /// gap spanning a rate change is distributed correctly rather than
    /// drawn at the rate of the phase it started in.
    Phased {
        /// Rate phases, walked in order from t = 0.
        phases: Vec<Phase>,
    },
}

/// One constant-rate segment of [`ArrivalProcess::Phased`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// How long this rate holds, milliseconds (the last phase ignores
    /// this and extends forever).
    pub duration_ms: f64,
    /// Mean arrival rate during the phase, requests per second.
    pub rate_per_s: f64,
}

/// Discretized lognormal token-length distribution, clamped to
/// `[min_tokens, max_tokens]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LengthDistribution {
    /// Target mean token count (of the unclamped lognormal).
    pub mean_tokens: f64,
    /// Coefficient of variation (std dev / mean) of the lognormal.
    pub cv: f64,
    /// Lower clamp, tokens.
    pub min_tokens: usize,
    /// Upper clamp, tokens.
    pub max_tokens: usize,
}

impl LengthDistribution {
    /// Fixed-length distribution (cv = 0).
    #[must_use]
    pub fn fixed(tokens: usize) -> Self {
        Self { mean_tokens: tokens as f64, cv: 0.0, min_tokens: tokens, max_tokens: tokens }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let raw = if self.cv <= 0.0 {
            self.mean_tokens
        } else {
            // Lognormal with matching mean and CV:
            // sigma^2 = ln(1 + cv^2), mu = ln(mean) - sigma^2 / 2.
            let sigma2 = (1.0 + self.cv * self.cv).ln();
            let mu = self.mean_tokens.ln() - sigma2 / 2.0;
            (mu + sigma2.sqrt() * standard_normal(rng)).exp()
        };
        (raw.round() as usize).clamp(self.min_tokens, self.max_tokens)
    }
}

/// Full workload specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Number of requests to generate.
    pub requests: usize,
    /// Prompt (prefill) length distribution.
    pub prompt: LengthDistribution,
    /// Output (decode) length distribution.
    pub output: LengthDistribution,
    /// RNG seed; equal seeds produce identical workloads.
    pub seed: u64,
}

/// One generated request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Stable id, assigned in arrival order.
    pub id: u64,
    /// Absolute arrival time in milliseconds.
    pub arrival_ms: f64,
    /// Prompt tokens to prefill before the first output token.
    pub prompt_tokens: usize,
    /// Output tokens to decode.
    pub output_tokens: usize,
}

/// Generate the workload: requests sorted by arrival time.
#[must_use]
pub fn generate(cfg: &WorkloadConfig) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clock_ms = 0.0;
    let mut out = Vec::with_capacity(cfg.requests);
    for id in 0..cfg.requests as u64 {
        clock_ms += interarrival_ms(&cfg.arrival, id as usize, clock_ms, &mut rng);
        out.push(Request {
            id,
            arrival_ms: clock_ms,
            prompt_tokens: cfg.prompt.sample(&mut rng).max(1),
            output_tokens: cfg.output.sample(&mut rng).max(1),
        });
    }
    out
}

fn interarrival_ms(arrival: &ArrivalProcess, index: usize, clock_ms: f64, rng: &mut StdRng) -> f64 {
    match arrival {
        ArrivalProcess::Poisson { rate_per_s } => {
            assert!(*rate_per_s > 0.0, "arrival rate must be positive");
            exponential(rng) / rate_per_s * 1000.0
        }
        ArrivalProcess::Bursty { rate_per_s, burstiness } => {
            assert!(*rate_per_s > 0.0, "arrival rate must be positive");
            assert!(*burstiness >= 1.0, "burstiness is a squared CV >= 1");
            // Gamma(shape k = 1/burstiness, mean 1/rate): CV^2 = 1/k.
            let shape = 1.0 / burstiness;
            let scale = burstiness / rate_per_s;
            gamma(rng, shape) * scale * 1000.0
        }
        ArrivalProcess::Trace { interarrival_ms } => {
            assert!(!interarrival_ms.is_empty(), "empty trace");
            interarrival_ms[index % interarrival_ms.len()]
        }
        ArrivalProcess::Phased { phases } => phased_gap_ms(phases, clock_ms, exponential(rng)),
    }
}

/// Spend `work` (a unit-mean exponential deviate) across the
/// piecewise-constant rate profile starting at absolute time `from_ms`,
/// returning the gap to the next arrival. Inversion of the inhomogeneous
/// Poisson integral: a phase at `rate_per_s` consumes `rate · dt` work
/// per elapsed second.
fn phased_gap_ms(phases: &[Phase], from_ms: f64, work: f64) -> f64 {
    assert!(!phases.is_empty(), "phased arrival needs at least one phase");
    let mut w = work;
    let mut t = from_ms;
    let mut gap = 0.0;
    let mut start = 0.0;
    for (i, p) in phases.iter().enumerate() {
        assert!(p.rate_per_s > 0.0, "phase rate must be positive");
        let last = i + 1 == phases.len();
        let end = start + p.duration_ms.max(0.0);
        if last || t < end {
            let rate_per_ms = p.rate_per_s / 1000.0;
            let span = end - t;
            if last || w <= rate_per_ms * span {
                // Same expression shape as the plain-Poisson arm, so a
                // single-phase profile reproduces its stream bit-for-bit.
                return gap + w / p.rate_per_s * 1000.0;
            }
            w -= rate_per_ms * span;
            gap += span;
            t = end;
        }
        start = end;
    }
    // lint:allow(P1) — the final loop iteration always returns (last phase extends forever); reaching here means the non-empty assertion above was violated
    unreachable!("the last phase extends forever")
}

/// Standard normal via Box–Muller (one deviate per call; the pair's
/// sibling is discarded to keep the sampling stream simple).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Unit-mean exponential deviate.
fn exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

/// Gamma(shape, scale = 1) via Marsaglia–Tsang, with the standard
/// shape-boosting transform for shape < 1.
fn gamma(rng: &mut StdRng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: X_k = X_{k+1} * U^{1/k}.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config(arrival: ArrivalProcess) -> WorkloadConfig {
        WorkloadConfig {
            arrival,
            requests: 2000,
            prompt: LengthDistribution {
                mean_tokens: 512.0,
                cv: 1.0,
                min_tokens: 16,
                max_tokens: 8192,
            },
            output: LengthDistribution {
                mean_tokens: 128.0,
                cv: 0.5,
                min_tokens: 8,
                max_tokens: 2048,
            },
            seed: 11,
        }
    }

    #[test]
    fn same_seed_same_workload() {
        let cfg = base_config(ArrivalProcess::Poisson { rate_per_s: 20.0 });
        assert_eq!(generate(&cfg), generate(&cfg));
        let mut other = cfg.clone();
        other.seed = 12;
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn poisson_rate_is_respected() {
        let cfg = base_config(ArrivalProcess::Poisson { rate_per_s: 50.0 });
        let reqs = generate(&cfg);
        let span_s = reqs.last().unwrap().arrival_ms / 1000.0;
        let rate = reqs.len() as f64 / span_s;
        assert!((rate - 50.0).abs() / 50.0 < 0.1, "observed rate {rate}");
    }

    #[test]
    fn bursty_has_higher_interarrival_variance_than_poisson() {
        let cv2 = |reqs: &[Request]| {
            let gaps: Vec<f64> =
                reqs.windows(2).map(|w| w[1].arrival_ms - w[0].arrival_ms).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = generate(&base_config(ArrivalProcess::Poisson { rate_per_s: 20.0 }));
        let bursty =
            generate(&base_config(ArrivalProcess::Bursty { rate_per_s: 20.0, burstiness: 8.0 }));
        let (p, b) = (cv2(&poisson), cv2(&bursty));
        assert!((p - 1.0).abs() < 0.35, "poisson CV^2 {p}");
        assert!(b > 3.0 * p, "bursty CV^2 {b} vs poisson {p}");
    }

    #[test]
    fn trace_replays_exact_gaps() {
        let mut cfg =
            base_config(ArrivalProcess::Trace { interarrival_ms: vec![10.0, 20.0, 30.0] });
        cfg.requests = 5;
        let reqs = generate(&cfg);
        let times: Vec<f64> = reqs.iter().map(|r| r.arrival_ms).collect();
        assert_eq!(times, vec![10.0, 30.0, 60.0, 70.0, 90.0]);
    }

    #[test]
    fn phased_rates_hold_per_phase_and_last_phase_extends() {
        let mut cfg = base_config(ArrivalProcess::Phased {
            phases: vec![
                Phase { duration_ms: 20_000.0, rate_per_s: 10.0 },
                Phase { duration_ms: 10_000.0, rate_per_s: 80.0 },
                Phase { duration_ms: 0.0, rate_per_s: 10.0 },
            ],
        });
        cfg.requests = 3000;
        let reqs = generate(&cfg);
        let in_window = |lo: f64, hi: f64| {
            reqs.iter().filter(|r| r.arrival_ms >= lo && r.arrival_ms < hi).count() as f64
        };
        // Phase 1: ~10 rps over 20 s → ~200; phase 2: ~80 rps over 10 s
        // → ~800; tail (last phase, zero nominal duration) → ~10 rps.
        let p1 = in_window(0.0, 20_000.0) / 20.0;
        let p2 = in_window(20_000.0, 30_000.0) / 10.0;
        let tail = in_window(30_000.0, 80_000.0) / 50.0;
        assert!((p1 - 10.0).abs() < 2.0, "phase-1 rate {p1}");
        assert!((p2 - 80.0).abs() < 8.0, "phase-2 rate {p2}");
        assert!((tail - 10.0).abs() < 2.0, "tail rate {tail}");
        assert!(reqs.last().unwrap().arrival_ms > 30_000.0, "last phase must extend forever");
    }

    #[test]
    fn phased_single_phase_matches_poisson_exactly() {
        // One infinite phase is the same inversion as plain Poisson, so
        // the streams must agree byte-for-byte under one seed.
        let poisson = base_config(ArrivalProcess::Poisson { rate_per_s: 25.0 });
        let phased = base_config(ArrivalProcess::Phased {
            phases: vec![Phase { duration_ms: 1.0, rate_per_s: 25.0 }],
        });
        assert_eq!(generate(&poisson), generate(&phased));
    }

    #[test]
    fn phased_gap_spends_work_across_boundaries() {
        // 1 rps for 1 s, then 10 rps. 1.5 units of work: 1.0 spent in the
        // first second, 0.5 at 10/s = 50 ms → gap 1050 ms.
        let phases = [
            Phase { duration_ms: 1_000.0, rate_per_s: 1.0 },
            Phase { duration_ms: 0.0, rate_per_s: 10.0 },
        ];
        let gap = phased_gap_ms(&phases, 0.0, 1.5);
        assert!((gap - 1_050.0).abs() < 1e-9, "gap {gap}");
        // Starting mid-phase-2 never revisits phase 1.
        let gap2 = phased_gap_ms(&phases, 5_000.0, 2.0);
        assert!((gap2 - 200.0).abs() < 1e-9, "gap2 {gap2}");
    }

    #[test]
    fn lengths_are_clamped_and_near_mean() {
        let cfg = base_config(ArrivalProcess::Poisson { rate_per_s: 20.0 });
        let reqs = generate(&cfg);
        let mean_prompt =
            reqs.iter().map(|r| r.prompt_tokens as f64).sum::<f64>() / reqs.len() as f64;
        for r in &reqs {
            assert!((16..=8192).contains(&r.prompt_tokens));
            assert!((8..=2048).contains(&r.output_tokens));
        }
        assert!((mean_prompt - 512.0).abs() / 512.0 < 0.2, "mean prompt {mean_prompt}");
    }
}
