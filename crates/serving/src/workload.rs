//! Workload generation: arrival processes and request-length
//! distributions, fully determined by a seed so simulator reports are
//! byte-reproducible.
//!
//! Three arrival processes cover the serving scenarios in the paper's
//! §5 discussion: steady Poisson traffic, bursty traffic (Gamma
//! interarrivals with a squared coefficient of variation > 1, the regime
//! where prefill interference hurts unified pools), and replayable traces
//! for calibration against recorded workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Interarrival-time process for request admission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential interarrivals at `rate_per_s`.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// Bursty arrivals: Gamma-distributed interarrivals with the same
    /// mean rate but squared coefficient of variation `burstiness`
    /// (`burstiness = 1` degenerates to Poisson; larger values cluster
    /// arrivals into bursts separated by lulls).
    Bursty {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
        /// Squared coefficient of variation of interarrival times (>= 1).
        burstiness: f64,
    },
    /// Replay explicit interarrival gaps (milliseconds). Cycled if the
    /// request count exceeds the trace length.
    Trace {
        /// Interarrival gaps in milliseconds, replayed in order.
        interarrival_ms: Vec<f64>,
    },
}

/// Discretized lognormal token-length distribution, clamped to
/// `[min_tokens, max_tokens]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LengthDistribution {
    /// Target mean token count (of the unclamped lognormal).
    pub mean_tokens: f64,
    /// Coefficient of variation (std dev / mean) of the lognormal.
    pub cv: f64,
    /// Lower clamp, tokens.
    pub min_tokens: usize,
    /// Upper clamp, tokens.
    pub max_tokens: usize,
}

impl LengthDistribution {
    /// Fixed-length distribution (cv = 0).
    #[must_use]
    pub fn fixed(tokens: usize) -> Self {
        Self { mean_tokens: tokens as f64, cv: 0.0, min_tokens: tokens, max_tokens: tokens }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let raw = if self.cv <= 0.0 {
            self.mean_tokens
        } else {
            // Lognormal with matching mean and CV:
            // sigma^2 = ln(1 + cv^2), mu = ln(mean) - sigma^2 / 2.
            let sigma2 = (1.0 + self.cv * self.cv).ln();
            let mu = self.mean_tokens.ln() - sigma2 / 2.0;
            (mu + sigma2.sqrt() * standard_normal(rng)).exp()
        };
        (raw.round() as usize).clamp(self.min_tokens, self.max_tokens)
    }
}

/// Full workload specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Number of requests to generate.
    pub requests: usize,
    /// Prompt (prefill) length distribution.
    pub prompt: LengthDistribution,
    /// Output (decode) length distribution.
    pub output: LengthDistribution,
    /// RNG seed; equal seeds produce identical workloads.
    pub seed: u64,
}

/// One generated request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Stable id, assigned in arrival order.
    pub id: u64,
    /// Absolute arrival time in milliseconds.
    pub arrival_ms: f64,
    /// Prompt tokens to prefill before the first output token.
    pub prompt_tokens: usize,
    /// Output tokens to decode.
    pub output_tokens: usize,
}

/// Generate the workload: requests sorted by arrival time.
#[must_use]
pub fn generate(cfg: &WorkloadConfig) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clock_ms = 0.0;
    let mut out = Vec::with_capacity(cfg.requests);
    for id in 0..cfg.requests as u64 {
        clock_ms += interarrival_ms(&cfg.arrival, id as usize, &mut rng);
        out.push(Request {
            id,
            arrival_ms: clock_ms,
            prompt_tokens: cfg.prompt.sample(&mut rng).max(1),
            output_tokens: cfg.output.sample(&mut rng).max(1),
        });
    }
    out
}

fn interarrival_ms(arrival: &ArrivalProcess, index: usize, rng: &mut StdRng) -> f64 {
    match arrival {
        ArrivalProcess::Poisson { rate_per_s } => {
            assert!(*rate_per_s > 0.0, "arrival rate must be positive");
            exponential(rng) / rate_per_s * 1000.0
        }
        ArrivalProcess::Bursty { rate_per_s, burstiness } => {
            assert!(*rate_per_s > 0.0, "arrival rate must be positive");
            assert!(*burstiness >= 1.0, "burstiness is a squared CV >= 1");
            // Gamma(shape k = 1/burstiness, mean 1/rate): CV^2 = 1/k.
            let shape = 1.0 / burstiness;
            let scale = burstiness / rate_per_s;
            gamma(rng, shape) * scale * 1000.0
        }
        ArrivalProcess::Trace { interarrival_ms } => {
            assert!(!interarrival_ms.is_empty(), "empty trace");
            interarrival_ms[index % interarrival_ms.len()]
        }
    }
}

/// Standard normal via Box–Muller (one deviate per call; the pair's
/// sibling is discarded to keep the sampling stream simple).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Unit-mean exponential deviate.
fn exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

/// Gamma(shape, scale = 1) via Marsaglia–Tsang, with the standard
/// shape-boosting transform for shape < 1.
fn gamma(rng: &mut StdRng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: X_k = X_{k+1} * U^{1/k}.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config(arrival: ArrivalProcess) -> WorkloadConfig {
        WorkloadConfig {
            arrival,
            requests: 2000,
            prompt: LengthDistribution {
                mean_tokens: 512.0,
                cv: 1.0,
                min_tokens: 16,
                max_tokens: 8192,
            },
            output: LengthDistribution {
                mean_tokens: 128.0,
                cv: 0.5,
                min_tokens: 8,
                max_tokens: 2048,
            },
            seed: 11,
        }
    }

    #[test]
    fn same_seed_same_workload() {
        let cfg = base_config(ArrivalProcess::Poisson { rate_per_s: 20.0 });
        assert_eq!(generate(&cfg), generate(&cfg));
        let mut other = cfg.clone();
        other.seed = 12;
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn poisson_rate_is_respected() {
        let cfg = base_config(ArrivalProcess::Poisson { rate_per_s: 50.0 });
        let reqs = generate(&cfg);
        let span_s = reqs.last().unwrap().arrival_ms / 1000.0;
        let rate = reqs.len() as f64 / span_s;
        assert!((rate - 50.0).abs() / 50.0 < 0.1, "observed rate {rate}");
    }

    #[test]
    fn bursty_has_higher_interarrival_variance_than_poisson() {
        let cv2 = |reqs: &[Request]| {
            let gaps: Vec<f64> =
                reqs.windows(2).map(|w| w[1].arrival_ms - w[0].arrival_ms).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = generate(&base_config(ArrivalProcess::Poisson { rate_per_s: 20.0 }));
        let bursty =
            generate(&base_config(ArrivalProcess::Bursty { rate_per_s: 20.0, burstiness: 8.0 }));
        let (p, b) = (cv2(&poisson), cv2(&bursty));
        assert!((p - 1.0).abs() < 0.35, "poisson CV^2 {p}");
        assert!(b > 3.0 * p, "bursty CV^2 {b} vs poisson {p}");
    }

    #[test]
    fn trace_replays_exact_gaps() {
        let mut cfg =
            base_config(ArrivalProcess::Trace { interarrival_ms: vec![10.0, 20.0, 30.0] });
        cfg.requests = 5;
        let reqs = generate(&cfg);
        let times: Vec<f64> = reqs.iter().map(|r| r.arrival_ms).collect();
        assert_eq!(times, vec![10.0, 30.0, 60.0, 70.0, 90.0]);
    }

    #[test]
    fn lengths_are_clamped_and_near_mean() {
        let cfg = base_config(ArrivalProcess::Poisson { rate_per_s: 20.0 });
        let reqs = generate(&cfg);
        let mean_prompt =
            reqs.iter().map(|r| r.prompt_tokens as f64).sum::<f64>() / reqs.len() as f64;
        for r in &reqs {
            assert!((16..=8192).contains(&r.prompt_tokens));
            assert!((8..=2048).contains(&r.output_tokens));
        }
        assert!((mean_prompt - 512.0).abs() / 512.0 < 0.2, "mean prompt {mean_prompt}");
    }
}
