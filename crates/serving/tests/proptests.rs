//! Property-based tests for the serving engine under seeded fault
//! schedules (the ISSUE's conservation invariant): no request is ever
//! lost or double-completed, whatever the fault plan throws at the run.

use dsv3_faults::{FaultPlan, FaultPlanConfig, RecoveryPolicy};
use dsv3_serving::{run, run_with_faults, ArrivalProcess, RouterPolicy, ServingSimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Request conservation: every submitted request ends in exactly one
    /// terminal bucket — completed, dropped-as-infeasible, rejected after
    /// exhausting retries, or still in flight at termination. Holds for
    /// arbitrary seeded fault mixes, workload seeds, and both recovery
    /// policies; nothing is lost and nothing is double-counted.
    #[test]
    fn no_request_lost_or_double_completed(
        plan_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        rate in 4.0f64..20.0,
        crash_mtbf_s in 2.0f64..40.0,
        flap_mtbf_s in 5.0f64..60.0,
        straggler_mtbf_s in 5.0f64..60.0,
        sdc_mtbf_s in 5.0f64..60.0,
        repair_s in 0.5f64..10.0,
        hedge in 0u8..2,
    ) {
        let mut cfg = ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            120,
            RouterPolicy::Unified,
        );
        cfg.workload.seed = workload_seed;
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: plan_seed,
            horizon_ms: 45_000.0,
            replicas: 4,
            planes: 8,
            crash_mtbf_ms: crash_mtbf_s * 1_000.0,
            crash_repair_ms: repair_s * 1_000.0,
            flap_mtbf_ms: flap_mtbf_s * 1_000.0,
            flap_repair_ms: repair_s * 1_000.0,
            straggler_mtbf_ms: straggler_mtbf_s * 1_000.0,
            sdc_mtbf_ms: sdc_mtbf_s * 1_000.0,
            ..FaultPlanConfig::default()
        });
        let policy =
            if hedge == 1 { RecoveryPolicy::hedged() } else { RecoveryPolicy::default() };
        let r = run_with_faults(&cfg, &plan, &policy);

        // completed + rejected + in-flight (+ infeasible drops) == submitted.
        prop_assert_eq!(
            r.serving.completed + r.serving.dropped + r.faults.rejected
                + r.faults.unfinished,
            r.serving.requests,
            "conservation violated: {:?} / {:?}",
            r.serving,
            r.faults
        );
        // No double-completion: completions can never exceed submissions,
        // and hedge wins are a subset of completions.
        prop_assert!(r.serving.completed <= r.serving.requests);
        prop_assert!(r.faults.hedge_wins <= r.serving.completed);
        prop_assert!(r.faults.corrupted_completions <= r.serving.completed);
        // Every retry traces back to a crash-evicted job.
        prop_assert!(r.faults.retries <= r.faults.jobs_lost_to_crashes);
        // Determinism: the same seeds reproduce the same report.
        let again = run_with_faults(&cfg, &plan, &policy);
        prop_assert_eq!(&again, &r);
    }

    /// The empty plan is inert for any workload: `run_with_faults` with
    /// `FaultPlan::healthy()` must reproduce the plain `run` report
    /// exactly, fault counters all zero.
    #[test]
    fn empty_plan_is_transparent(
        workload_seed in 0u64..1_000,
        rate in 4.0f64..20.0,
        disaggregated in 0u8..2,
    ) {
        let router = if disaggregated == 1 {
            RouterPolicy::Disaggregated { prefill_fraction: 0.4 }
        } else {
            RouterPolicy::Unified
        };
        let mut cfg = ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            80,
            router,
        );
        cfg.workload.seed = workload_seed;
        let healthy = run(&cfg);
        let faulty = run_with_faults(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::hedged());
        prop_assert_eq!(&faulty.serving, &healthy);
        prop_assert_eq!(faulty.faults.crash_events, 0);
        prop_assert_eq!(faulty.faults.retries, 0);
        prop_assert_eq!(faulty.faults.unfinished, 0);
        prop_assert!((faulty.faults.min_bandwidth_retention - 1.0).abs() < f64::EPSILON);
    }
}
