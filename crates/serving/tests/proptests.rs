//! Property-based tests for the serving engine under seeded fault
//! schedules (the ISSUE's conservation invariant): no request is ever
//! lost or double-completed, whatever the fault plan throws at the run.

use dsv3_faults::{Backoff, FaultPlan, FaultPlanConfig, RecoveryPolicy};
use dsv3_serving::{
    run, run_overload, run_with_faults, AdmissionConfig, ArrivalProcess, AutoscaleConfig,
    ClientConfig, LadderConfig, OverloadConfig, OverloadStats, Phase, RateLimitConfig,
    RouterPolicy, ServingSimConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Request conservation: every submitted request ends in exactly one
    /// terminal bucket — completed, dropped-as-infeasible, rejected after
    /// exhausting retries, or still in flight at termination. Holds for
    /// arbitrary seeded fault mixes, workload seeds, and both recovery
    /// policies; nothing is lost and nothing is double-counted.
    #[test]
    fn no_request_lost_or_double_completed(
        plan_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        rate in 4.0f64..20.0,
        crash_mtbf_s in 2.0f64..40.0,
        flap_mtbf_s in 5.0f64..60.0,
        straggler_mtbf_s in 5.0f64..60.0,
        sdc_mtbf_s in 5.0f64..60.0,
        repair_s in 0.5f64..10.0,
        hedge in 0u8..2,
    ) {
        let mut cfg = ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            120,
            RouterPolicy::Unified,
        );
        cfg.workload.seed = workload_seed;
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: plan_seed,
            horizon_ms: 45_000.0,
            replicas: 4,
            planes: 8,
            crash_mtbf_ms: crash_mtbf_s * 1_000.0,
            crash_repair_ms: repair_s * 1_000.0,
            flap_mtbf_ms: flap_mtbf_s * 1_000.0,
            flap_repair_ms: repair_s * 1_000.0,
            straggler_mtbf_ms: straggler_mtbf_s * 1_000.0,
            sdc_mtbf_ms: sdc_mtbf_s * 1_000.0,
            ..FaultPlanConfig::default()
        });
        let policy =
            if hedge == 1 { RecoveryPolicy::hedged() } else { RecoveryPolicy::default() };
        let r = run_with_faults(&cfg, &plan, &policy);

        // completed + rejected + in-flight (+ infeasible drops) == submitted.
        prop_assert_eq!(
            r.serving.completed + r.serving.dropped + r.faults.rejected
                + r.faults.unfinished,
            r.serving.requests,
            "conservation violated: {:?} / {:?}",
            r.serving,
            r.faults
        );
        // No double-completion: completions can never exceed submissions,
        // and hedge wins are a subset of completions.
        prop_assert!(r.serving.completed <= r.serving.requests);
        prop_assert!(r.faults.hedge_wins <= r.serving.completed);
        prop_assert!(r.faults.corrupted_completions <= r.serving.completed);
        // Every retry traces back to a crash-evicted job.
        prop_assert!(r.faults.retries <= r.faults.jobs_lost_to_crashes);
        // Determinism: the same seeds reproduce the same report.
        let again = run_with_faults(&cfg, &plan, &policy);
        prop_assert_eq!(&again, &r);
    }

    /// The empty plan is inert for any workload: `run_with_faults` with
    /// `FaultPlan::healthy()` must reproduce the plain `run` report
    /// exactly, fault counters all zero.
    #[test]
    fn empty_plan_is_transparent(
        workload_seed in 0u64..1_000,
        rate in 4.0f64..20.0,
        disaggregated in 0u8..2,
    ) {
        let router = if disaggregated == 1 {
            RouterPolicy::Disaggregated { prefill_fraction: 0.4 }
        } else {
            RouterPolicy::Unified
        };
        let mut cfg = ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            80,
            router,
        );
        cfg.workload.seed = workload_seed;
        let healthy = run(&cfg);
        let faulty = run_with_faults(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::hedged());
        prop_assert_eq!(&faulty.serving, &healthy);
        prop_assert_eq!(faulty.faults.crash_events, 0);
        prop_assert_eq!(faulty.faults.retries, 0);
        prop_assert_eq!(faulty.faults.unfinished, 0);
        prop_assert!((faulty.faults.min_bandwidth_retention - 1.0).abs() < f64::EPSILON);
    }

    /// Overload conservation: with admission shedding, closed-loop
    /// client retries, the degradation ladder, autoscaling, and a seeded
    /// fault plan all in play at once, every request still lands in
    /// exactly one terminal bucket — completed, dropped, rejected by the
    /// fault layer, rejected by the overload layer, or unfinished at
    /// termination. Attempt accounting closes too: every offered attempt
    /// is either admitted or shed by exactly one admission gate.
    #[test]
    fn overload_conserves_requests_under_storms(
        plan_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        rate in 2.0f64..24.0,
        spiky in 0u8..2,
        queue_cap_sel in 0usize..4,
        headroom in 0.0f64..2.0,
        rate_limited in 0u8..2,
        clients_on in 0u8..2,
        timeout_s in 1.0f64..8.0,
        retry_budget in 0u32..4,
        jitter in 0u8..2,
        ladder_on in 0u8..2,
        autoscale_on in 0u8..2,
        crash_mtbf_s in 4.0f64..40.0,
        disaggregated in 0u8..2,
    ) {
        let queue_cap = [0usize, 8, 64, 256][queue_cap_sel];
        let arrival = if spiky == 1 {
            // A 3x spike sandwiched between steady phases.
            ArrivalProcess::Phased { phases: vec![
                Phase { duration_ms: 8_000.0, rate_per_s: rate },
                Phase { duration_ms: 8_000.0, rate_per_s: 3.0 * rate },
                Phase { duration_ms: 16_000.0, rate_per_s: rate },
            ] }
        } else {
            ArrivalProcess::Poisson { rate_per_s: rate }
        };
        let router = if disaggregated == 1 {
            RouterPolicy::Disaggregated { prefill_fraction: 0.25 }
        } else {
            RouterPolicy::Unified
        };
        let mut cfg = ServingSimConfig::h800_baseline(arrival, 100, router);
        cfg.workload.seed = workload_seed;
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: plan_seed,
            horizon_ms: 30_000.0,
            replicas: 4,
            planes: 8,
            crash_mtbf_ms: crash_mtbf_s * 1_000.0,
            crash_repair_ms: 2_000.0,
            ..FaultPlanConfig::default()
        });
        let backoff =
            if jitter == 1 { Backoff::default().jittered() } else { Backoff::default() };
        let ov = OverloadConfig {
            admission: Some(AdmissionConfig {
                queue_cap,
                deadline_headroom: headroom,
                rate_limit: if rate_limited == 1 {
                    Some(RateLimitConfig { rate_per_s_per_replica: rate / 3.0, burst: 8.0 })
                } else {
                    None
                },
            }),
            ladder: if ladder_on == 1 {
                Some(LadderConfig { dwell_ms: 500.0, ..LadderConfig::default() })
            } else {
                None
            },
            clients: if clients_on == 1 {
                Some(ClientConfig {
                    timeout_ms: timeout_s * 1_000.0,
                    retry_budget,
                    backoff,
                })
            } else {
                None
            },
            autoscale: if autoscale_on == 1 {
                Some(AutoscaleConfig::reactive(4, 4))
            } else {
                None
            },
            priority_classes: 4,
            timeline_window_ms: 5_000.0,
        };
        let r = run_overload(&cfg, &plan, &RecoveryPolicy::default(), &ov);

        // Request conservation across every terminal bucket.
        prop_assert_eq!(
            r.serving.completed + r.serving.dropped + r.faults.rejected
                + r.overload.rejected + r.faults.unfinished,
            r.serving.requests,
            "conservation violated: {:?} / {:?} / {:?}",
            r.serving,
            r.faults,
            r.overload
        );
        // Attempt conservation: offered == admitted + shed (each shed
        // counted by exactly one gate).
        let shed = r.overload.shed_queue_full + r.overload.shed_rate_limited
            + r.overload.shed_deadline + r.overload.shed_priority
            + r.overload.shed_context;
        prop_assert_eq!(
            r.overload.offered_attempts,
            r.overload.admitted_attempts + shed,
            "attempt accounting leaked: {:?}",
            r.overload
        );
        // Retries are always a response to a timeout or a shed.
        prop_assert!(
            r.overload.client_retries <= r.overload.client_timeouts + shed,
            "spontaneous retry: {:?}",
            r.overload
        );
        // The timeline never sees more first-time arrivals than exist.
        let offered: usize = r.timeline.iter().map(|w| w.offered).sum();
        prop_assert!(offered <= r.serving.requests);
        // Determinism: the same seeds reproduce the same report.
        let again = run_overload(&cfg, &plan, &RecoveryPolicy::default(), &ov);
        prop_assert_eq!(&again, &r);
    }

    /// A disabled overload config is byte-transparent for any workload,
    /// fault plan, and recovery policy: `run_overload` must reproduce
    /// `run_with_faults` exactly, overload counters all zero, timeline
    /// empty.
    #[test]
    fn disabled_overload_is_transparent(
        plan_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        rate in 4.0f64..20.0,
        crash_mtbf_s in 4.0f64..40.0,
        hedge in 0u8..2,
        disaggregated in 0u8..2,
    ) {
        let router = if disaggregated == 1 {
            RouterPolicy::Disaggregated { prefill_fraction: 0.4 }
        } else {
            RouterPolicy::Unified
        };
        let mut cfg = ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            80,
            router,
        );
        cfg.workload.seed = workload_seed;
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: plan_seed,
            horizon_ms: 30_000.0,
            replicas: 4,
            planes: 8,
            crash_mtbf_ms: crash_mtbf_s * 1_000.0,
            crash_repair_ms: 2_000.0,
            ..FaultPlanConfig::default()
        });
        let policy =
            if hedge == 1 { RecoveryPolicy::hedged() } else { RecoveryPolicy::default() };
        let base = run_with_faults(&cfg, &plan, &policy);
        let ov = run_overload(&cfg, &plan, &policy, &OverloadConfig::disabled());
        prop_assert_eq!(&ov.serving, &base.serving);
        prop_assert_eq!(&ov.faults, &base.faults);
        prop_assert_eq!(ov.overload, OverloadStats::default());
        prop_assert!(ov.timeline.is_empty());
    }
}
