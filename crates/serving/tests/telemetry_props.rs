//! Cross-crate property: the telemetry histogram's log-bucketed
//! `quantile(p)` agrees with the exact nearest-rank
//! `serving::metrics::percentile` over the same samples to within one
//! bucket width (a factor of `growth()` ≈ 2^(1/8)), and the endpoints
//! (p = 0 and p = 100) are exact.

use dsv3_serving::percentile;
use dsv3_telemetry::{growth, Histogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantile_brackets_exact_percentile(
        samples in prop::collection::vec(0.001f64..1e6, 1..400),
        p in 0.0f64..100.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = percentile(&sorted, p);
        let q = h.quantile(p);
        // The bucketed estimate can only round a sample *up* to its
        // bucket's upper bound (clamped to [min, max]), so it brackets
        // the exact value within one multiplicative bucket width.
        prop_assert!(q >= exact - 1e-9, "p={p}: quantile {q} below exact {exact}");
        prop_assert!(
            q <= exact * growth() * (1.0 + 1e-9),
            "p={p}: quantile {q} more than one bucket above exact {exact}"
        );
    }

    #[test]
    fn endpoints_match_exactly(samples in prop::collection::vec(0.001f64..1e6, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(h.quantile(0.0), percentile(&sorted, 0.0));
        prop_assert_eq!(h.quantile(100.0), percentile(&sorted, 100.0));
    }
}
