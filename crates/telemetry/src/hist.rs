//! Log-bucketed histograms with a nearest-rank `quantile()`.
//!
//! Buckets grow geometrically by `2^(1/8)` (≈ 9% relative width), so a
//! histogram of millions of latency samples costs a few hundred bucket
//! counters while `quantile(p)` stays within one bucket width of the
//! exact nearest-rank percentile (`dsv3_serving::metrics::percentile`)
//! over the same samples — the property the telemetry proptests pin
//! down.

use std::collections::BTreeMap;

/// Natural log of the bucket growth factor: buckets grow by `2^(1/8)`.
const LN_GROWTH: f64 = std::f64::consts::LN_2 / 8.0;

/// The multiplicative bucket width (`2^(1/8)` ≈ 1.0905): bucket `b`
/// covers `[growth^b, growth^(b+1))`.
#[must_use]
pub fn growth() -> f64 {
    LN_GROWTH.exp()
}

/// A log-bucketed histogram over positive samples (non-positive samples
/// land in a dedicated underflow bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket index → count; bucket `b` covers `[growth^b, growth^(b+1))`.
    counts: BTreeMap<i32, u64>,
    /// Samples `<= 0` (latencies can legitimately be exactly zero).
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. Non-finite samples are ignored (they carry no
    /// rank information and would poison `sum`).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if v > 0.0 {
            let b = (v.ln() / LN_GROWTH).floor() as i32;
            *self.counts.entry(b).or_insert(0) += 1;
        } else {
            self.zero_count += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (exact, not bucketed).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of an empty histogram");
        self.min
    }

    /// Largest sample (exact, not bucketed).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of an empty histogram");
        self.max
    }

    /// Arithmetic mean (exact, not bucketed).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of an empty histogram");
        self.sum / self.count as f64
    }

    /// Nearest-rank quantile, `p` in `[0, 100]` — the same convention as
    /// `dsv3_serving::metrics::percentile`. `p = 0` returns the exact
    /// minimum and `p = 100` the exact maximum; interior quantiles
    /// return the upper bound of the bucket holding the rank-selected
    /// sample (clamped to `[min, max]`), so the result is within one
    /// bucket width (a factor of [`growth`]) of the exact percentile.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is outside `[0, 100]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(self.count > 0, "quantile of an empty histogram");
        assert!((0.0..=100.0).contains(&p), "p={p} out of range");
        if p == 0.0 {
            return self.min;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.zero_count;
        if rank <= cum {
            // The rank falls among the non-positive samples; min is the
            // tightest value we kept for that bucket.
            return self.min;
        }
        for (&b, &c) in &self.counts {
            cum += c;
            if cum >= rank {
                let hi = (f64::from(b + 1) * LN_GROWTH).exp();
                return hi.min(self.max).max(self.min);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_brackets_exact_percentile() {
        let mut h = Histogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| f64::from(i) * 0.37).collect();
        for &s in &samples {
            h.observe(s);
        }
        for p in [0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let q = h.quantile(p);
            assert!(q >= exact - 1e-12, "p={p}: q {q} < exact {exact}");
            assert!(q <= exact * growth() * (1.0 + 1e-9), "p={p}: q {q} >> exact {exact}");
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let mut h = Histogram::new();
        for v in [3.5, 1.25, 9.0, 2.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 1.25);
        assert_eq!(h.quantile(100.0), 9.0);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 3.9375).abs() < 1e-12);
    }

    #[test]
    fn zero_and_negative_samples_use_the_underflow_bucket() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-2.0);
        h.observe(5.0);
        assert_eq!(h.quantile(0.0), -2.0);
        assert_eq!(h.quantile(100.0), 5.0);
        // Rank 2 of 3 is still in the underflow bucket.
        assert_eq!(h.quantile(50.0), -2.0);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(50.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn quantile_rejects_empty() {
        let _ = Histogram::new().quantile(50.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.observe(7.5);
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(h.quantile(p), 7.5);
        }
    }

    #[test]
    fn p999_sits_between_p99_and_max() {
        let mut h = Histogram::new();
        // 499 fast samples and one huge straggler: p99 must not see it
        // (rank 495 of 500), p999 (rank 500) and p100 must.
        for _ in 0..499 {
            h.observe(1.0);
        }
        h.observe(1_000.0);
        let p99 = h.quantile(99.0);
        assert!((1.0..=growth() * 1.000_001).contains(&p99), "p99 {p99} saw the straggler");
        let p999 = h.quantile(99.9);
        assert!(p999 >= 1_000.0 / growth() && p999 <= 1_000.0, "p999 {p999}");
        assert_eq!(h.quantile(100.0), 1_000.0);
        assert!(p99 <= p999 && p999 <= h.quantile(100.0));
    }

    #[test]
    fn endpoint_quantiles_are_exact_for_every_size() {
        // p0 and p100 return the exact (unbucketed) extremes whatever
        // the sample count, including n = 1 and n = 2.
        for n in [1usize, 2, 3, 10, 101] {
            let mut h = Histogram::new();
            for i in 0..n {
                h.observe(0.3 + i as f64 * 1.7);
            }
            assert_eq!(h.quantile(0.0), 0.3, "n={n}");
            assert_eq!(h.quantile(100.0), 0.3 + (n - 1) as f64 * 1.7, "n={n}");
        }
    }
}
