//! Alert lifecycle records and incident attribution.
//!
//! [`crate::watch`] turns recorded series into alert *episodes*
//! (pending → firing → resolved, with dwell so one noisy window never
//! pages). This module holds the resulting [`Alert`] records, correlates
//! each alert's onset with the fault/chaos/overload instant events the
//! run recorded — producing a ranked [`BlameEntry`] table per alert —
//! and renders the whole thing as a deterministic incident report (text
//! via [`IncidentReport::render`], JSON via serde).
//!
//! Attribution is deliberately simple and explainable: an instant event
//! at time `t` supports an alert with onset `o` (its pending edge) with
//! weight `exp(-(o - t) / tau)` when `t` falls inside the lookback
//! window. Repeated causes accumulate weight, so a storm of
//! `client-timeout` instants just before goodput collapses outranks a
//! single unlucky crash an aeon earlier.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::recorder::Recorder;

/// How alert onsets are correlated with recorded instant events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlameConfig {
    /// How far before the alert onset an event may lie and still be
    /// considered a candidate cause (ms).
    pub lookback_ms: f64,
    /// Exponential-decay constant of the proximity weight (ms).
    pub tau_ms: f64,
    /// Ranked causes kept per alert (and in the report-level table).
    pub max_causes: usize,
}

impl Default for BlameConfig {
    fn default() -> Self {
        Self { lookback_ms: 30_000.0, tau_ms: 10_000.0, max_causes: 5 }
    }
}

/// One ranked cause in a blame table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlameEntry {
    /// Normalized event label (`"client-timeout"`, `"inject crash"`, ...).
    pub cause: String,
    /// Trace category of the events (`"overload"`, `"fault"`, ...).
    pub cat: String,
    /// Instants of this cause inside the lookback window.
    pub count: u64,
    /// Accumulated proximity weight (higher = more proximate cause).
    pub score: f64,
}

/// One alert episode produced by the watch detectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Experiment scope the signal belongs to (`"spike-none"`, ...).
    pub scope: String,
    /// Detector that raised it (`"burn-rate"`, `"changepoint"`,
    /// `"outlier"`, `"metastability"`).
    pub detector: String,
    /// Signal within the detector (`"goodput"`, `"queue_depth"`,
    /// `"replica3"`, ...).
    pub signal: String,
    /// `"page"` for SLO-threatening alerts, `"warn"` for anomalies.
    pub severity: String,
    /// Window start (ms) when the condition first held — the onset used
    /// for blame correlation.
    pub pending_ms: f64,
    /// Window start (ms) when the condition had held for the detector's
    /// dwell and the alert fired.
    pub firing_ms: f64,
    /// Window start (ms) when the condition had cleared for the
    /// detector's resolve dwell; `None` if still firing at end of data.
    pub resolved_ms: Option<f64>,
    /// Human-readable detector context (peak burn, peak deviation, ...).
    pub detail: String,
    /// Ranked candidate causes near the onset.
    pub blame: Vec<BlameEntry>,
}

/// The full output of one watched run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentReport {
    /// Experiment the run came from.
    pub experiment: String,
    /// Detector evaluation window (ms).
    pub window_ms: f64,
    /// Scopes that had watchable series, in order.
    pub scopes: Vec<String>,
    /// All alert episodes, ordered by (firing, scope, detector, signal).
    pub alerts: Vec<Alert>,
    /// Report-level blame: per-alert tables merged and re-ranked.
    pub blame: Vec<BlameEntry>,
    /// Episodes that reached the firing state.
    pub firing: usize,
    /// Fired episodes that also resolved.
    pub resolved: usize,
}

/// Normalize an instant-event name into a stable cause label: sequence
/// suffixes (`"heal crash #3"`) and transition arguments
/// (`"rung-degrade 0->1"`) vary per occurrence and would fragment the
/// blame table, so both are stripped.
#[must_use]
pub fn normalize_cause(name: &str) -> String {
    let mut label = name;
    if let Some(pos) = label.rfind(" #") {
        if label[pos + 2..].chars().all(|c| c.is_ascii_digit()) && pos + 2 < label.len() {
            label = &label[..pos];
        }
    }
    if label.contains("->") {
        if let Some(first) = label.split_whitespace().next() {
            label = first;
        }
    }
    label.to_string()
}

/// One instant event flattened for correlation.
struct CauseEvent {
    ts_ms: f64,
    scope: String,
    cause: String,
    cat: String,
}

/// Collect every instant event (`ph == "i"`) from the recorder, stamped
/// with the scope owning its process track. Trace timestamps are
/// microseconds; everything here is converted to ms to match series
/// time.
fn cause_events(rec: &Recorder) -> Vec<CauseEvent> {
    let pid_scope: BTreeMap<u64, String> = rec
        .processes()
        .iter()
        .map(|(label, &pid)| {
            let scope = label.split('/').next().unwrap_or(label).to_string();
            (pid, scope)
        })
        .collect();
    rec.events()
        .iter()
        .filter(|ev| ev.ph == "i")
        .map(|ev| CauseEvent {
            ts_ms: ev.ts / 1000.0,
            scope: pid_scope.get(&ev.pid).cloned().unwrap_or_default(),
            cause: normalize_cause(&ev.name),
            cat: ev.cat.clone(),
        })
        .collect()
}

fn rank(table: BTreeMap<(String, String), (u64, f64)>, max_causes: usize) -> Vec<BlameEntry> {
    let mut entries: Vec<BlameEntry> = table
        .into_iter()
        .map(|((cause, cat), (count, score))| BlameEntry { cause, cat, count, score })
        .collect();
    entries.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.cause.cmp(&b.cause)));
    entries.truncate(max_causes);
    entries
}

/// Fill in each alert's blame table from the recorder's instant events,
/// and return the report-level merged table.
pub fn attribute(rec: &Recorder, alerts: &mut [Alert], cfg: &BlameConfig) -> Vec<BlameEntry> {
    let events = cause_events(rec);
    let mut global: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    for alert in alerts.iter_mut() {
        let onset = alert.pending_ms;
        let mut table: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
        for ev in events.iter().filter(|ev| ev.scope == alert.scope) {
            if ev.ts_ms > onset || ev.ts_ms < onset - cfg.lookback_ms {
                continue;
            }
            let w = (-(onset - ev.ts_ms) / cfg.tau_ms).exp();
            let slot = table.entry((ev.cause.clone(), ev.cat.clone())).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += w;
            let g = global.entry((ev.cause.clone(), ev.cat.clone())).or_insert((0, 0.0));
            g.0 += 1;
            g.1 += w;
        }
        alert.blame = rank(table, cfg.max_causes);
    }
    rank(global, cfg.max_causes)
}

impl IncidentReport {
    /// Render the report as deterministic fixed-precision text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "incident report: {} (window {:.0} ms)\n",
            self.experiment, self.window_ms
        ));
        out.push_str(&format!("scopes: {}\n", self.scopes.join(", ")));
        out.push_str(&format!("alerts: {} fired, {} resolved\n", self.firing, self.resolved));
        for (i, a) in self.alerts.iter().enumerate() {
            let resolved = match a.resolved_ms {
                Some(t) => format!("resolved {t:.0} ms"),
                None => "still firing".to_string(),
            };
            out.push_str(&format!(
                "\n[{}] {} {}/{} {}\n    pending {:.0} ms, firing {:.0} ms, {}\n    {}\n",
                i + 1,
                a.scope,
                a.detector,
                a.signal,
                a.severity,
                a.pending_ms,
                a.firing_ms,
                resolved,
                a.detail,
            ));
            if !a.blame.is_empty() {
                let causes: Vec<String> = a
                    .blame
                    .iter()
                    .map(|b| {
                        format!("{} [{}] (x{}, score {:.3})", b.cause, b.cat, b.count, b.score)
                    })
                    .collect();
                out.push_str(&format!("    blame: {}\n", causes.join("; ")));
            }
        }
        if !self.blame.is_empty() {
            out.push_str("\ntop causes overall:\n");
            for b in &self.blame {
                out.push_str(&format!(
                    "  {} [{}] (x{}, score {:.3})\n",
                    b.cause, b.cat, b.count, b.score
                ));
            }
        }
        out
    }

    /// Serialize to pretty JSON (`--incidents-out`).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("null"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(scope: &str, pending_ms: f64) -> Alert {
        Alert {
            scope: scope.to_string(),
            detector: "burn-rate".to_string(),
            signal: "goodput".to_string(),
            severity: "page".to_string(),
            pending_ms,
            firing_ms: pending_ms + 5_000.0,
            resolved_ms: None,
            detail: "test".to_string(),
            blame: Vec::new(),
        }
    }

    #[test]
    fn normalizes_sequence_and_transition_labels() {
        assert_eq!(normalize_cause("heal crash #3"), "heal crash");
        assert_eq!(normalize_cause("inject straggler #12"), "inject straggler");
        assert_eq!(normalize_cause("rung-degrade 0->1"), "rung-degrade");
        assert_eq!(normalize_cause("client-timeout"), "client-timeout");
        assert_eq!(normalize_cause("fail link3"), "fail link3");
    }

    #[test]
    fn attribution_ranks_proximate_repeated_causes_first() {
        let mut rec = Recorder::new();
        let pid = rec.process("s/requests");
        let tid = rec.thread(pid, "clients");
        // One distant crash, many near timeouts (ts in µs).
        rec.instant(pid, tid, "fault", "inject crash #1", 1_000.0 * 1000.0);
        for i in 0..10 {
            rec.instant(pid, tid, "overload", "client-timeout", (28_000.0 + f64::from(i)) * 1000.0);
        }
        let mut alerts = vec![alert("s", 30_000.0)];
        let global = attribute(&rec, &mut alerts, &BlameConfig::default());
        let blame = &alerts[0].blame;
        assert_eq!(blame[0].cause, "client-timeout");
        assert_eq!(blame[0].count, 10);
        assert!(blame[0].score > blame[1].score);
        assert_eq!(blame[1].cause, "inject crash");
        assert_eq!(global[0].cause, "client-timeout");
    }

    #[test]
    fn attribution_respects_scope_and_lookback() {
        let mut rec = Recorder::new();
        let pid_a = rec.process("a/engine");
        let pid_b = rec.process("b/engine");
        rec.instant(pid_a, 0, "fault", "inject crash", 29_000.0 * 1000.0);
        rec.instant(pid_b, 0, "fault", "inject flap", 29_000.0 * 1000.0);
        // After the onset: must be ignored.
        rec.instant(pid_a, 0, "fault", "inject sdc", 31_000.0 * 1000.0);
        let mut alerts = vec![alert("a", 30_000.0)];
        attribute(&rec, &mut alerts, &BlameConfig::default());
        assert_eq!(alerts[0].blame.len(), 1);
        assert_eq!(alerts[0].blame[0].cause, "inject crash");
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut a = alert("s", 30_000.0);
        a.blame = vec![BlameEntry {
            cause: "client-timeout".to_string(),
            cat: "overload".to_string(),
            count: 3,
            score: 2.5,
        }];
        let report = IncidentReport {
            experiment: "overload".to_string(),
            window_ms: 5_000.0,
            scopes: vec!["s".to_string()],
            alerts: vec![a],
            blame: Vec::new(),
            firing: 1,
            resolved: 0,
        };
        let text = report.render();
        assert_eq!(text, report.render());
        assert!(text.contains("incident report: overload"));
        assert!(text.contains("burn-rate/goodput page"));
        assert!(text.contains("client-timeout [overload] (x3, score 2.500)"));
        assert!(text.contains("still firing"));
        let json = report.to_json();
        let back: IncidentReport = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, report);
    }
}
