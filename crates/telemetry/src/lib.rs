//! # dsv3-telemetry — deterministic sim-time observability
//!
//! The simulators in this workspace (`dsv3-serving`, `dsv3-netsim`, the
//! fault drill) emit end-of-run aggregates; decomposing a surprising
//! TPOT number or a retention dip needs *where the time went*. This
//! crate is the observability substrate:
//!
//! - [`Recorder`] — labeled counters, gauges, and log-bucketed
//!   [`Histogram`]s, plus span/instant/counter-sample trace events. Every
//!   timestamp is **simulation time** supplied by the instrumented code
//!   (never a wall clock), so traces are byte-reproducible per seed.
//! - [`ChromeTrace`] — export in the Chrome trace-event JSON format,
//!   loadable in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`.
//! - [`RunManifest`] — experiment name, seed, config hash, crate
//!   version, and a counter snapshot, attached to instrumented reports
//!   so any artifact can be traced back to the exact run that made it.
//!
//! A **disabled** recorder ([`Recorder::disabled`]) is a strict no-op:
//! every method early-returns without allocating, formatting, or
//! branching on recorded state, so instrumented simulators produce
//! byte-identical reports with telemetry off.
//!
//! ```
//! use dsv3_telemetry::Recorder;
//!
//! let mut rec = Recorder::new();
//! let pid = rec.process("engine");
//! rec.span(pid, 7, "request", "decode", 1_000.0, 3_500.0);
//! rec.counter_add("completed", 1);
//! rec.observe("ttft_ms", 41.5);
//! let trace = rec.export_trace();
//! assert_eq!(trace.traceEvents.len(), 2); // process_name metadata + span
//! ```

#![forbid(unsafe_code)]

pub mod hist;
pub mod incident;
pub mod manifest;
pub mod recorder;
pub mod series;
pub mod trace;
pub mod watch;

pub use hist::{growth, Histogram};
pub use incident::{Alert, BlameConfig, BlameEntry, IncidentReport};
pub use manifest::{
    config_hash, manifest_wrap, validate_metrics_document, MetricsDocStats, MetricsDocument,
    RunManifest,
};
pub use recorder::{
    HistogramSummary, MetricsSnapshot, Recorder, DEFAULT_MAX_EVENTS, DROPPED_EVENTS_COUNTER,
};
pub use series::{Series, SeriesBucket, DEFAULT_MAX_BUCKETS};
pub use trace::{validate_chrome_trace, ChromeTrace, TraceEvent, TraceStats};
pub use watch::{
    evaluate, BurnRateConfig, ChangepointConfig, MetastabilityConfig, OutlierConfig, WatchConfig,
};
