//! Run manifests: enough provenance to trace any emitted artifact back
//! to the run that produced it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::recorder::{MetricsSnapshot, Recorder};

/// Provenance of one instrumented run, attached as the `manifest`
/// section of instrumented JSON reports and metrics documents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Experiment name (the registry entry).
    pub experiment: String,
    /// Seed the run was driven by (0 when the experiment is seedless).
    pub seed: u64,
    /// FNV-1a hash of the serialized configuration ([`config_hash`]).
    pub config_hash: String,
    /// Workspace crate version the run was built from.
    pub crate_version: String,
    /// Counter snapshot at export time.
    pub counters: BTreeMap<String, u64>,
}

impl RunManifest {
    /// Build a manifest from a finished run's recorder.
    #[must_use]
    pub fn capture(experiment: &str, seed: u64, config_json: &str, rec: &Recorder) -> Self {
        Self {
            experiment: experiment.to_string(),
            seed,
            config_hash: config_hash(config_json),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            counters: rec.counters().clone(),
        }
    }
}

/// The `--metrics-out` document: manifest + full metrics snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsDocument {
    /// Provenance of the run.
    pub manifest: RunManifest,
    /// Every labeled counter, gauge, and histogram summary.
    pub metrics: MetricsSnapshot,
}

/// 64-bit FNV-1a over the serialized configuration, rendered as
/// `fnv1a64:<16 hex digits>`. Equal configs hash equal; the hash is part
/// of the manifest so config drift between runs is detectable.
#[must_use]
pub fn config_hash(config_json: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in config_json.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a64:{h:016x}")
}

/// Wrap an experiment's JSON report in a `{"manifest": ..., "report":
/// ...}` document. The report is re-parsed (not string-spliced) so the
/// result is structurally valid whatever the report contains.
///
/// Malformed report JSON (a workspace bug, not a user error) degrades
/// to a `null` report rather than tearing down the run.
#[must_use]
pub fn manifest_wrap(manifest: &RunManifest, report_json: &str) -> String {
    let report: serde_json::Value =
        serde_json::from_str(report_json).unwrap_or(serde_json::Value::Null);
    let manifest_value: serde_json::Value = serde_json::to_string(manifest)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or(serde_json::Value::Null);
    let doc = serde_json::Value::Object(vec![
        ("manifest".to_string(), manifest_value),
        ("report".to_string(), report),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| String::from("null"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(config_hash(""), "fnv1a64:cbf29ce484222325");
        assert_eq!(config_hash("a"), "fnv1a64:af63dc4c8601ec8c");
        assert_eq!(config_hash("foobar"), "fnv1a64:85944171f73967e8");
    }

    #[test]
    fn capture_reads_counters() {
        let mut rec = Recorder::new();
        rec.counter_add("unified.completed", 600);
        let m = RunManifest::capture("serving", 42, "{\"a\":1}", &rec);
        assert_eq!(m.experiment, "serving");
        assert_eq!(m.seed, 42);
        assert_eq!(m.counters["unified.completed"], 600);
        assert!(m.config_hash.starts_with("fnv1a64:"));
        assert!(!m.crate_version.is_empty());
    }

    #[test]
    fn wrap_produces_manifest_and_report_sections() {
        let m = RunManifest::capture("serving", 1, "{}", &Recorder::new());
        let doc = manifest_wrap(&m, "{\"rows\": [1, 2]}");
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid");
        let obj = v.as_object().expect("object");
        assert_eq!(obj[0].0, "manifest");
        assert_eq!(obj[1].0, "report");
        let back: RunManifest =
            serde_json::from_str(&serde_json::to_string(&m).expect("serializes"))
                .expect("round-trips");
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_is_deterministic() {
        let mut r1 = Recorder::new();
        let mut r2 = Recorder::new();
        for r in [&mut r1, &mut r2] {
            r.counter_add("x", 3);
            r.counter_add("y", 1);
        }
        let a = RunManifest::capture("e", 9, "cfg", &r1);
        let b = RunManifest::capture("e", 9, "cfg", &r2);
        assert_eq!(
            serde_json::to_string(&a).expect("serializes"),
            serde_json::to_string(&b).expect("serializes")
        );
    }
}
