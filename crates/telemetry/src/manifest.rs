//! Run manifests: enough provenance to trace any emitted artifact back
//! to the run that produced it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::recorder::{MetricsSnapshot, Recorder};

/// Provenance of one instrumented run, attached as the `manifest`
/// section of instrumented JSON reports and metrics documents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Experiment name (the registry entry).
    pub experiment: String,
    /// Seed the run was driven by (0 when the experiment is seedless).
    pub seed: u64,
    /// FNV-1a hash of the serialized configuration ([`config_hash`]).
    pub config_hash: String,
    /// Workspace crate version the run was built from.
    pub crate_version: String,
    /// Trace events dropped at the recorder's buffer cap (0 in any
    /// healthy run; nonzero means the trace is incomplete).
    pub dropped_events: u64,
    /// Counter snapshot at export time.
    pub counters: BTreeMap<String, u64>,
}

impl RunManifest {
    /// Build a manifest from a finished run's recorder.
    #[must_use]
    pub fn capture(experiment: &str, seed: u64, config_json: &str, rec: &Recorder) -> Self {
        Self {
            experiment: experiment.to_string(),
            seed,
            config_hash: config_hash(config_json),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            dropped_events: rec.dropped_events(),
            counters: rec.counters().clone(),
        }
    }
}

/// The `--metrics-out` document: manifest + full metrics snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsDocument {
    /// Provenance of the run.
    pub manifest: RunManifest,
    /// Every labeled counter, gauge, and histogram summary.
    pub metrics: MetricsSnapshot,
}

/// 64-bit FNV-1a over the serialized configuration, rendered as
/// `fnv1a64:<16 hex digits>`. Equal configs hash equal; the hash is part
/// of the manifest so config drift between runs is detectable.
#[must_use]
pub fn config_hash(config_json: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in config_json.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a64:{h:016x}")
}

/// Wrap an experiment's JSON report in a `{"manifest": ..., "report":
/// ...}` document. The report is re-parsed (not string-spliced) so the
/// result is structurally valid whatever the report contains.
///
/// Malformed report JSON (a workspace bug, not a user error) degrades
/// to a `null` report rather than tearing down the run.
#[must_use]
pub fn manifest_wrap(manifest: &RunManifest, report_json: &str) -> String {
    let report: serde_json::Value =
        serde_json::from_str(report_json).unwrap_or(serde_json::Value::Null);
    let manifest_value: serde_json::Value = serde_json::to_string(manifest)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or(serde_json::Value::Null);
    let doc = serde_json::Value::Object(vec![
        ("manifest".to_string(), manifest_value),
        ("report".to_string(), report),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| String::from("null"))
}

/// What [`validate_metrics_document`] counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsDocStats {
    /// Counters in the metrics section.
    pub counters: usize,
    /// Gauges in the metrics section.
    pub gauges: usize,
    /// Histogram summaries in the metrics section.
    pub histograms: usize,
    /// Dropped trace events reported by the manifest.
    pub dropped_events: u64,
}

/// Parse `json` as a `--metrics-out` document ([`MetricsDocument`]) and
/// sanity-check it: manifest provenance fields, numeric counters and
/// gauges, and internally-consistent histogram summaries (quantiles
/// ordered, bracketed by min/max). The metrics sibling of
/// [`crate::trace::validate_chrome_trace`], used by `dsv3 check-metrics`.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn validate_metrics_document(json: &str) -> Result<MetricsDocStats, String> {
    let doc: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let Some(entries) = doc.as_object() else {
        return Err("top level is not a JSON object".into());
    };
    let get = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);

    let Some(manifest) = get("manifest").and_then(serde_json::Value::as_object) else {
        return Err("missing \"manifest\" object".into());
    };
    let mget = |name: &str| manifest.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    for key in ["experiment", "config_hash", "crate_version"] {
        if !matches!(mget(key), Some(serde_json::Value::Str(_))) {
            return Err(format!("manifest: missing string \"{key}\""));
        }
    }
    if let Some(serde_json::Value::Str(hash)) = mget("config_hash") {
        if !hash.starts_with("fnv1a64:") {
            return Err(format!("manifest: config_hash {hash:?} lacks fnv1a64: prefix"));
        }
    }
    for key in ["seed", "dropped_events"] {
        if mget(key).and_then(serde_json::Value::as_f64).is_none() {
            return Err(format!("manifest: missing numeric \"{key}\""));
        }
    }
    let dropped_events =
        mget("dropped_events").and_then(serde_json::Value::as_f64).unwrap_or(0.0) as u64;

    let Some(metrics) = get("metrics").and_then(serde_json::Value::as_object) else {
        return Err("missing \"metrics\" object".into());
    };
    let sget = |name: &str| metrics.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let section = |name: &str| -> Result<&[(String, serde_json::Value)], String> {
        sget(name)
            .and_then(serde_json::Value::as_object)
            .ok_or_else(|| format!("metrics: missing \"{name}\" object"))
    };

    let counters = section("counters")?;
    for (name, v) in counters {
        if v.as_f64().is_none() {
            return Err(format!("counter {name:?}: not numeric"));
        }
    }
    let gauges = section("gauges")?;
    for (name, v) in gauges {
        if v.as_f64().is_none() {
            return Err(format!("gauge {name:?}: not numeric"));
        }
    }
    let histograms = section("histograms")?;
    for (name, v) in histograms {
        let Some(fields) = v.as_object() else {
            return Err(format!("histogram {name:?}: not an object"));
        };
        let hget = |key: &str| fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_f64());
        let mut vals = [0.0_f64; 9];
        let keys = ["count", "sum", "mean", "min", "max", "p50", "p95", "p99", "p999"];
        for (slot, key) in vals.iter_mut().zip(keys) {
            match hget(key) {
                Some(x) => *slot = x,
                None => return Err(format!("histogram {name:?}: missing numeric \"{key}\"")),
            }
        }
        let [count, _, _, min, max, p50, p95, p99, p999] = vals;
        if count < 1.0 {
            return Err(format!("histogram {name:?}: empty (count {count})"));
        }
        let ordered = min <= p50 && p50 <= p95 && p95 <= p99 && p99 <= p999 && p999 <= max;
        if !ordered {
            return Err(format!(
                "histogram {name:?}: quantiles out of order \
                 (min {min} p50 {p50} p95 {p95} p99 {p99} p999 {p999} max {max})"
            ));
        }
    }

    Ok(MetricsDocStats {
        counters: counters.len(),
        gauges: gauges.len(),
        histograms: histograms.len(),
        dropped_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(config_hash(""), "fnv1a64:cbf29ce484222325");
        assert_eq!(config_hash("a"), "fnv1a64:af63dc4c8601ec8c");
        assert_eq!(config_hash("foobar"), "fnv1a64:85944171f73967e8");
    }

    #[test]
    fn capture_reads_counters() {
        let mut rec = Recorder::new();
        rec.counter_add("unified.completed", 600);
        let m = RunManifest::capture("serving", 42, "{\"a\":1}", &rec);
        assert_eq!(m.experiment, "serving");
        assert_eq!(m.seed, 42);
        assert_eq!(m.counters["unified.completed"], 600);
        assert!(m.config_hash.starts_with("fnv1a64:"));
        assert!(!m.crate_version.is_empty());
    }

    #[test]
    fn wrap_produces_manifest_and_report_sections() {
        let m = RunManifest::capture("serving", 1, "{}", &Recorder::new());
        let doc = manifest_wrap(&m, "{\"rows\": [1, 2]}");
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid");
        let obj = v.as_object().expect("object");
        assert_eq!(obj[0].0, "manifest");
        assert_eq!(obj[1].0, "report");
        let back: RunManifest =
            serde_json::from_str(&serde_json::to_string(&m).expect("serializes"))
                .expect("round-trips");
        assert_eq!(back, m);
    }

    #[test]
    fn validate_accepts_real_metrics_document() {
        let mut rec = Recorder::new();
        rec.counter_add("done", 3);
        rec.gauge_set("util", 0.5);
        for v in [1.0, 5.0, 9.0] {
            rec.observe("lat", v);
        }
        let doc = MetricsDocument {
            manifest: RunManifest::capture("serving", 7, "{}", &rec),
            metrics: rec.snapshot(),
        };
        let json = serde_json::to_string(&doc).expect("serializes");
        let stats = validate_metrics_document(&json).expect("valid");
        assert_eq!(
            stats,
            MetricsDocStats { counters: 1, gauges: 1, histograms: 1, dropped_events: 0 }
        );
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_metrics_document("not json").is_err());
        assert!(validate_metrics_document("{}").is_err());
        assert!(validate_metrics_document("{\"manifest\": {}, \"metrics\": {}}").is_err());
        // Valid manifest but metrics sections missing.
        let m = RunManifest::capture("e", 1, "{}", &Recorder::new());
        let mjson = serde_json::to_string(&m).expect("serializes");
        let doc = format!("{{\"manifest\": {mjson}, \"metrics\": {{}}}}");
        assert!(validate_metrics_document(&doc).is_err());
        // Out-of-order quantiles are caught.
        let bad = format!(
            "{{\"manifest\": {mjson}, \"metrics\": {{\"counters\": {{}}, \"gauges\": {{}}, \
             \"histograms\": {{\"h\": {{\"count\": 1, \"sum\": 1, \"mean\": 1, \"min\": 1, \
             \"max\": 1, \"p50\": 2, \"p95\": 1, \"p99\": 1, \"p999\": 1}}}}}}}}"
        );
        assert!(validate_metrics_document(&bad).is_err());
    }

    #[test]
    fn capture_surfaces_dropped_events() {
        let mut rec = Recorder::new();
        rec.set_max_events(1);
        rec.instant(1, 1, "c", "a", 0.0);
        rec.instant(1, 1, "c", "b", 1.0);
        let m = RunManifest::capture("e", 1, "{}", &rec);
        assert_eq!(m.dropped_events, 1);
        assert_eq!(m.counters[crate::recorder::DROPPED_EVENTS_COUNTER], 1);
    }

    #[test]
    fn manifest_is_deterministic() {
        let mut r1 = Recorder::new();
        let mut r2 = Recorder::new();
        for r in [&mut r1, &mut r2] {
            r.counter_add("x", 3);
            r.counter_add("y", 1);
        }
        let a = RunManifest::capture("e", 9, "cfg", &r1);
        let b = RunManifest::capture("e", 9, "cfg", &r2);
        assert_eq!(
            serde_json::to_string(&a).expect("serializes"),
            serde_json::to_string(&b).expect("serializes")
        );
    }
}
