//! The [`Recorder`]: where instrumented simulators deposit metrics and
//! trace events.
//!
//! All storage is ordered (`BTreeMap` + append-order `Vec`), and all
//! timestamps come from the caller's simulation clock, so a recorder
//! filled by a deterministic simulation exports byte-identical JSON on
//! every run. A disabled recorder early-returns from every method: the
//! instrumented hot loops pay one branch and nothing else.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::hist::Histogram;
use crate::series::Series;
use crate::trace::{ChromeTrace, TraceEvent};

/// Default cap on buffered trace events (satellite of ISSUE 8): generous
/// enough that no current experiment comes near it, but bounded so a
/// runaway instrumentation loop degrades to dropped events + a counter
/// instead of unbounded memory growth.
pub const DEFAULT_MAX_EVENTS: usize = 4_000_000;

/// Counter bumped once per trace event dropped at the cap; surfaced in
/// `RunManifest::dropped_events`.
pub const DROPPED_EVENTS_COUNTER: &str = "telemetry.dropped_events";

/// Bucketless summary of one histogram, for metrics snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (nearest rank, within one bucket width).
    pub p50: f64,
    /// 95th percentile (within one bucket width).
    pub p95: f64,
    /// 99th percentile (within one bucket width).
    pub p99: f64,
    /// 99.9th percentile (within one bucket width).
    pub p999: f64,
}

/// Every labeled metric a [`Recorder`] accumulated, in serializable form
/// (`--metrics-out`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins point-in-time values.
    pub gauges: BTreeMap<String, f64>,
    /// Distribution summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Sim-time telemetry sink: counters, gauges, histograms, and Chrome
/// trace events. See the crate docs for the determinism and disabled
/// no-op contracts.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Series>,
    events: Vec<TraceEvent>,
    /// Process label → pid, in registration order.
    pids: BTreeMap<String, u64>,
    /// (pid, thread label) → tid, in registration order per pid.
    tids: BTreeMap<(u64, String), u64>,
    next_pid: u64,
    next_tid: BTreeMap<u64, u64>,
    max_events: usize,
    dropped_events: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Recorder {
    /// An enabled recorder.
    #[must_use]
    pub fn new() -> Self {
        Self { enabled: true, ..Self::disabled() }
    }

    /// A disabled recorder: every method is a no-op. This is what the
    /// un-instrumented `run()` entry points pass through their traced
    /// internals, keeping the default path byte-identical.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            series: BTreeMap::new(),
            events: Vec::new(),
            pids: BTreeMap::new(),
            tids: BTreeMap::new(),
            next_pid: 1,
            next_tid: BTreeMap::new(),
            max_events: DEFAULT_MAX_EVENTS,
            dropped_events: 0,
        }
    }

    /// Override the trace-event buffer cap (see [`DEFAULT_MAX_EVENTS`]).
    /// Events arriving past the cap are dropped, counted in
    /// [`DROPPED_EVENTS_COUNTER`] and [`Recorder::dropped_events`].
    pub fn set_max_events(&mut self, max_events: usize) {
        self.max_events = max_events;
    }

    /// Trace events dropped at the buffer cap so far.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Buffer `event`, or drop it (and account for the drop) at the cap.
    /// Metric maps (counters/gauges/histograms/series) are never capped —
    /// they are bounded by label cardinality, not run length.
    fn push_event(&mut self, event: TraceEvent) {
        if self.events.len() >= self.max_events {
            self.dropped_events += 1;
            *self.counters.entry(DROPPED_EVENTS_COUNTER.to_string()).or_insert(0) += 1;
            return;
        }
        self.events.push(event);
    }

    /// Whether this recorder records anything. Instrumentation sites
    /// check this before formatting labels so the disabled path never
    /// allocates.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or look up) a trace process track named `label`,
    /// emitting the `process_name` metadata event on first use. Returns
    /// 0 when disabled.
    pub fn process(&mut self, label: &str) -> u64 {
        if !self.enabled {
            return 0;
        }
        if let Some(&pid) = self.pids.get(label) {
            return pid;
        }
        let pid = self.next_pid;
        self.next_pid += 1;
        self.pids.insert(label.to_string(), pid);
        self.push_event(meta_event("process_name", label, pid, 0));
        pid
    }

    /// Register (or look up) a named thread track under `pid`, emitting
    /// the `thread_name` metadata event on first use. Returns 0 when
    /// disabled.
    pub fn thread(&mut self, pid: u64, label: &str) -> u64 {
        if !self.enabled {
            return 0;
        }
        let key = (pid, label.to_string());
        if let Some(&tid) = self.tids.get(&key) {
            return tid;
        }
        let next = self.next_tid.entry(pid).or_insert(1);
        let tid = *next;
        *next += 1;
        self.tids.insert(key, tid);
        self.push_event(meta_event("thread_name", label, pid, tid));
        tid
    }

    /// Record a complete span (`"X"`): `[start_us, end_us]` on track
    /// `(pid, tid)`. Negative extents are clamped to zero duration.
    pub fn span(&mut self, pid: u64, tid: u64, cat: &str, name: &str, start_us: f64, end_us: f64) {
        if !self.enabled {
            return;
        }
        self.push_event(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: "X".to_string(),
            ts: start_us,
            dur: (end_us - start_us).max(0.0),
            pid,
            tid,
            args: BTreeMap::new(),
        });
    }

    /// Record an instant event (`"i"`) at `ts_us`.
    pub fn instant(&mut self, pid: u64, tid: u64, cat: &str, name: &str, ts_us: f64) {
        if !self.enabled {
            return;
        }
        self.push_event(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: "i".to_string(),
            ts: ts_us,
            dur: 0.0,
            pid,
            tid,
            args: BTreeMap::new(),
        });
    }

    /// Record a counter sample (`"C"`): viewers render these as a
    /// stacked area chart per `(pid, name)`.
    pub fn counter_sample(&mut self, pid: u64, name: &str, ts_us: f64, value: f64) {
        if !self.enabled {
            return;
        }
        let mut args = BTreeMap::new();
        args.insert("value".to_string(), serde_json::Value::Float(value));
        self.push_event(TraceEvent {
            name: name.to_string(),
            cat: "counter".to_string(),
            ph: "C".to_string(),
            ts: ts_us,
            dur: 0.0,
            pid,
            tid: 0,
            args,
        });
    }

    /// Add `delta` to the counter `name`.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the gauge `name` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert(name.to_string(), value);
    }

    /// Record `value` into the histogram `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// Record a `(sim-time, value)` sample into the bounded time series
    /// `name` (workspace convention: `ts_ms` is milliseconds of sim
    /// time). Series give gauges and counters a time dimension — they
    /// are what the `watch` detectors replay.
    pub fn series(&mut self, name: &str, ts_ms: f64, value: f64) {
        if !self.enabled {
            return;
        }
        self.series.entry(name.to_string()).or_default().record(ts_ms, value);
    }

    /// All recorded time series, keyed by name (empty when disabled).
    #[must_use]
    pub fn series_map(&self) -> &BTreeMap<String, Series> {
        &self.series
    }

    /// Read back one time series, if it exists.
    #[must_use]
    pub fn series_get(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Registered trace processes, label → pid (empty when disabled).
    /// Incident attribution uses this to map an instant event's pid back
    /// to the experiment scope that emitted it.
    #[must_use]
    pub fn processes(&self) -> &BTreeMap<String, u64> {
        &self.pids
    }

    /// The accumulated counters (empty when disabled).
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Read back one histogram, if it exists.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Trace events recorded so far.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Summarize every labeled metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    HistogramSummary {
                        count: h.count(),
                        sum: h.sum(),
                        mean: h.mean(),
                        min: h.min(),
                        max: h.max(),
                        p50: h.quantile(50.0),
                        p95: h.quantile(95.0),
                        p99: h.quantile(99.0),
                        p999: h.quantile(99.9),
                    },
                )
            })
            .collect();
        MetricsSnapshot { counters: self.counters.clone(), gauges: self.gauges.clone(), histograms }
    }

    /// Export everything recorded as a Chrome trace document.
    #[must_use]
    pub fn export_trace(&self) -> ChromeTrace {
        ChromeTrace { traceEvents: self.events.clone(), displayTimeUnit: "ms".to_string() }
    }
}

fn meta_event(kind: &str, label: &str, pid: u64, tid: u64) -> TraceEvent {
    let mut args = BTreeMap::new();
    args.insert("name".to_string(), serde_json::Value::Str(label.to_string()));
    TraceEvent {
        name: kind.to_string(),
        cat: "__metadata".to_string(),
        ph: "M".to_string(),
        ts: 0.0,
        dur: 0.0,
        pid,
        tid,
        args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_chrome_trace;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let pid = rec.process("engine");
        let tid = rec.thread(pid, "t");
        rec.span(pid, tid, "c", "s", 0.0, 5.0);
        rec.instant(pid, tid, "c", "i", 1.0);
        rec.counter_sample(pid, "batch", 2.0, 3.0);
        rec.counter_add("completed", 1);
        rec.gauge_set("g", 1.0);
        rec.observe("h", 2.0);
        assert_eq!(pid, 0);
        assert_eq!(tid, 0);
        assert!(rec.events().is_empty());
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
        assert!(rec.export_trace().traceEvents.is_empty());
    }

    #[test]
    fn process_and_thread_ids_are_stable() {
        let mut rec = Recorder::new();
        let a = rec.process("engine");
        let b = rec.process("requests");
        assert_ne!(a, b);
        assert_eq!(rec.process("engine"), a);
        let t1 = rec.thread(a, "crash");
        assert_eq!(rec.thread(a, "crash"), t1);
        assert_ne!(rec.thread(a, "flap"), t1);
        // Metadata events: 2 processes + 2 threads.
        assert_eq!(rec.events().len(), 4);
    }

    #[test]
    fn export_is_valid_chrome_trace() {
        let mut rec = Recorder::new();
        let pid = rec.process("netsim");
        rec.span(pid, 3, "flow", "flow3", 10.0, 40.0);
        rec.instant(pid, 0, "fault", "inject sdc", 12.0);
        rec.counter_sample(pid, "link0_util", 10.0, 0.75);
        let stats = validate_chrome_trace(&rec.export_trace().to_json()).expect("valid");
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.metadata, 1);
    }

    #[test]
    fn metrics_accumulate() {
        let mut rec = Recorder::new();
        rec.counter_add("done", 2);
        rec.counter_add("done", 3);
        rec.gauge_set("util", 0.5);
        rec.gauge_set("util", 0.9);
        for v in [1.0, 2.0, 3.0, 4.0] {
            rec.observe("lat", v);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters["done"], 5);
        assert!((snap.gauges["util"] - 0.9).abs() < 1e-12);
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 4.0);
        assert!(h.p50 >= 2.0 && h.p50 <= 2.0 * crate::hist::growth() * 1.000_001);
    }

    #[test]
    fn negative_span_extent_clamps_to_zero_duration() {
        let mut rec = Recorder::new();
        rec.span(1, 1, "c", "s", 5.0, 3.0);
        assert_eq!(rec.events()[0].dur, 0.0);
    }

    #[test]
    fn event_cap_drops_and_counts() {
        let mut rec = Recorder::new();
        rec.set_max_events(3);
        for i in 0..10 {
            rec.instant(1, 1, "c", "i", f64::from(i));
        }
        assert_eq!(rec.events().len(), 3);
        assert_eq!(rec.dropped_events(), 7);
        assert_eq!(rec.counters()[DROPPED_EVENTS_COUNTER], 7);
        // Metrics are not capped alongside events.
        rec.counter_add("done", 1);
        rec.observe("h", 1.0);
        rec.series("s", 0.0, 1.0);
        assert_eq!(rec.counters()["done"], 1);
        assert_eq!(rec.series_get("s").map(crate::series::Series::count), Some(1));
    }

    #[test]
    fn under_cap_nothing_drops() {
        let mut rec = Recorder::new();
        for i in 0..100 {
            rec.instant(1, 1, "c", "i", f64::from(i));
        }
        assert_eq!(rec.dropped_events(), 0);
        assert!(!rec.counters().contains_key(DROPPED_EVENTS_COUNTER));
    }

    #[test]
    fn series_accumulate_and_disabled_is_noop() {
        let mut rec = Recorder::new();
        rec.series("q", 0.5, 2.0);
        rec.series("q", 1.5, 4.0);
        let s = rec.series_get("q").expect("recorded");
        assert_eq!(s.count(), 2);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(rec.series_map().len(), 1);

        let mut off = Recorder::disabled();
        off.series("q", 0.5, 2.0);
        assert!(off.series_map().is_empty());
        assert_eq!(off.dropped_events(), 0);
    }

    #[test]
    fn snapshot_p999_brackets_tail() {
        let mut rec = Recorder::new();
        for i in 1..=1000 {
            rec.observe("lat", f64::from(i));
        }
        let h = &rec.snapshot().histograms["lat"];
        assert!(h.p999 >= h.p99);
        assert!(h.p999 <= h.max);
        assert!(h.p999 >= 999.0 / crate::hist::growth());
    }
}
