//! Bounded, deterministically-downsampled time series.
//!
//! A [`Series`] is the time-dimensioned sibling of a gauge: callers feed
//! `(timestamp, value)` samples and read back per-bucket aggregates
//! (count / min / max / last / sum). Storage is bounded — when the
//! number of occupied buckets would exceed the configured cap, the
//! bucket width doubles and width-aligned neighbours merge. The merge is
//! exact for every aggregate the bucket keeps: counts add, min/max take
//! the envelope, sums add, and `last` follows the latest-stamped sample,
//! so downsampling never invents or loses a sample (the proptests pin
//! this down).
//!
//! Everything is keyed on integer bucket indices (`floor(ts / width)`),
//! so a series filled in any order from the same samples converges to
//! the same buckets: downsampling is a pure function of the sample set
//! and the cap, never of arrival order or wall time.

use std::collections::BTreeMap;

/// Default cap on occupied buckets per series. Generous enough that a
/// three-minute serving run at millisecond resolution keeps sub-second
/// buckets, small enough that a million-sample series stays a few KiB.
pub const DEFAULT_MAX_BUCKETS: usize = 512;

/// Initial bucket width, in the caller's clock unit (the workspace
/// convention is milliseconds of simulation time).
pub const INITIAL_BUCKET_WIDTH: f64 = 1.0;

/// Aggregates of the samples that landed in one bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesBucket {
    /// Samples in the bucket.
    pub count: u64,
    /// Smallest sample value.
    pub min: f64,
    /// Largest sample value.
    pub max: f64,
    /// Sum of sample values (mean = `sum / count`).
    pub sum: f64,
    /// Value of the latest-stamped sample (ties: latest recorded).
    pub last: f64,
    /// Timestamp of the `last` sample.
    pub last_ts: f64,
}

impl SeriesBucket {
    fn of(ts: f64, value: f64) -> Self {
        Self { count: 1, min: value, max: value, sum: value, last: value, last_ts: ts }
    }

    fn absorb(&mut self, other: &SeriesBucket) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        if other.last_ts >= self.last_ts {
            self.last = other.last;
            self.last_ts = other.last_ts;
        }
    }
}

/// One bounded time-series track (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    width: f64,
    max_buckets: usize,
    buckets: BTreeMap<i64, SeriesBucket>,
    count: u64,
}

impl Default for Series {
    fn default() -> Self {
        Self::new()
    }
}

impl Series {
    /// An empty series with the default bucket cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_buckets(DEFAULT_MAX_BUCKETS)
    }

    /// An empty series bounded to at most `max_buckets` occupied buckets
    /// (clamped to at least 2 so downsampling can always terminate).
    #[must_use]
    pub fn with_max_buckets(max_buckets: usize) -> Self {
        Self {
            width: INITIAL_BUCKET_WIDTH,
            max_buckets: max_buckets.max(2),
            buckets: BTreeMap::new(),
            count: 0,
        }
    }

    /// Record one `(timestamp, value)` sample. Non-finite timestamps or
    /// values are ignored (they carry no envelope information and would
    /// poison the sums), as are timestamps too large to index.
    pub fn record(&mut self, ts: f64, value: f64) {
        if !ts.is_finite() || !value.is_finite() {
            return;
        }
        let mut idx = (ts / self.width).floor();
        // Far outside any simulated horizon; refuse rather than wrap.
        if idx.abs() >= 9.0e18 {
            return;
        }
        if !self.buckets.contains_key(&(idx as i64)) {
            while self.buckets.len() >= self.max_buckets {
                self.double_width();
                idx = (ts / self.width).floor();
            }
        }
        let key = idx as i64;
        match self.buckets.get_mut(&key) {
            Some(b) => {
                b.count += 1;
                b.min = b.min.min(value);
                b.max = b.max.max(value);
                b.sum += value;
                if ts >= b.last_ts {
                    b.last = value;
                    b.last_ts = ts;
                }
            }
            None => {
                self.buckets.insert(key, SeriesBucket::of(ts, value));
            }
        }
        self.count += 1;
    }

    /// Double the bucket width, merging width-aligned neighbours. Exact:
    /// `floor(ts / 2w) == floor(floor(ts / w) / 2)` for every `ts`, so
    /// each old bucket lands whole inside exactly one new bucket.
    fn double_width(&mut self) {
        self.width *= 2.0;
        let old = std::mem::take(&mut self.buckets);
        for (key, bucket) in old {
            let merged = key.div_euclid(2);
            match self.buckets.get_mut(&merged) {
                Some(b) => b.absorb(&bucket),
                None => {
                    self.buckets.insert(merged, bucket);
                }
            }
        }
    }

    /// Current bucket width (initially [`INITIAL_BUCKET_WIDTH`], doubled
    /// on every downsampling pass).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Total samples recorded (exact, unaffected by downsampling).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether anything was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Occupied buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Iterate the buckets in time order as `(start_ts, &bucket)`; each
    /// bucket covers `[start_ts, start_ts + width)`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, &SeriesBucket)> {
        let w = self.width;
        self.buckets.iter().map(move |(&k, b)| (k as f64 * w, b))
    }

    /// Aggregate every bucket whose *start* falls in `[from, to)`.
    /// Returns `None` when no bucket starts inside the window. The
    /// half-open convention means adjacent windows partition the buckets
    /// exactly, whatever the current bucket width.
    #[must_use]
    pub fn window(&self, from: f64, to: f64) -> Option<SeriesBucket> {
        let mut acc: Option<SeriesBucket> = None;
        for (start, b) in self.buckets() {
            if start < from || start >= to {
                continue;
            }
            match acc.as_mut() {
                Some(a) => a.absorb(b),
                None => acc = Some(*b),
            }
        }
        acc
    }

    /// Smallest recorded value, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.buckets.values().map(|b| b.min).fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Largest recorded value, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.buckets.values().map(|b| b.max).fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Timestamp of the last occupied bucket's end (an upper bound on
    /// the latest sample), if any.
    #[must_use]
    pub fn end_ts(&self) -> Option<f64> {
        self.buckets.keys().next_back().map(|&k| (k as f64 + 1.0) * self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates_one_bucket() {
        let mut s = Series::new();
        s.record(0.25, 3.0);
        s.record(0.75, 1.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.len(), 1);
        let (start, b) = s.buckets().next().unwrap();
        assert_eq!(start, 0.0);
        assert_eq!(b.count, 2);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 3.0);
        assert_eq!(b.sum, 4.0);
        assert_eq!(b.last, 1.0, "latest-stamped sample wins");
    }

    #[test]
    fn downsampling_bounds_buckets_and_preserves_count() {
        let mut s = Series::with_max_buckets(8);
        for i in 0..1000 {
            s.record(f64::from(i), f64::from(i % 10));
        }
        assert!(s.len() <= 8, "cap respected: {} buckets", s.len());
        assert_eq!(s.count(), 1000, "no sample lost");
        assert_eq!(s.buckets().map(|(_, b)| b.count).sum::<u64>(), 1000);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(9.0));
        assert!(s.width() >= 128.0, "width doubled: {}", s.width());
    }

    #[test]
    fn last_follows_the_latest_timestamp_through_merges() {
        let mut s = Series::with_max_buckets(2);
        for i in 0..64 {
            s.record(f64::from(i), f64::from(i));
        }
        let last_bucket = s.buckets().last().unwrap().1;
        assert_eq!(last_bucket.last, 63.0);
        assert_eq!(last_bucket.last_ts, 63.0);
    }

    #[test]
    fn same_samples_any_order_same_buckets() {
        let samples: Vec<(f64, f64)> =
            (0..500).map(|i| (f64::from(i) * 0.7, f64::from(i % 17))).collect();
        let mut fwd = Series::with_max_buckets(16);
        let mut rev = Series::with_max_buckets(16);
        for &(t, v) in &samples {
            fwd.record(t, v);
        }
        for &(t, v) in samples.iter().rev() {
            rev.record(t, v);
        }
        // Arrival order may leave the two at different widths mid-run;
        // force both to the coarser width before comparing.
        while fwd.width() < rev.width() {
            fwd.double_width();
        }
        while rev.width() < fwd.width() {
            rev.double_width();
        }
        let a: Vec<_> = fwd.buckets().map(|(s, b)| (s, *b)).collect();
        let b: Vec<_> = rev.buckets().map(|(s, b)| (s, *b)).collect();
        for ((sa, ba), (sb, bb)) in a.iter().zip(&b) {
            assert_eq!(sa, sb);
            assert_eq!(ba.count, bb.count);
            assert_eq!(ba.min, bb.min);
            assert_eq!(ba.max, bb.max);
            assert!((ba.sum - bb.sum).abs() < 1e-9);
            assert_eq!(ba.last, bb.last, "last is time-stamped, not order-stamped");
        }
    }

    #[test]
    fn window_partitions_half_open() {
        let mut s = Series::new();
        for i in 0..10 {
            s.record(f64::from(i) + 0.5, 1.0);
        }
        let lo = s.window(0.0, 5.0).unwrap();
        let hi = s.window(5.0, 10.0).unwrap();
        assert_eq!(lo.count + hi.count, 10);
        assert_eq!(lo.count, 5);
        assert!(s.window(10.0, 20.0).is_none());
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut s = Series::new();
        s.record(f64::NAN, 1.0);
        s.record(1.0, f64::INFINITY);
        s.record(f64::INFINITY, 1.0);
        s.record(2.0, 5.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn negative_timestamps_bucket_correctly() {
        let mut s = Series::new();
        s.record(-0.5, 2.0);
        s.record(0.5, 3.0);
        let starts: Vec<f64> = s.buckets().map(|(t, _)| t).collect();
        assert_eq!(starts, vec![-1.0, 0.0]);
    }
}
