//! Chrome trace-event JSON: the export format and a validator.
//!
//! The emitted document is the "JSON Object Format" of the Trace Event
//! spec: `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing` both load it
//! directly. Timestamps (`ts`) and durations (`dur`) are microseconds of
//! **simulation time**; `pid`/`tid` are synthetic track ids named via
//! `"M"` (metadata) events.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One trace event. Phases used by this workspace:
///
/// * `"X"` — complete event (span): `ts` + `dur`
/// * `"i"` — instant event
/// * `"C"` — counter sample (`args["value"]`)
/// * `"M"` — metadata (`process_name` / `thread_name`, `args["name"]`)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name (span label, counter name, or metadata kind).
    pub name: String,
    /// Category, used by trace viewers for filtering.
    pub cat: String,
    /// Phase code (see above).
    pub ph: String,
    /// Timestamp, microseconds of simulation time.
    pub ts: f64,
    /// Duration, microseconds (zero for non-span events).
    pub dur: f64,
    /// Synthetic process id (one per instrumented component).
    pub pid: u64,
    /// Synthetic thread id (request id, flow id, fault class, ...).
    pub tid: u64,
    /// Event arguments (counter values, metadata names).
    pub args: BTreeMap<String, serde_json::Value>,
}

/// The exported document, shaped exactly like the Trace Event spec's
/// JSON Object Format (hence the non-snake-case field names).
#[allow(non_snake_case)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTrace {
    /// All events, in recording order.
    pub traceEvents: Vec<TraceEvent>,
    /// Display unit hint for viewers (`"ms"`).
    pub displayTimeUnit: String,
}

impl ChromeTrace {
    /// Serialize to a compact JSON string (traces get large). A
    /// serialization failure (a bug in the vendored serde stand-ins)
    /// degrades to `null` rather than panicking mid-run.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| String::from("null"))
    }
}

/// What [`validate_chrome_trace`] counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total events.
    pub events: usize,
    /// `"X"` complete events (spans).
    pub spans: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"C"` counter samples.
    pub counters: usize,
    /// `"M"` metadata events.
    pub metadata: usize,
}

/// Parse `json` as a Chrome trace-event document and sanity-check every
/// event (string `name`/`ph`, numeric `ts`/`pid`/`tid`). Used by the CI
/// smoke test (`dsv3 check-trace`).
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let doc: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let Some(entries) = doc.as_object() else {
        return Err("top level is not a JSON object".into());
    };
    let Some(events) = entries.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v) else {
        return Err("missing \"traceEvents\" key".into());
    };
    let Some(events) = events.as_array() else {
        return Err("\"traceEvents\" is not an array".into());
    };
    let mut stats =
        TraceStats { events: events.len(), spans: 0, instants: 0, counters: 0, metadata: 0 };
    for (i, ev) in events.iter().enumerate() {
        let Some(fields) = ev.as_object() else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let Some(serde_json::Value::Str(ph)) = get("ph") else {
            return Err(format!("event {i}: missing string \"ph\""));
        };
        if !matches!(get("name"), Some(serde_json::Value::Str(_))) {
            return Err(format!("event {i}: missing string \"name\""));
        }
        for key in ["ts", "pid", "tid"] {
            if get(key).and_then(serde_json::Value::as_f64).is_none() {
                return Err(format!("event {i}: missing numeric \"{key}\""));
            }
        }
        match ph.as_str() {
            "X" => stats.spans += 1,
            "i" => stats.instants += 1,
            "C" => stats.counters += 1,
            "M" => stats.metadata += 1,
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ph: &str) -> TraceEvent {
        TraceEvent {
            name: "e".into(),
            cat: "test".into(),
            ph: ph.into(),
            ts: 1.5,
            dur: if ph == "X" { 2.0 } else { 0.0 },
            pid: 1,
            tid: 2,
            args: BTreeMap::new(),
        }
    }

    #[test]
    fn export_validates() {
        let trace = ChromeTrace {
            traceEvents: vec![event("X"), event("i"), event("C"), event("M")],
            displayTimeUnit: "ms".into(),
        };
        let stats = validate_chrome_trace(&trace.to_json()).expect("valid");
        assert_eq!(
            stats,
            TraceStats { events: 4, spans: 1, instants: 1, counters: 1, metadata: 1 }
        );
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": []}").is_ok());
    }

    #[test]
    fn events_round_trip_through_serde_json() {
        let mut e = event("C");
        e.args.insert("value".into(), serde_json::Value::Float(3.25));
        let json = serde_json::to_string(&e).expect("serializes");
        let back: TraceEvent = serde_json::from_str(&json).expect("parses");
        assert_eq!(e, back);
    }
}
