//! Streaming detectors over recorded time series: the SLO watchdog.
//!
//! [`evaluate`] replays every [`crate::series::Series`] a run recorded on
//! a fixed grid of sim-time windows and runs four detector families over
//! each experiment scope (the series-name prefix before the first `.`):
//!
//! | detector        | signal(s)                     | fires when |
//! |-----------------|-------------------------------|------------|
//! | `burn-rate`     | `ttft`, `tpot`, `goodput`     | short- AND long-window error rate burn the SLO budget faster than `burn_threshold`× |
//! | `changepoint`   | `queue_depth`, `goodput`, `links_down` | EWMA-standardized CUSUM drifts beyond `h_sigma` |
//! | `outlier`       | `replica{r}`                  | one replica's active load deviates from the fleet median by > max(`mad_k`·MAD, `min_abs`) |
//! | `metastability` | `goodput`                     | goodput stays below `goodput_frac`× offered for `windows` consecutive windows *after* offered load has returned to its pre-spike baseline |
//!
//! Every detector runs through the same pending → firing → resolved
//! lifecycle (dwell before paging, dwell before resolving), and every
//! alert's onset is then correlated with recorded fault/chaos/overload
//! instants by [`crate::incident::attribute`].
//!
//! Because all timestamps are simulation time, replaying the series
//! after the run is *exactly* the online computation — the detectors see
//! the same windows, in the same order, with the same values, as they
//! would have streamed during it. Byte-identical runs produce
//! byte-identical incident reports.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::incident::{attribute, Alert, BlameConfig, IncidentReport};
use crate::recorder::Recorder;
use crate::series::{Series, SeriesBucket};

/// Multi-window SLO burn-rate alerting (the SRE workbook shape: a fast
/// window to catch cliffs, a slow window to suppress blips).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnRateConfig {
    /// Fast lookback, in windows.
    pub short_windows: usize,
    /// Slow lookback, in windows.
    pub long_windows: usize,
    /// Acceptable error fraction (the SLO budget).
    pub error_budget: f64,
    /// Both lookbacks must burn budget faster than this multiple.
    pub burn_threshold: f64,
    /// Consecutive breaching windows before firing.
    pub dwell_windows: usize,
    /// Consecutive clear windows before resolving.
    pub resolve_windows: usize,
}

impl Default for BurnRateConfig {
    fn default() -> Self {
        Self {
            short_windows: 1,
            long_windows: 6,
            error_budget: 0.05,
            burn_threshold: 4.0,
            dwell_windows: 1,
            resolve_windows: 2,
        }
    }
}

/// EWMA-standardized CUSUM changepoint detection on level signals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangepointConfig {
    /// EWMA smoothing factor for the running mean/variance.
    pub alpha: f64,
    /// CUSUM slack, in standard deviations (drift smaller than this is
    /// absorbed).
    pub k_sigma: f64,
    /// CUSUM decision threshold, in standard deviations.
    pub h_sigma: f64,
    /// Windows used purely to prime the EWMA before detection starts.
    pub warmup_windows: usize,
    /// Consecutive clear windows before resolving.
    pub resolve_windows: usize,
}

impl Default for ChangepointConfig {
    fn default() -> Self {
        Self { alpha: 0.3, k_sigma: 0.5, h_sigma: 5.0, warmup_windows: 3, resolve_windows: 2 }
    }
}

/// Cross-replica straggler detection via median absolute deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierConfig {
    /// Deviation threshold, in MADs.
    pub mad_k: f64,
    /// Absolute deviation floor (suppresses MAD≈0 pathologies when the
    /// fleet is uniformly idle).
    pub min_abs: f64,
    /// Minimum replicas reporting in a window for it to count.
    pub min_peers: usize,
    /// Consecutive deviant windows before firing.
    pub dwell_windows: usize,
    /// Consecutive conforming windows before resolving.
    pub resolve_windows: usize,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        Self { mad_k: 4.0, min_abs: 2.0, min_peers: 3, dwell_windows: 2, resolve_windows: 2 }
    }
}

/// Metastable-failure detection: the load is back, the goodput is not.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetastabilityConfig {
    /// Goodput must stay below this fraction of offered load.
    pub goodput_frac: f64,
    /// "Back at baseline" means offered ≤ (1 + `load_tol`) × baseline.
    pub load_tol: f64,
    /// Consecutive degraded baseline-load windows before firing.
    pub windows: usize,
    /// A window only counts as a spike when offered exceeds this
    /// multiple of baseline; without any spike the detector is inert.
    pub min_spike_mult: f64,
}

impl Default for MetastabilityConfig {
    fn default() -> Self {
        Self { goodput_frac: 0.5, load_tol: 0.25, windows: 6, min_spike_mult: 1.5 }
    }
}

/// Top-level watchdog configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchConfig {
    /// Detector evaluation window, ms of sim time.
    pub window_ms: f64,
    /// Burn-rate detector settings.
    pub burn: BurnRateConfig,
    /// Changepoint detector settings.
    pub changepoint: ChangepointConfig,
    /// Straggler outlier detector settings.
    pub outlier: OutlierConfig,
    /// Metastability detector settings.
    pub metastability: MetastabilityConfig,
    /// Incident attribution settings.
    pub blame: BlameConfig,
}

impl Default for WatchConfig {
    fn default() -> Self {
        Self {
            window_ms: 5_000.0,
            burn: BurnRateConfig::default(),
            changepoint: ChangepointConfig::default(),
            outlier: OutlierConfig::default(),
            metastability: MetastabilityConfig::default(),
            blame: BlameConfig::default(),
        }
    }
}

/// One closed pending→firing(→resolved) episode from a lifecycle.
struct Episode {
    pending_ms: f64,
    firing_ms: f64,
    resolved_ms: Option<f64>,
    peak: f64,
}

/// The shared alert lifecycle: `dwell` consecutive active windows to
/// fire, `resolve` consecutive clear windows to resolve. A condition
/// that clears before reaching dwell never alerts.
struct Lifecycle {
    dwell: usize,
    resolve: usize,
    consec_true: usize,
    consec_false: usize,
    pending: Option<f64>,
    firing: Option<f64>,
    clear_at: Option<f64>,
    peak: f64,
    episodes: Vec<Episode>,
}

impl Lifecycle {
    fn new(dwell: usize, resolve: usize) -> Self {
        Self {
            dwell: dwell.max(1),
            resolve: resolve.max(1),
            consec_true: 0,
            consec_false: 0,
            pending: None,
            firing: None,
            clear_at: None,
            peak: 0.0,
            episodes: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.consec_true = 0;
        self.consec_false = 0;
        self.pending = None;
        self.firing = None;
        self.clear_at = None;
        self.peak = 0.0;
    }

    fn step(&mut self, start_ms: f64, active: bool, value: f64) {
        if active {
            self.consec_false = 0;
            self.clear_at = None;
            if self.pending.is_none() {
                self.pending = Some(start_ms);
            }
            self.consec_true += 1;
            self.peak = self.peak.max(value);
            if self.firing.is_none() && self.consec_true >= self.dwell {
                self.firing = Some(start_ms);
            }
        } else {
            self.consec_true = 0;
            match (self.pending, self.firing) {
                (Some(pending_ms), Some(firing_ms)) => {
                    if self.clear_at.is_none() {
                        self.clear_at = Some(start_ms);
                    }
                    self.consec_false += 1;
                    if self.consec_false >= self.resolve {
                        self.episodes.push(Episode {
                            pending_ms,
                            firing_ms,
                            resolved_ms: self.clear_at,
                            peak: self.peak,
                        });
                        self.reset();
                    }
                }
                // Cleared before dwell: a blip, not an alert.
                (Some(_), None) => self.reset(),
                _ => {}
            }
        }
    }

    fn finish(mut self) -> Vec<Episode> {
        if let (Some(pending_ms), Some(firing_ms)) = (self.pending, self.firing) {
            self.episodes.push(Episode {
                pending_ms,
                firing_ms,
                resolved_ms: None,
                peak: self.peak,
            });
        }
        self.episodes
    }
}

/// Per-window aggregates of one series on the evaluation grid.
fn window_buckets(s: &Series, nwin: usize, window_ms: f64) -> Vec<Option<SeriesBucket>> {
    (0..nwin)
        .map(|w| {
            let from = w as f64 * window_ms;
            s.window(from, from + window_ms)
        })
        .collect()
}

fn counts(buckets: &[Option<SeriesBucket>]) -> Vec<u64> {
    buckets.iter().map(|b| b.map_or(0, |b| b.count)).collect()
}

fn sums(buckets: &[Option<SeriesBucket>]) -> Vec<f64> {
    buckets.iter().map(|b| b.map_or(0.0, |b| b.sum)).collect()
}

fn means(buckets: &[Option<SeriesBucket>]) -> Vec<Option<f64>> {
    buckets
        .iter()
        .map(|b| b.and_then(|b| if b.count > 0 { Some(b.sum / b.count as f64) } else { None }))
        .collect()
}

fn lasts(buckets: &[Option<SeriesBucket>]) -> Vec<Option<f64>> {
    buckets.iter().map(|b| b.map(|b| b.last)).collect()
}

/// Carry the last observed value into empty windows (level signals keep
/// their value between samples; the sampler just didn't run).
fn carry_forward(sig: &[Option<f64>]) -> Vec<Option<f64>> {
    let mut held = None;
    sig.iter()
        .map(|v| {
            if v.is_some() {
                held = *v;
            }
            held
        })
        .collect()
}

fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    Some(values[values.len() / 2])
}

/// Trailing mean of the `Some` entries among the last `span` windows
/// ending at `w` (inclusive); `None` when every entry is missing.
fn trailing_mean(sig: &[Option<f64>], w: usize, span: usize) -> Option<f64> {
    let lo = (w + 1).saturating_sub(span.max(1));
    let mut sum = 0.0;
    let mut n = 0u32;
    for v in sig[lo..=w].iter().flatten() {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / f64::from(n))
    }
}

fn push_episodes(
    alerts: &mut Vec<Alert>,
    episodes: Vec<Episode>,
    scope: &str,
    detector: &str,
    signal: &str,
    severity: &str,
    detail: impl Fn(&Episode) -> String,
) {
    for ep in episodes {
        alerts.push(Alert {
            scope: scope.to_string(),
            detector: detector.to_string(),
            signal: signal.to_string(),
            severity: severity.to_string(),
            pending_ms: ep.pending_ms,
            firing_ms: ep.firing_ms,
            resolved_ms: ep.resolved_ms,
            detail: detail(&ep),
            blame: Vec::new(),
        });
    }
}

/// Burn-rate detection over one per-window error-fraction signal.
fn burn_rate(
    alerts: &mut Vec<Alert>,
    scope: &str,
    signal: &str,
    err: &[Option<f64>],
    window_ms: f64,
    cfg: &BurnRateConfig,
) {
    let budget = cfg.error_budget.max(1e-9);
    let mut lc = Lifecycle::new(cfg.dwell_windows, cfg.resolve_windows);
    for w in 0..err.len() {
        let short = trailing_mean(err, w, cfg.short_windows);
        let long = trailing_mean(err, w, cfg.long_windows);
        let (active, burn) = match (short, long) {
            (Some(s), Some(l)) => {
                let (bs, bl) = (s / budget, l / budget);
                (bs > cfg.burn_threshold && bl > cfg.burn_threshold, bs.max(bl))
            }
            _ => (false, 0.0),
        };
        lc.step(w as f64 * window_ms, active, burn);
    }
    push_episodes(alerts, lc.finish(), scope, "burn-rate", signal, "page", |ep| {
        format!(
            "error budget {budget:.3} burned at up to {:.1}x over {}w/{}w windows",
            ep.peak, cfg.short_windows, cfg.long_windows
        )
    });
}

/// EWMA-standardized CUSUM changepoint detection on one level signal.
fn changepoint(
    alerts: &mut Vec<Alert>,
    scope: &str,
    signal: &str,
    sig: &[Option<f64>],
    window_ms: f64,
    cfg: &ChangepointConfig,
) {
    let alpha = cfg.alpha.clamp(0.01, 1.0);
    let mut lc = Lifecycle::new(1, cfg.resolve_windows);
    let mut mean = 0.0_f64;
    let mut var = 0.0_f64;
    let mut seen = 0usize;
    let mut s_plus = 0.0_f64;
    let mut s_minus = 0.0_f64;
    for (w, v) in sig.iter().enumerate() {
        let Some(x) = *v else {
            lc.step(w as f64 * window_ms, false, 0.0);
            continue;
        };
        let mut active = false;
        let mut peak = 0.0;
        if seen >= cfg.warmup_windows {
            let sigma = var.sqrt().max(1e-9);
            let z = (x - mean) / sigma;
            s_plus = (s_plus + z - cfg.k_sigma).max(0.0);
            s_minus = (s_minus - z - cfg.k_sigma).max(0.0);
            peak = s_plus.max(s_minus);
            active = peak > cfg.h_sigma;
        }
        let diff = x - mean;
        mean += alpha * diff;
        var = (1.0 - alpha) * (var + alpha * diff * diff);
        seen += 1;
        lc.step(w as f64 * window_ms, active, peak);
    }
    push_episodes(alerts, lc.finish(), scope, "changepoint", signal, "warn", |ep| {
        format!("cusum peaked at {:.1} sigma (threshold {:.1})", ep.peak, cfg.h_sigma)
    });
}

/// Median/MAD cross-replica outlier detection.
fn outliers(
    alerts: &mut Vec<Alert>,
    scope: &str,
    replicas: &[(String, Vec<Option<f64>>)],
    window_ms: f64,
    cfg: &OutlierConfig,
) {
    if replicas.len() < cfg.min_peers {
        return;
    }
    let nwin = replicas.first().map_or(0, |(_, sig)| sig.len());
    let mut lcs: Vec<Lifecycle> =
        replicas.iter().map(|_| Lifecycle::new(cfg.dwell_windows, cfg.resolve_windows)).collect();
    for w in 0..nwin {
        let mut present: Vec<f64> = replicas.iter().filter_map(|(_, sig)| sig[w]).collect();
        let (med, mad) = if present.len() >= cfg.min_peers {
            let med = median(&mut present).unwrap_or(0.0);
            let mut devs: Vec<f64> = present.iter().map(|v| (v - med).abs()).collect();
            (Some(med), median(&mut devs).unwrap_or(0.0))
        } else {
            (None, 0.0)
        };
        let threshold = (cfg.mad_k * mad).max(cfg.min_abs);
        for (lc, (_, sig)) in lcs.iter_mut().zip(replicas) {
            let (active, dev) = match (med, sig[w]) {
                (Some(med), Some(v)) => {
                    let dev = (v - med).abs();
                    (dev > threshold, dev)
                }
                _ => (false, 0.0),
            };
            lc.step(w as f64 * window_ms, active, dev);
        }
    }
    for (lc, (signal, _)) in lcs.into_iter().zip(replicas) {
        push_episodes(alerts, lc.finish(), scope, "outlier", signal, "warn", |ep| {
            format!("deviation from fleet median peaked at {:.2} active requests", ep.peak)
        });
    }
}

/// Metastability detection: after a spike, offered load is back at
/// baseline but goodput is not.
fn metastability(
    alerts: &mut Vec<Alert>,
    scope: &str,
    offered: &[u64],
    good: &[f64],
    window_ms: f64,
    cfg: &MetastabilityConfig,
) {
    let mut positive: Vec<f64> = offered.iter().filter(|&&c| c > 0).map(|&c| c as f64).collect();
    let Some(baseline) = median(&mut positive) else {
        return;
    };
    let spike_at = offered.iter().position(|&c| (c as f64) > cfg.min_spike_mult * baseline);
    let Some(spike_w) = spike_at else {
        return;
    };
    let mut lc = Lifecycle::new(cfg.windows, 2);
    for w in (spike_w + 1)..offered.len() {
        let off = offered[w] as f64;
        let at_baseline = off > 0.0 && off <= (1.0 + cfg.load_tol) * baseline;
        let degraded = good[w] < cfg.goodput_frac * off;
        let deficit = if off > 0.0 { 1.0 - good[w] / off } else { 0.0 };
        lc.step(w as f64 * window_ms, at_baseline && degraded, deficit);
    }
    push_episodes(alerts, lc.finish(), scope, "metastability", "goodput", "page", |ep| {
        format!(
            "goodput deficit held at up to {:.0}% for {}+ windows with offered load back at \
             baseline ({baseline:.0}/window)",
            ep.peak * 100.0,
            cfg.windows
        )
    });
}

/// Replay every recorded series through the detector suite and return
/// the attributed incident report. Pure function of the recorder
/// contents: byte-identical runs yield byte-identical reports.
#[must_use]
pub fn evaluate(experiment: &str, rec: &Recorder, cfg: &WatchConfig) -> IncidentReport {
    let window_ms = cfg.window_ms.max(1.0);
    let end = rec.series_map().values().filter_map(Series::end_ts).fold(0.0_f64, f64::max);
    let nwin = ((end / window_ms).ceil() as usize).clamp(1, 200_000);

    let scopes: Vec<String> = rec
        .series_map()
        .keys()
        .filter_map(|name| name.split('.').next())
        .map(str::to_string)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    let get = |name: String| rec.series_get(&name).map(|s| window_buckets(s, nwin, window_ms));

    let mut alerts: Vec<Alert> = Vec::new();
    for scope in &scopes {
        let offered = get(format!("{scope}.offered")).map(|b| counts(&b));
        let slo_good = get(format!("{scope}.slo.good"));
        let slo_ttft = get(format!("{scope}.slo.ttft_ok"));
        let slo_tpot = get(format!("{scope}.slo.tpot_ok"));
        let queue = get(format!("{scope}.queue_depth"));
        let links = get(format!("{scope}.links_down"));

        // Per-window SLO error fractions among completions; a window with
        // offered load but zero completions is a 100% goodput error.
        let ok_err = |b: &Option<SeriesBucket>| {
            b.and_then(|b| if b.count > 0 { Some(1.0 - b.sum / b.count as f64) } else { None })
        };
        if let Some(goodb) = &slo_good {
            let ttft_err: Vec<Option<f64>> = slo_ttft.iter().flatten().map(ok_err).collect();
            let tpot_err: Vec<Option<f64>> = slo_tpot.iter().flatten().map(ok_err).collect();
            let good_err: Vec<Option<f64>> = goodb
                .iter()
                .enumerate()
                .map(|(w, b)| {
                    let offered_w = offered.as_ref().map_or(0, |o| o[w]);
                    match ok_err(b) {
                        Some(e) => Some(e),
                        None if offered_w > 0 => Some(1.0),
                        None => None,
                    }
                })
                .collect();
            burn_rate(&mut alerts, scope, "ttft", &ttft_err, window_ms, &cfg.burn);
            burn_rate(&mut alerts, scope, "tpot", &tpot_err, window_ms, &cfg.burn);
            burn_rate(&mut alerts, scope, "goodput", &good_err, window_ms, &cfg.burn);

            let good_rate: Vec<Option<f64>> = sums(goodb).into_iter().map(Some).collect();
            changepoint(&mut alerts, scope, "goodput", &good_rate, window_ms, &cfg.changepoint);

            if let Some(off) = &offered {
                metastability(&mut alerts, scope, off, &sums(goodb), window_ms, &cfg.metastability);
            }
        }
        if let Some(q) = &queue {
            let sig = carry_forward(&means(q));
            changepoint(&mut alerts, scope, "queue_depth", &sig, window_ms, &cfg.changepoint);
        }
        if let Some(l) = &links {
            let sig = carry_forward(&lasts(l));
            changepoint(&mut alerts, scope, "links_down", &sig, window_ms, &cfg.changepoint);
        }

        let mut replicas: Vec<(String, Vec<Option<f64>>)> = Vec::new();
        let prefix = format!("{scope}.replica");
        for (name, s) in rec.series_map().range(prefix.clone()..) {
            if !name.starts_with(&prefix) {
                break;
            }
            if let Some(idx) =
                name.strip_prefix(&prefix).and_then(|rest| rest.strip_suffix(".active"))
            {
                let sig = means(&window_buckets(s, nwin, window_ms));
                replicas.push((format!("replica{idx}"), sig));
            }
        }
        outliers(&mut alerts, scope, &replicas, window_ms, &cfg.outlier);
    }

    alerts.sort_by(|a, b| {
        a.firing_ms
            .total_cmp(&b.firing_ms)
            .then_with(|| a.scope.cmp(&b.scope))
            .then_with(|| a.detector.cmp(&b.detector))
            .then_with(|| a.signal.cmp(&b.signal))
    });
    let firing = alerts.len();
    let resolved = alerts.iter().filter(|a| a.resolved_ms.is_some()).count();
    let blame = attribute(rec, &mut alerts, &cfg.blame);

    IncidentReport {
        experiment: experiment.to_string(),
        window_ms,
        scopes,
        alerts,
        blame,
        firing,
        resolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: usize) -> f64 {
        i as f64 * 5_000.0 + 2_500.0
    }

    /// A healthy scope: steady offered load, everything completing in SLO.
    fn feed_healthy(rec: &mut Recorder, scope: &str, windows: usize) {
        for i in 0..windows {
            for j in 0..10 {
                let ts = w(i) + f64::from(j as u32);
                rec.series(&format!("{scope}.offered"), ts, 1.0);
                rec.series(&format!("{scope}.slo.good"), ts, 1.0);
                rec.series(&format!("{scope}.slo.ttft_ok"), ts, 1.0);
                rec.series(&format!("{scope}.slo.tpot_ok"), ts, 1.0);
                rec.series(&format!("{scope}.queue_depth"), ts, 2.0);
            }
        }
    }

    #[test]
    fn healthy_run_raises_nothing() {
        let mut rec = Recorder::new();
        feed_healthy(&mut rec, "s", 30);
        let report = evaluate("t", &rec, &WatchConfig::default());
        assert_eq!(report.scopes, vec!["s".to_string()]);
        assert!(report.alerts.is_empty(), "unexpected alerts: {:?}", report.alerts);
    }

    #[test]
    fn sustained_slo_violation_fires_and_resolves_burn_rate() {
        let mut rec = Recorder::new();
        // 10 healthy windows, 8 windows of 100% TTFT violation, 10 healthy.
        for i in 0..28 {
            let ok = !(10..18).contains(&i);
            for j in 0..10 {
                let ts = w(i) + f64::from(j as u32);
                rec.series("s.offered", ts, 1.0);
                rec.series("s.slo.good", ts, if ok { 1.0 } else { 0.0 });
                rec.series("s.slo.ttft_ok", ts, if ok { 1.0 } else { 0.0 });
                rec.series("s.slo.tpot_ok", ts, 1.0);
            }
        }
        let report = evaluate("t", &rec, &WatchConfig::default());
        let ttft: Vec<&Alert> = report.alerts.iter().filter(|a| a.signal == "ttft").collect();
        assert_eq!(ttft.len(), 1, "alerts: {:?}", report.alerts);
        let a = ttft[0];
        assert_eq!(a.detector, "burn-rate");
        assert_eq!(a.severity, "page");
        assert!(a.pending_ms >= 50_000.0 && a.pending_ms < 70_000.0, "onset {}", a.pending_ms);
        assert!(a.resolved_ms.is_some(), "should resolve after recovery");
        // No TPOT alert: that signal stayed clean.
        assert!(!report.alerts.iter().any(|a| a.signal == "tpot"));
    }

    #[test]
    fn queue_level_shift_fires_changepoint() {
        let mut rec = Recorder::new();
        for i in 0..30 {
            let depth = if i < 15 { 2.0 } else { 40.0 };
            for j in 0..5 {
                rec.series("s.queue_depth", w(i) + f64::from(j as u32), depth);
            }
        }
        let report = evaluate("t", &rec, &WatchConfig::default());
        let cp: Vec<&Alert> = report
            .alerts
            .iter()
            .filter(|a| a.detector == "changepoint" && a.signal == "queue_depth")
            .collect();
        assert_eq!(cp.len(), 1, "alerts: {:?}", report.alerts);
        assert!((cp[0].pending_ms - 75_000.0).abs() <= 10_000.0, "onset {}", cp[0].pending_ms);
    }

    #[test]
    fn straggling_replica_is_singled_out() {
        let mut rec = Recorder::new();
        for i in 0..20 {
            for r in 0..4 {
                let v = if r == 2 && i >= 8 { 30.0 } else { 4.0 };
                for j in 0..5 {
                    rec.series(&format!("s.replica{r}.active"), w(i) + f64::from(j as u32), v);
                }
            }
        }
        let report = evaluate("t", &rec, &WatchConfig::default());
        let out: Vec<&Alert> = report.alerts.iter().filter(|a| a.detector == "outlier").collect();
        assert_eq!(out.len(), 1, "alerts: {:?}", report.alerts);
        assert_eq!(out[0].signal, "replica2");
    }

    #[test]
    fn metastability_needs_a_spike_and_a_stuck_recovery() {
        // Collapse after the spike: fires.
        let mut rec = Recorder::new();
        for i in 0..40 {
            let offered = if (10..16).contains(&i) { 30 } else { 10 };
            let good = if i < 10 { 10 } else { 0 };
            for j in 0..offered {
                rec.series("s.offered", w(i) + f64::from(j as u32), 1.0);
            }
            for j in 0..good {
                rec.series("s.slo.good", w(i) + f64::from(j as u32), 1.0);
            }
        }
        let report = evaluate("t", &rec, &WatchConfig::default());
        let meta: Vec<&Alert> =
            report.alerts.iter().filter(|a| a.detector == "metastability").collect();
        assert_eq!(meta.len(), 1, "alerts: {:?}", report.alerts);
        assert!(meta[0].pending_ms >= 80_000.0, "onset {} after spike end", meta[0].pending_ms);
        assert!(meta[0].resolved_ms.is_none(), "never recovers");

        // Same collapse with no preceding spike: the detector stays inert
        // (that is overload, not metastability).
        let mut rec2 = Recorder::new();
        for i in 0..40 {
            let good = if i < 10 { 10 } else { 0 };
            for j in 0..10 {
                rec2.series("s.offered", w(i) + f64::from(j as u32), 1.0);
            }
            for j in 0..good {
                rec2.series("s.slo.good", w(i) + f64::from(j as u32), 1.0);
            }
        }
        let report2 = evaluate("t", &rec2, &WatchConfig::default());
        assert!(!report2.alerts.iter().any(|a| a.detector == "metastability"));

        // Spike with clean recovery: silent.
        let mut rec3 = Recorder::new();
        for i in 0..40 {
            let offered = if (10..16).contains(&i) { 30 } else { 10 };
            let good = if (10..16).contains(&i) { 5 } else { 10 };
            for j in 0..offered {
                rec3.series("s.offered", w(i) + f64::from(j as u32), 1.0);
            }
            for j in 0..good {
                rec3.series("s.slo.good", w(i) + f64::from(j as u32), 1.0);
            }
        }
        let report3 = evaluate("t", &rec3, &WatchConfig::default());
        assert!(!report3.alerts.iter().any(|a| a.detector == "metastability"));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let mut rec = Recorder::new();
        feed_healthy(&mut rec, "a", 20);
        for i in 0..20 {
            let ok = i < 5;
            for j in 0..10 {
                let ts = w(i) + f64::from(j as u32);
                rec.series("b.offered", ts, 1.0);
                rec.series("b.slo.good", ts, if ok { 1.0 } else { 0.0 });
                rec.series("b.slo.ttft_ok", ts, if ok { 1.0 } else { 0.0 });
                rec.series("b.slo.tpot_ok", ts, 1.0);
            }
        }
        let r1 = evaluate("t", &rec, &WatchConfig::default());
        let r2 = evaluate("t", &rec, &WatchConfig::default());
        assert_eq!(r1, r2);
        assert_eq!(r1.to_json(), r2.to_json());
        assert_eq!(r1.render(), r2.render());
        assert_eq!(r1.scopes, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn empty_recorder_yields_empty_report() {
        let report = evaluate("t", &Recorder::disabled(), &WatchConfig::default());
        assert!(report.scopes.is_empty());
        assert!(report.alerts.is_empty());
        assert_eq!(report.firing, 0);
    }
}
