//! Properties of the trace export: recorded spans survive a round trip
//! through `serde_json` unchanged, and every export the recorder can
//! produce passes its own validator. Plus the series-downsampling
//! invariants: whatever the bucket cap forces the series to merge, the
//! total count is exact and the per-bucket min/max never escape the
//! envelope of the raw sample stream.

use dsv3_telemetry::{validate_chrome_trace, ChromeTrace, Recorder, Series};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recorded_spans_round_trip_through_serde_json(
        spans in prop::collection::vec(
            (0.0f64..1e9, 0.0f64..1e6, 1u64..64, 0u64..64),
            0..32,
        ),
    ) {
        let mut rec = Recorder::new();
        let pid = rec.process("engine");
        for (i, &(start, dur, _, tid)) in spans.iter().enumerate() {
            rec.span(pid, tid, "request", &format!("span{i}"), start, start + dur);
        }
        let trace = rec.export_trace();
        let json = trace.to_json();
        let back: ChromeTrace = serde_json::from_str(&json).expect("export parses");
        prop_assert_eq!(&back, &trace, "round trip must be lossless");
        let stats = validate_chrome_trace(&json).expect("export validates");
        prop_assert_eq!(stats.spans, spans.len());
        prop_assert_eq!(stats.metadata, 1);
    }

    #[test]
    fn mixed_event_exports_always_validate(
        n_spans in 0usize..16,
        n_instants in 0usize..16,
        n_counters in 0usize..16,
    ) {
        let mut rec = Recorder::new();
        let pid = rec.process("p");
        let tid = rec.thread(pid, "t");
        for i in 0..n_spans {
            rec.span(pid, tid, "c", "s", i as f64, i as f64 + 1.0);
        }
        for i in 0..n_instants {
            rec.instant(pid, tid, "c", "i", i as f64);
        }
        for i in 0..n_counters {
            rec.counter_sample(pid, "v", i as f64, i as f64 * 0.5);
        }
        let stats = validate_chrome_trace(&rec.export_trace().to_json()).expect("valid");
        prop_assert_eq!(stats.spans, n_spans);
        prop_assert_eq!(stats.instants, n_instants);
        prop_assert_eq!(stats.counters, n_counters);
        prop_assert_eq!(stats.events, n_spans + n_instants + n_counters + 2);
    }

    #[test]
    fn series_downsampling_preserves_count_and_envelope(
        samples in prop::collection::vec(
            (0.0f64..500_000.0, -1e6f64..1e6),
            1..600,
        ),
        max_buckets in 2usize..64,
    ) {
        let mut s = Series::with_max_buckets(max_buckets);
        for &(ts, v) in &samples {
            s.record(ts, v);
        }
        // The cap holds however hostile the timestamp spread.
        prop_assert!(s.len() <= max_buckets,
            "cap {} exceeded: {} buckets", max_buckets, s.len());
        // Merging buckets preserves the count exactly.
        prop_assert_eq!(s.count(), samples.len() as u64);
        let bucket_total: u64 = s.buckets().map(|(_, b)| b.count).sum();
        prop_assert_eq!(bucket_total, samples.len() as u64);
        // And the min/max envelope of the raw stream.
        let raw_min = samples.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        let raw_max = samples.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), Some(raw_min));
        prop_assert_eq!(s.max(), Some(raw_max));
        // Per-bucket aggregates stay inside the global envelope, and the
        // per-bucket sums recompose to the raw sum.
        for (_, b) in s.buckets() {
            prop_assert!(b.min >= raw_min && b.max <= raw_max);
            prop_assert!(b.min <= b.last && b.last <= b.max);
        }
        let raw_sum: f64 = samples.iter().map(|&(_, v)| v).sum();
        let bucket_sum: f64 = s.buckets().map(|(_, b)| b.sum).sum();
        prop_assert!((raw_sum - bucket_sum).abs() <= 1e-6 * (1.0 + raw_sum.abs()),
            "sum drifted: raw {} vs buckets {}", raw_sum, bucket_sum);
    }

    #[test]
    fn series_ignores_only_non_finite_samples(
        good in prop::collection::vec((0.0f64..1e6, -1e3f64..1e3), 0..100),
        bad in 0usize..20,
    ) {
        let mut s = Series::new();
        for &(ts, v) in &good {
            s.record(ts, v);
        }
        for i in 0..bad {
            s.record(f64::NAN, i as f64);
            s.record(i as f64, f64::INFINITY);
        }
        prop_assert_eq!(s.count(), good.len() as u64);
    }
}
