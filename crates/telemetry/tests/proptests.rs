//! Properties of the trace export: recorded spans survive a round trip
//! through `serde_json` unchanged, and every export the recorder can
//! produce passes its own validator.

use dsv3_telemetry::{validate_chrome_trace, ChromeTrace, Recorder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recorded_spans_round_trip_through_serde_json(
        spans in prop::collection::vec(
            (0.0f64..1e9, 0.0f64..1e6, 1u64..64, 0u64..64),
            0..32,
        ),
    ) {
        let mut rec = Recorder::new();
        let pid = rec.process("engine");
        for (i, &(start, dur, _, tid)) in spans.iter().enumerate() {
            rec.span(pid, tid, "request", &format!("span{i}"), start, start + dur);
        }
        let trace = rec.export_trace();
        let json = trace.to_json();
        let back: ChromeTrace = serde_json::from_str(&json).expect("export parses");
        prop_assert_eq!(&back, &trace, "round trip must be lossless");
        let stats = validate_chrome_trace(&json).expect("export validates");
        prop_assert_eq!(stats.spans, spans.len());
        prop_assert_eq!(stats.metadata, 1);
    }

    #[test]
    fn mixed_event_exports_always_validate(
        n_spans in 0usize..16,
        n_instants in 0usize..16,
        n_counters in 0usize..16,
    ) {
        let mut rec = Recorder::new();
        let pid = rec.process("p");
        let tid = rec.thread(pid, "t");
        for i in 0..n_spans {
            rec.span(pid, tid, "c", "s", i as f64, i as f64 + 1.0);
        }
        for i in 0..n_instants {
            rec.instant(pid, tid, "c", "i", i as f64);
        }
        for i in 0..n_counters {
            rec.counter_sample(pid, "v", i as f64, i as f64 * 0.5);
        }
        let stats = validate_chrome_trace(&rec.export_trace().to_json()).expect("valid");
        prop_assert_eq!(stats.spans, n_spans);
        prop_assert_eq!(stats.instants, n_instants);
        prop_assert_eq!(stats.counters, n_counters);
        prop_assert_eq!(stats.events, n_spans + n_instants + n_counters + 2);
    }
}
