//! Parametric network cost model, calibrated to reproduce Table 3.
//!
//! The paper derives its cost estimates "from the methodology in the Slim
//! Fly paper": per-port switch cost plus per-link cable/transceiver cost,
//! with endpoints paying a NIC and a short host cable. Solving the paper's
//! five Table-3 rows for those parameters gives the defaults below — port
//! $826, optical inter-switch link $1445.50, endpoint attach (NIC + DAC)
//! $471 — which land every row within ~1.5% of the printed cost:
//!
//! | topology | paper | this model |
//! |----------|-------|------------|
//! | FT2      |   $9M |   $9.00M   |
//! | MPFT     |  $72M |  $72.0M    |
//! | FT3      | $491M | $491.1M    |
//! | SF       | $146M | $146.0M    |
//! | DF       | $1522M| $1543M     |

use serde::{Deserialize, Serialize};

/// Hardware counts of a topology, as priced by Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySummary {
    /// Topology name.
    pub name: String,
    /// Endpoint (NIC) count.
    pub endpoints: usize,
    /// Switch count.
    pub switches: usize,
    /// Switch-to-switch links.
    pub switch_links: usize,
    /// Subset of `switch_links` short enough for electrical cabling.
    pub electrical_switch_links: usize,
    /// Switch radix used (for per-port pricing).
    pub radix: usize,
}

/// Per-component prices (US dollars).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost per switch port.
    pub port: f64,
    /// Optical inter-switch link (cable + 2 transceivers).
    pub optical_link: f64,
    /// Electrical (DAC) inter-switch link.
    pub electrical_link: f64,
    /// Endpoint attach: NIC + host cable.
    pub endpoint: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { port: 826.0, optical_link: 1445.5, electrical_link: 300.0, endpoint: 471.0 }
    }
}

impl CostModel {
    /// Total cost of a topology in dollars.
    #[must_use]
    pub fn cost(&self, t: &TopologySummary) -> f64 {
        let optical = t.switch_links - t.electrical_switch_links;
        t.switches as f64 * t.radix as f64 * self.port
            + optical as f64 * self.optical_link
            + t.electrical_switch_links as f64 * self.electrical_link
            + t.endpoints as f64 * self.endpoint
    }

    /// Cost per endpoint in dollars.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no endpoints.
    #[must_use]
    pub fn cost_per_endpoint(&self, t: &TopologySummary) -> f64 {
        assert!(t.endpoints > 0, "no endpoints");
        self.cost(t) / t.endpoints as f64
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Topology name.
    pub name: String,
    /// Endpoints.
    pub endpoints: usize,
    /// Switches.
    pub switches: usize,
    /// Switch links.
    pub links: usize,
    /// Total cost, millions of dollars.
    pub cost_musd: f64,
    /// Cost per endpoint, thousands of dollars.
    pub cost_per_endpoint_kusd: f64,
}

/// Generate the five rows of Table 3 with the given model.
///
/// ```
/// use dsv3_topology::cost::{table3_rows, CostModel};
///
/// let rows = table3_rows(&CostModel::default());
/// assert_eq!(rows.len(), 5);
/// assert!((rows[0].cost_per_endpoint_kusd - 4.39).abs() < 0.05);
/// ```
#[must_use]
pub fn table3_rows(model: &CostModel) -> Vec<Table3Row> {
    use crate::dragonfly::Dragonfly;
    use crate::fattree::{LeafSpine, MultiPlane, ThreeLayerFatTree};
    use crate::slimfly::SlimFly;
    let summaries = vec![
        LeafSpine::from_radix(64).summary("FT2"),
        MultiPlane::from_radix(64, 8).summary("MPFT"),
        ThreeLayerFatTree::new(64).summary("FT3"),
        SlimFly::new(28).summary("SF"),
        Dragonfly::table3().summary("DF"),
    ];
    summaries
        .into_iter()
        .map(|s| Table3Row {
            cost_musd: model.cost(&s) / 1e6,
            cost_per_endpoint_kusd: model.cost_per_endpoint(&s) / 1e3,
            name: s.name.clone(),
            endpoints: s.endpoints,
            switches: s.switches,
            links: s.switch_links,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [Table3Row], name: &str) -> &'a Table3Row {
        rows.iter().find(|r| r.name == name).expect("row present")
    }

    #[test]
    fn table3_counts_match_paper() {
        let rows = table3_rows(&CostModel::default());
        let expect = [
            ("FT2", 2048, 96, 2048),
            ("MPFT", 16_384, 768, 16_384),
            ("FT3", 65_536, 5120, 131_072),
            ("SF", 32_928, 1568, 32_928),
            ("DF", 261_632, 16_352, 384_272),
        ];
        for (name, ep, sw, li) in expect {
            let r = row(&rows, name);
            assert_eq!((r.endpoints, r.switches, r.links), (ep, sw, li), "{name}");
        }
    }

    #[test]
    fn table3_costs_match_paper_within_2pct() {
        let rows = table3_rows(&CostModel::default());
        let expect = [("FT2", 9.0), ("MPFT", 72.0), ("FT3", 491.0), ("SF", 146.0), ("DF", 1522.0)];
        for (name, musd) in expect {
            let r = row(&rows, name);
            let err = (r.cost_musd - musd).abs() / musd;
            assert!(err < 0.02, "{name}: {} vs {musd} ({err})", r.cost_musd);
        }
    }

    #[test]
    fn cost_per_endpoint_ordering() {
        // The paper's takeaway: FT2/MPFT ≈ SF < DF < FT3 per endpoint.
        let rows = table3_rows(&CostModel::default());
        let per = |n: &str| row(&rows, n).cost_per_endpoint_kusd;
        assert!((per("FT2") - per("MPFT")).abs() < 1e-9, "planes replicate FT2 cost exactly");
        assert!((per("FT2") - 4.39).abs() < 0.05);
        assert!((per("SF") - 4.4).abs() < 0.1);
        assert!(per("SF") < per("DF"));
        assert!(per("DF") < per("FT3"));
        assert!((per("FT3") - 7.5).abs() < 0.1);
    }

    #[test]
    fn electrical_links_reduce_cost() {
        let m = CostModel::default();
        let mut t = crate::fattree::LeafSpine::from_radix(8).summary("x");
        let all_optical = m.cost(&t);
        t.electrical_switch_links = t.switch_links;
        assert!(m.cost(&t) < all_optical);
    }

    #[test]
    #[should_panic(expected = "no endpoints")]
    fn empty_topology_panics() {
        let m = CostModel::default();
        let t = TopologySummary {
            name: "empty".into(),
            endpoints: 0,
            switches: 1,
            switch_links: 0,
            electrical_switch_links: 0,
            radix: 64,
        };
        let _ = m.cost_per_endpoint(&t);
    }
}
