//! Canonical Dragonfly topology (groups of fully-connected switches joined
//! by global links), the DF column of Table 3.

use crate::cost::TopologySummary;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Dragonfly parameters: `p` endpoints per switch, `a` switches per group,
/// `h` global links per switch, `groups` groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dragonfly {
    /// Endpoints per switch.
    pub p: usize,
    /// Switches per group (intra-group is a full mesh).
    pub a: usize,
    /// Global links per switch.
    pub h: usize,
    /// Number of groups (`≤ a·h + 1`).
    pub groups: usize,
}

impl Dragonfly {
    /// Balanced canonical dragonfly from switch radix `r`: `a = r/2`,
    /// `p = h = r/4`, maximum group count `a·h + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a multiple of 4.
    #[must_use]
    pub fn balanced_from_radix(r: usize) -> Self {
        assert!(r >= 4 && r.is_multiple_of(4), "radix must be a multiple of 4");
        let p = r / 4;
        let a = r / 2;
        let h = r / 4;
        Self { p, a, h, groups: a * h + 1 }
    }

    /// The parameterization whose counts match the paper's Table 3 DF
    /// column: radix-64 balanced dragonfly at 511 groups (261,632 endpoints,
    /// 16,352 switches, 384,272 links).
    #[must_use]
    pub fn table3() -> Self {
        Self { p: 16, a: 32, h: 16, groups: 511 }
    }

    /// Total switches.
    #[must_use]
    pub fn switches(&self) -> usize {
        self.groups * self.a
    }

    /// Total endpoints.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.switches() * self.p
    }

    /// Intra-group (electrical-class) links.
    #[must_use]
    pub fn intra_links(&self) -> usize {
        self.groups * self.a * (self.a - 1) / 2
    }

    /// Global (optical-class) links.
    #[must_use]
    pub fn global_links(&self) -> usize {
        self.groups * self.a * self.h / 2
    }

    /// All switch-switch links.
    #[must_use]
    pub fn switch_links(&self) -> usize {
        self.intra_links() + self.global_links()
    }

    /// Table-3-style summary. Intra-group links are classed electrical-short
    /// only when the paper's costing would; here we follow the calibrated
    /// model and class all switch links optical (see `cost` module docs).
    #[must_use]
    pub fn summary(&self, name: &str) -> TopologySummary {
        TopologySummary {
            name: name.to_string(),
            endpoints: self.endpoints(),
            switches: self.switches(),
            switch_links: self.switch_links(),
            electrical_switch_links: 0,
            radix: self.p + (self.a - 1) + self.h,
        }
    }

    /// Build the switch graph. Requires the full canonical group count
    /// (`groups == a·h + 1`) so every global port pairs exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `groups != a·h + 1`.
    #[must_use]
    pub fn build(&self) -> Graph {
        assert_eq!(
            self.groups,
            self.a * self.h + 1,
            "graph construction implemented for the full canonical group count"
        );
        let mut graph = Graph::new(self.switches());
        let sid = |g: usize, s: usize| g * self.a + s;
        // Intra-group full mesh.
        for g in 0..self.groups {
            for s1 in 0..self.a {
                for s2 in (s1 + 1)..self.a {
                    graph.add_link(sid(g, s1), sid(g, s2));
                }
            }
        }
        // Global links: group g's channel d-1 (d = offset) pairs with group
        // g+d's channel groups-1-d; channel c belongs to switch c / h.
        for g1 in 0..self.groups {
            for d in 1..self.groups {
                let g2 = (g1 + d) % self.groups;
                if g1 < g2 {
                    let c1 = d - 1;
                    let c2 = self.groups - 1 - d;
                    graph.add_link(sid(g1, c1 / self.h), sid(g2, c2 / self.h));
                }
            }
        }
        for s in 0..self.switches() {
            for _ in 0..self.p {
                graph.attach_endpoint(s);
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_counts() {
        let df = Dragonfly::table3();
        assert_eq!(df.switches(), 16_352);
        assert_eq!(df.endpoints(), 261_632);
        assert_eq!(df.switch_links(), 384_272);
        assert_eq!(df.intra_links(), 253_456);
        assert_eq!(df.global_links(), 130_816);
    }

    #[test]
    fn balanced_radix64() {
        let df = Dragonfly::balanced_from_radix(64);
        assert_eq!((df.p, df.a, df.h), (16, 32, 16));
        assert_eq!(df.groups, 513);
        // Table 3 uses two fewer groups than the canonical maximum.
        assert_eq!(Dragonfly::table3().groups, 511);
    }

    #[test]
    fn small_canonical_builds_and_is_tight() {
        let df = Dragonfly { p: 1, a: 4, h: 2, groups: 9 };
        let g = df.build();
        assert_eq!(g.switches(), 36);
        assert_eq!(g.switch_links(), df.switch_links());
        // Dragonfly minimal routing is ≤ 3 switch hops (local, global,
        // local); the graph diameter reflects that.
        assert!(g.diameter() <= 3, "diameter {}", g.diameter());
        // Every global port used exactly once: degree = (a-1) + h.
        for s in 0..g.switches() {
            assert_eq!(g.degree(s), 3 + 2);
        }
    }

    #[test]
    #[should_panic(expected = "canonical")]
    fn non_canonical_build_panics() {
        let _ = Dragonfly::table3().build();
    }
}
