//! Fat-tree builders: leaf-spine (FT2), multi-plane (MPFT), three-layer (FT3).
//!
//! All counts follow the paper's Table 3 conventions: "links" are
//! switch-to-switch links (endpoint attachments are priced separately as
//! NIC + host cable by the cost model).

use crate::cost::TopologySummary;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// A two-layer fat-tree (leaf-spine) built from `radix`-port switches.
///
/// With radix `r`: `r` leaves, `r/2` spines, `r/2` hosts per leaf, `r²/2`
/// endpoints — the FT2 column of Table 3 at `r = 64` (2,048 endpoints, 96
/// switches, 2,048 switch links).
///
/// ```
/// use dsv3_topology::LeafSpine;
///
/// let ft2 = LeafSpine::from_radix(64);
/// assert_eq!((ft2.endpoints(), ft2.switches()), (2048, 96));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeafSpine {
    /// Number of leaf switches.
    pub leaves: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// Hosts attached per leaf.
    pub hosts_per_leaf: usize,
}

impl LeafSpine {
    /// Full-bisection leaf-spine from `radix`-port switches.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is odd or zero.
    #[must_use]
    pub fn from_radix(radix: usize) -> Self {
        assert!(radix > 0 && radix.is_multiple_of(2), "radix must be positive and even");
        Self { leaves: radix, spines: radix / 2, hosts_per_leaf: radix / 2 }
    }

    /// Leaf-spine sized to hold at least `hosts` endpoints with `radix`-port
    /// switches (fewer leaves than the full fabric if possible).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` exceeds the `radix²/2` capacity.
    #[must_use]
    pub fn for_hosts(hosts: usize, radix: usize) -> Self {
        let full = Self::from_radix(radix);
        assert!(hosts <= full.endpoints(), "{hosts} hosts exceed radix {radix} capacity");
        let leaves = hosts.div_ceil(full.hosts_per_leaf);
        Self { leaves, spines: full.spines, hosts_per_leaf: full.hosts_per_leaf }
    }

    /// Total endpoints.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.leaves * self.hosts_per_leaf
    }

    /// Total switches.
    #[must_use]
    pub fn switches(&self) -> usize {
        self.leaves + self.spines
    }

    /// Switch-to-switch links (every leaf connects to every spine).
    #[must_use]
    pub fn switch_links(&self) -> usize {
        self.leaves * self.spines
    }

    /// Leaf switch of host `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    #[must_use]
    pub fn leaf_of(&self, h: usize) -> usize {
        assert!(h < self.endpoints(), "host out of range");
        h / self.hosts_per_leaf
    }

    /// Whether two hosts share a leaf.
    #[must_use]
    pub fn same_leaf(&self, a: usize, b: usize) -> bool {
        self.leaf_of(a) == self.leaf_of(b)
    }

    /// Materialize the switch graph (leaves `0..leaves`, spines after).
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.switches());
        for l in 0..self.leaves {
            for s in 0..self.spines {
                g.add_link(l, self.leaves + s);
            }
        }
        for h in 0..self.endpoints() {
            g.attach_endpoint(self.leaf_of(h));
        }
        g
    }

    /// Table-3-style summary (all switch links optical).
    #[must_use]
    pub fn summary(&self, name: &str) -> TopologySummary {
        TopologySummary {
            name: name.to_string(),
            endpoints: self.endpoints(),
            switches: self.switches(),
            switch_links: self.switch_links(),
            electrical_switch_links: 0,
            radix: self.hosts_per_leaf + self.spines,
        }
    }
}

/// A multi-plane fat-tree: `planes` independent leaf-spine fabrics; each
/// node's i-th NIC joins plane i (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiPlane {
    /// The per-plane leaf-spine fabric.
    pub plane: LeafSpine,
    /// Number of planes (8 in DeepSeek-V3's deployment).
    pub planes: usize,
}

impl MultiPlane {
    /// The paper's deployment shape: `planes` two-layer planes of 64-port
    /// switches (8 planes → 16,384 endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `planes == 0`.
    #[must_use]
    pub fn from_radix(radix: usize, planes: usize) -> Self {
        assert!(planes > 0, "need at least one plane");
        Self { plane: LeafSpine::from_radix(radix), planes }
    }

    /// Endpoints across all planes (each GPU-NIC pair is one endpoint).
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.plane.endpoints() * self.planes
    }

    /// Switches across all planes.
    #[must_use]
    pub fn switches(&self) -> usize {
        self.plane.switches() * self.planes
    }

    /// Switch links across all planes.
    #[must_use]
    pub fn switch_links(&self) -> usize {
        self.plane.switch_links() * self.planes
    }

    /// GPUs supported when each node contributes one GPU+NIC per plane.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.endpoints()
    }

    /// Table-3-style summary.
    #[must_use]
    pub fn summary(&self, name: &str) -> TopologySummary {
        let s = self.plane.summary(name);
        TopologySummary {
            name: name.to_string(),
            endpoints: s.endpoints * self.planes,
            switches: s.switches * self.planes,
            switch_links: s.switch_links * self.planes,
            electrical_switch_links: 0,
            radix: s.radix,
        }
    }
}

/// A three-layer fat-tree of `radix`-port switches (edge/aggregation/core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreeLayerFatTree {
    /// Switch radix.
    pub radix: usize,
}

impl ThreeLayerFatTree {
    /// New FT3 from `radix`-port switches.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is odd or zero.
    #[must_use]
    pub fn new(radix: usize) -> Self {
        assert!(radix > 0 && radix.is_multiple_of(2), "radix must be positive and even");
        Self { radix }
    }

    /// Endpoints: `radix³ / 4`.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.radix * self.radix * self.radix / 4
    }

    /// Switches: `radix` pods × `radix` (edge+agg) + `radix²/4` cores.
    #[must_use]
    pub fn switches(&self) -> usize {
        self.radix * self.radix + self.radix * self.radix / 4
    }

    /// Switch links: edge→agg plus agg→core, `radix³ / 2` total.
    #[must_use]
    pub fn switch_links(&self) -> usize {
        self.radix * self.radix * self.radix / 2
    }

    /// Materialize the switch graph.
    ///
    /// Layout with radix `r`: pod `p` owns edge switches
    /// `p·r .. p·r + r/2` and aggregation switches `p·r + r/2 .. (p+1)·r`;
    /// cores occupy `r² ..`. Within a pod, edge↔agg is full bipartite;
    /// aggregation switch `j` of every pod connects to core group `j`
    /// (cores `j·r/2 .. (j+1)·r/2`), the standard k-ary fat-tree wiring.
    /// Hosts attach `r/2` per edge switch, so host `h` sits under edge
    /// switch `h / (r/2)` pod-major — cross-pod host pairs see the full
    /// 4-hop diameter with `(r/2)²` equal-cost core routes.
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let r = self.radix;
        let half = r / 2;
        let cores_base = r * r;
        let mut g = Graph::new(self.switches());
        for p in 0..r {
            for e in 0..half {
                let edge = p * r + e;
                for a in 0..half {
                    g.add_link(edge, p * r + half + a);
                }
            }
            for a in 0..half {
                let agg = p * r + half + a;
                for c in 0..half {
                    g.add_link(agg, cores_base + a * half + c);
                }
            }
        }
        for h in 0..self.endpoints() {
            let pod = h / (half * half);
            let edge = (h / half) % half;
            g.attach_endpoint(pod * r + edge);
        }
        g
    }

    /// Table-3-style summary.
    #[must_use]
    pub fn summary(&self, name: &str) -> TopologySummary {
        TopologySummary {
            name: name.to_string(),
            endpoints: self.endpoints(),
            switches: self.switches(),
            switch_links: self.switch_links(),
            electrical_switch_links: 0,
            radix: self.radix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ft2_table3_counts() {
        let ft2 = LeafSpine::from_radix(64);
        assert_eq!(ft2.endpoints(), 2048);
        assert_eq!(ft2.switches(), 96);
        assert_eq!(ft2.switch_links(), 2048);
    }

    #[test]
    fn mpft_table3_counts() {
        let mpft = MultiPlane::from_radix(64, 8);
        assert_eq!(mpft.endpoints(), 16_384);
        assert_eq!(mpft.switches(), 768);
        assert_eq!(mpft.switch_links(), 16_384);
    }

    #[test]
    fn ft3_table3_counts() {
        let ft3 = ThreeLayerFatTree::new(64);
        assert_eq!(ft3.endpoints(), 65_536);
        assert_eq!(ft3.switches(), 5120);
        assert_eq!(ft3.switch_links(), 131_072);
    }

    #[test]
    fn graph_matches_counts() {
        let ls = LeafSpine::from_radix(8);
        let g = ls.to_graph();
        assert_eq!(g.switches(), ls.switches());
        assert_eq!(g.switch_links(), ls.switch_links());
        assert_eq!(g.endpoints(), ls.endpoints());
        assert_eq!(g.diameter(), 2, "leaf-spine switch graph has diameter 2");
    }

    #[test]
    fn ft3_graph_matches_counts_and_diameter() {
        let ft3 = ThreeLayerFatTree::new(4);
        let g = ft3.to_graph();
        assert_eq!(g.switches(), ft3.switches()); // 20
        assert_eq!(g.switch_links(), ft3.switch_links()); // 32
        assert_eq!(g.endpoints(), ft3.endpoints()); // 16
        assert_eq!(g.diameter(), 4, "edge→agg→core→agg→edge");
        // Every switch uses at most `radix` ports (edge: half hosts + half
        // aggs; agg: half edges + half cores; core: one agg per pod).
        for s in 0..g.switches() {
            assert!(g.degree(s) + g.endpoints_of(s) <= ft3.radix);
        }
        // Cross-pod pairs enjoy (r/2)² equal-cost core routes.
        let (e0, e1) = (g.endpoint_switch(0), g.endpoint_switch(15));
        assert_eq!(g.shortest_paths(e0, e1, 64).len(), 4);
        // Same-pod, different-edge pairs route over the pod's aggs only.
        let (a, b) = (g.endpoint_switch(0), g.endpoint_switch(2));
        assert_ne!(a, b);
        assert_eq!(g.shortest_paths(a, b, 64).len(), 2);
    }

    #[test]
    fn leaf_membership() {
        let ls = LeafSpine::from_radix(8); // 4 hosts/leaf
        assert!(ls.same_leaf(0, 3));
        assert!(!ls.same_leaf(3, 4));
        assert_eq!(ls.leaf_of(5), 1);
    }

    #[test]
    fn for_hosts_rounds_up() {
        let ls = LeafSpine::for_hosts(100, 64);
        assert_eq!(ls.leaves, 4); // 100 / 32 -> 4 leaves
        assert!(ls.endpoints() >= 100);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_hosts_panics() {
        let _ = LeafSpine::for_hosts(3000, 64);
    }

    #[test]
    fn two_layer_scales_past_10k_only_with_planes() {
        // §5.1: multi-plane keeps two-layer latency while exceeding 10k
        // endpoints; a single plane cannot.
        assert!(LeafSpine::from_radix(64).endpoints() < 10_000);
        assert!(MultiPlane::from_radix(64, 8).endpoints() > 10_000);
    }
}
