//! A minimal switch-level network graph.
//!
//! Switches form the graph proper; endpoints attach to switches. This is
//! enough to validate the structural identities the counting formulas rely
//! on (degree handshake, diameter) for every topology in Table 3.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Switch-level graph with attached endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    endpoint_attach: Vec<usize>,
}

impl Graph {
    /// Empty graph with `switches` unconnected switches.
    #[must_use]
    pub fn new(switches: usize) -> Self {
        Self { adj: vec![Vec::new(); switches], endpoint_attach: Vec::new() }
    }

    /// Number of switches.
    #[must_use]
    pub fn switches(&self) -> usize {
        self.adj.len()
    }

    /// Number of endpoints.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.endpoint_attach.len()
    }

    /// Add an undirected switch-switch link.
    ///
    /// # Panics
    ///
    /// Panics if either switch is out of range or `a == b`.
    pub fn add_link(&mut self, a: usize, b: usize) {
        assert!(a < self.adj.len() && b < self.adj.len(), "switch out of range");
        assert_ne!(a, b, "self-links are not allowed");
        self.adj[a].push(b);
        self.adj[b].push(a);
    }

    /// Attach an endpoint to switch `s`, returning the endpoint id.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn attach_endpoint(&mut self, s: usize) -> usize {
        assert!(s < self.adj.len(), "switch out of range");
        self.endpoint_attach.push(s);
        self.endpoint_attach.len() - 1
    }

    /// Switch an endpoint is attached to.
    #[must_use]
    pub fn endpoint_switch(&self, e: usize) -> usize {
        self.endpoint_attach[e]
    }

    /// Degree (network ports) of switch `s`.
    #[must_use]
    pub fn degree(&self, s: usize) -> usize {
        self.adj[s].len()
    }

    /// Neighbors of switch `s`.
    #[must_use]
    pub fn neighbors(&self, s: usize) -> &[usize] {
        &self.adj[s]
    }

    /// Total switch-switch links (each counted once).
    #[must_use]
    pub fn switch_links(&self) -> usize {
        let deg_sum: usize = self.adj.iter().map(Vec::len).sum();
        debug_assert_eq!(deg_sum % 2, 0, "handshake violated");
        deg_sum / 2
    }

    /// Endpoints attached to switch `s`.
    #[must_use]
    pub fn endpoints_of(&self, s: usize) -> usize {
        self.endpoint_attach.iter().filter(|&&x| x == s).count()
    }

    /// Hop distances from switch `src` to every switch (usize::MAX if
    /// unreachable).
    #[must_use]
    pub fn bfs(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.adj.len()];
        dist[src] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Enumerate up to `max_paths` shortest paths from switch `src` to
    /// switch `dst`, each as the full switch sequence (inclusive of both
    /// ends).
    ///
    /// Enumeration is deterministic: a DFS from `src` that only steps to
    /// neighbors strictly closer to `dst` (per BFS distances), visiting
    /// neighbors in adjacency-list order. Equal graphs therefore yield the
    /// identical path list — the property ECMP-style hashing in the flow
    /// simulators relies on. Returns an empty list when `dst` is
    /// unreachable, and the trivial single-switch path when `src == dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range or `max_paths == 0`.
    #[must_use]
    pub fn shortest_paths(&self, src: usize, dst: usize, max_paths: usize) -> Vec<Vec<usize>> {
        assert!(src < self.adj.len() && dst < self.adj.len(), "switch out of range");
        assert!(max_paths > 0, "max_paths must be positive");
        let dist = self.bfs(dst);
        if dist[src] == usize::MAX {
            return Vec::new();
        }
        let mut paths = Vec::new();
        let mut stack = vec![src];
        self.descend(dst, &dist, &mut stack, &mut paths, max_paths);
        paths
    }

    fn descend(
        &self,
        dst: usize,
        dist: &[usize],
        stack: &mut Vec<usize>,
        paths: &mut Vec<Vec<usize>>,
        max_paths: usize,
    ) {
        if paths.len() >= max_paths {
            return;
        }
        let u = *stack.last().unwrap(); // lint:allow(P1) — stack starts non-empty and only grows here
        if u == dst {
            paths.push(stack.clone());
            return;
        }
        for &v in &self.adj[u] {
            if dist[v] != usize::MAX && dist[v] + 1 == dist[u] {
                stack.push(v);
                self.descend(dst, dist, stack, paths, max_paths);
                stack.pop();
                if paths.len() >= max_paths {
                    return;
                }
            }
        }
    }

    /// Switch-graph diameter.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or disconnected.
    #[must_use]
    pub fn diameter(&self) -> usize {
        assert!(!self.adj.is_empty(), "empty graph");
        let mut best = 0;
        for s in 0..self.adj.len() {
            let d = self.bfs(s);
            let m = d.iter().copied().max().unwrap_or(0);
            assert_ne!(m, usize::MAX, "graph is disconnected");
            best = best.max(m);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_link(0, 1);
        g.add_link(1, 2);
        g.add_link(2, 0);
        g
    }

    #[test]
    fn handshake() {
        let g = triangle();
        assert_eq!(g.switch_links(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn bfs_and_diameter() {
        let mut g = Graph::new(4); // path 0-1-2-3
        g.add_link(0, 1);
        g.add_link(1, 2);
        g.add_link(2, 3);
        assert_eq!(g.bfs(0), vec![0, 1, 2, 3]);
        assert_eq!(g.diameter(), 3);
        assert_eq!(triangle().diameter(), 1);
    }

    #[test]
    fn endpoints_attach() {
        let mut g = triangle();
        let e0 = g.attach_endpoint(1);
        let e1 = g.attach_endpoint(1);
        assert_eq!((e0, e1), (0, 1));
        assert_eq!(g.endpoints(), 2);
        assert_eq!(g.endpoints_of(1), 2);
        assert_eq!(g.endpoint_switch(0), 1);
    }

    #[test]
    fn shortest_paths_enumerates_all_equal_cost_routes() {
        // Diamond: 0-1-3 and 0-2-3 are the two shortest routes.
        let mut g = Graph::new(4);
        g.add_link(0, 1);
        g.add_link(0, 2);
        g.add_link(1, 3);
        g.add_link(2, 3);
        let paths = g.shortest_paths(0, 3, 8);
        assert_eq!(paths, vec![vec![0, 1, 3], vec![0, 2, 3]]);
        assert_eq!(g.shortest_paths(0, 3, 1).len(), 1, "max_paths caps enumeration");
        assert_eq!(g.shortest_paths(2, 2, 4), vec![vec![2]], "trivial self path");
        assert_eq!(paths, g.shortest_paths(0, 3, 8), "enumeration is deterministic");
    }

    #[test]
    fn shortest_paths_skips_longer_routes_and_unreachable() {
        let mut g = Graph::new(5); // 0-1-2 plus detour 0-3-4-2
        g.add_link(0, 1);
        g.add_link(1, 2);
        g.add_link(0, 3);
        g.add_link(3, 4);
        g.add_link(4, 2);
        assert_eq!(g.shortest_paths(0, 2, 8), vec![vec![0, 1, 2]]);
        let mut h = Graph::new(3);
        h.add_link(0, 1);
        assert!(h.shortest_paths(0, 2, 4).is_empty(), "unreachable yields no paths");
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_diameter_panics() {
        let g = Graph::new(2);
        let _ = g.diameter();
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut g = Graph::new(2);
        g.add_link(1, 1);
    }
}
