//! Cluster network topologies for the DeepSeek-V3 reproduction.
//!
//! §5.1 of the paper compares the Multi-Plane two-layer Fat-Tree (MPFT)
//! deployed for DeepSeek-V3 against two- and three-layer fat-trees, Slim Fly
//! and Dragonfly (Table 3), and §5.2.2 studies routing policies (ECMP vs
//! adaptive vs static) on leaf-spine fabrics (Figure 8). This crate builds
//! those topologies, counts their hardware, prices them with a parametric
//! cost model calibrated to the Slim Fly paper's methodology, and provides
//! the spine-selection routing policies used by the collective experiments.
//!
//! * [`graph`] — a small switch-level graph with endpoints, degree/link
//!   counting and BFS diameter.
//! * [`fattree`] — leaf-spine (two-layer), multi-plane, and three-layer
//!   fat-tree builders.
//! * [`slimfly`] — McKay–Miller–Širáň Slim Fly construction (prime `q`)
//!   plus the analytic counting used by Table 3.
//! * [`dragonfly`] — canonical dragonfly construction and counts.
//! * [`cost`] — the calibrated cost model and Table 3 row generation.
//! * [`routing`] — ECMP / static / adaptive spine selection for leaf-spine
//!   fabrics.

#![forbid(unsafe_code)]

pub mod cost;
pub mod dragonfly;
pub mod fattree;
pub mod graph;
pub mod routing;
pub mod slimfly;

pub use cost::{CostModel, TopologySummary};
pub use fattree::{LeafSpine, MultiPlane};
pub use graph::Graph;
