//! Spine-selection routing policies for leaf-spine fabrics (§5.2.2).
//!
//! Figure 8 shows that RoCE's default ECMP hashing congests AllGather /
//! ReduceScatter traffic, static (manually configured) routing avoids
//! conflicts for specific patterns, and adaptive routing spreads load
//! dynamically. The policies here choose an uplink spine per flow; the
//! resulting per-link loads (and, through the flow simulator, per-flow
//! throughput) reproduce that ordering.

use crate::fattree::LeafSpine;
use serde::{Deserialize, Serialize};

/// A point-to-point flow between two hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
}

/// Spine-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Hash-based equal-cost multipath (the RoCE default): the spine is a
    /// pseudo-random function of the flow's 5-tuple, so distinct flows can
    /// collide on one uplink.
    Ecmp {
        /// Hash seed (models the switch's hash function choice).
        seed: u64,
    },
    /// Manually configured static tables: spine fixed by source host index.
    /// Collision-free for one-flow-per-host shift permutations, inflexible
    /// otherwise.
    StaticBySource,
    /// Adaptive routing: each flow picks the spine minimizing the current
    /// maximum of its uplink/downlink loads (greedy congestion awareness,
    /// approximating per-packet spraying).
    Adaptive,
}

/// Spine assignment for each flow (`None` = stays under one leaf).
#[must_use]
pub fn assign_spines(
    ls: &LeafSpine,
    flows: &[FlowSpec],
    policy: RoutePolicy,
) -> Vec<Option<usize>> {
    let mut up = vec![0usize; ls.leaves * ls.spines]; // (leaf, spine) uplink load
    let mut down = vec![0usize; ls.leaves * ls.spines];
    flows
        .iter()
        .map(|f| {
            if ls.same_leaf(f.src, f.dst) {
                return None;
            }
            let sl = ls.leaf_of(f.src);
            let dl = ls.leaf_of(f.dst);
            let spine = match policy {
                RoutePolicy::Ecmp { seed } => {
                    hash3(f.src as u64, f.dst as u64, seed) as usize % ls.spines
                }
                RoutePolicy::StaticBySource => f.src % ls.spines,
                RoutePolicy::Adaptive => (0..ls.spines)
                    .min_by_key(|&s| (up[sl * ls.spines + s].max(down[dl * ls.spines + s]), s))
                    .unwrap_or(0),
            };
            up[sl * ls.spines + spine] += 1;
            down[dl * ls.spines + spine] += 1;
            Some(spine)
        })
        .collect()
}

/// Per-link load analysis of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Maximum flows sharing any single leaf↔spine link.
    pub max_link_load: usize,
    /// Flows that crossed spines (inter-leaf flows).
    pub inter_leaf_flows: usize,
}

impl LoadReport {
    /// Throughput fraction of ideal for uniform same-size flows: the whole
    /// pattern finishes when the most-loaded link drains.
    #[must_use]
    pub fn throughput_fraction(&self) -> f64 {
        if self.max_link_load == 0 {
            1.0
        } else {
            1.0 / self.max_link_load as f64
        }
    }
}

/// Analyze the link loads induced by an assignment.
#[must_use]
pub fn load_report(ls: &LeafSpine, flows: &[FlowSpec], spines: &[Option<usize>]) -> LoadReport {
    let mut up = vec![0usize; ls.leaves * ls.spines];
    let mut down = vec![0usize; ls.leaves * ls.spines];
    let mut inter = 0usize;
    for (f, s) in flows.iter().zip(spines) {
        if let Some(s) = s {
            inter += 1;
            up[ls.leaf_of(f.src) * ls.spines + s] += 1;
            down[ls.leaf_of(f.dst) * ls.spines + s] += 1;
        }
    }
    let max_link_load = up.iter().chain(down.iter()).copied().max().unwrap_or(0);
    LoadReport { max_link_load, inter_leaf_flows: inter }
}

/// Spine assignment when `failed_spines` are out of service.
///
/// Adaptive routing treats failures natively (it simply never picks a dead
/// spine). ECMP switches rehash over the survivors (standard consistent
/// fallback). Static tables model the §6.3 pain point: entries pointing at
/// a dead spine fail over to the numerically first healthy spine, piling
/// flows onto it until an operator reconfigures the tables.
///
/// # Panics
///
/// Panics if every spine failed.
#[must_use]
pub fn assign_spines_with_failures(
    ls: &LeafSpine,
    flows: &[FlowSpec],
    policy: RoutePolicy,
    failed_spines: &[usize],
) -> Vec<Option<usize>> {
    let healthy: Vec<usize> = (0..ls.spines).filter(|s| !failed_spines.contains(s)).collect();
    assert!(!healthy.is_empty(), "all spines failed");
    let mut up = vec![0usize; ls.leaves * ls.spines];
    let mut down = vec![0usize; ls.leaves * ls.spines];
    flows
        .iter()
        .map(|f| {
            if ls.same_leaf(f.src, f.dst) {
                return None;
            }
            let sl = ls.leaf_of(f.src);
            let dl = ls.leaf_of(f.dst);
            let spine = match policy {
                RoutePolicy::Ecmp { seed } => {
                    healthy[hash3(f.src as u64, f.dst as u64, seed) as usize % healthy.len()]
                }
                RoutePolicy::StaticBySource => {
                    let preferred = f.src % ls.spines;
                    if failed_spines.contains(&preferred) {
                        healthy[0]
                    } else {
                        preferred
                    }
                }
                RoutePolicy::Adaptive => *healthy
                    .iter()
                    .min_by_key(|&&s| (up[sl * ls.spines + s].max(down[dl * ls.spines + s]), s))
                    .unwrap_or(&0),
            };
            up[sl * ls.spines + spine] += 1;
            down[dl * ls.spines + spine] += 1;
            Some(spine)
        })
        .collect()
}

fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.rotate_left(31).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ c.wrapping_mul(0x1656_67B1_9E37_79F9);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    x
}

/// The ring-shift traffic pattern of one collective step: host `i` sends to
/// host `(i + shift) mod n` within each group of `group` consecutive hosts
/// (one ring per tensor/data-parallel group).
#[must_use]
pub fn ring_shift_flows(hosts: usize, group: usize, shift: usize) -> Vec<FlowSpec> {
    assert!(group > 0 && hosts.is_multiple_of(group), "hosts must split into equal groups");
    (0..hosts)
        .map(|i| {
            let g = i / group;
            let j = (i % group + shift) % group;
            FlowSpec { src: i, dst: g * group + j }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> LeafSpine {
        LeafSpine { leaves: 8, spines: 8, hosts_per_leaf: 8 }
    }

    #[test]
    fn same_leaf_flows_skip_spines() {
        let ls = fabric();
        let flows = vec![FlowSpec { src: 0, dst: 1 }];
        let a = assign_spines(&ls, &flows, RoutePolicy::Adaptive);
        assert_eq!(a, vec![None]);
    }

    #[test]
    fn adaptive_is_conflict_free_for_permutations() {
        let ls = fabric();
        // Global shift by one leaf: every host sends cross-leaf.
        let flows: Vec<FlowSpec> =
            (0..64).map(|i| FlowSpec { src: i, dst: (i + 8) % 64 }).collect();
        let a = assign_spines(&ls, &flows, RoutePolicy::Adaptive);
        let r = load_report(&ls, &flows, &a);
        assert_eq!(r.max_link_load, 1, "adaptive must avoid all collisions");
        assert_eq!(r.throughput_fraction(), 1.0);
    }

    #[test]
    fn static_is_conflict_free_for_shift() {
        let ls = fabric();
        let flows: Vec<FlowSpec> =
            (0..64).map(|i| FlowSpec { src: i, dst: (i + 8) % 64 }).collect();
        let a = assign_spines(&ls, &flows, RoutePolicy::StaticBySource);
        let r = load_report(&ls, &flows, &a);
        assert_eq!(r.max_link_load, 1);
    }

    #[test]
    fn ecmp_collides_on_permutations() {
        let ls = fabric();
        let flows: Vec<FlowSpec> =
            (0..64).map(|i| FlowSpec { src: i, dst: (i + 8) % 64 }).collect();
        // With 8 flows hashing onto 8 spines per leaf, collisions are near
        // certain; check over several hash seeds.
        let mut collided = 0;
        for seed in 0..10 {
            let a = assign_spines(&ls, &flows, RoutePolicy::Ecmp { seed });
            if load_report(&ls, &flows, &a).max_link_load > 1 {
                collided += 1;
            }
        }
        assert!(collided >= 9, "ECMP collided in only {collided}/10 seeds");
    }

    #[test]
    fn ring_shift_pattern_shape() {
        let flows = ring_shift_flows(16, 8, 1);
        assert_eq!(flows.len(), 16);
        assert_eq!(flows[7], FlowSpec { src: 7, dst: 0 });
        assert_eq!(flows[8], FlowSpec { src: 8, dst: 9 });
        // Each host receives exactly one flow.
        let mut dsts: Vec<usize> = flows.iter().map(|f| f.dst).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), 16);
    }

    #[test]
    fn load_report_counts() {
        let ls = fabric();
        let flows = vec![FlowSpec { src: 0, dst: 8 }, FlowSpec { src: 1, dst: 9 }];
        let a = vec![Some(0), Some(0)];
        let r = load_report(&ls, &flows, &a);
        assert_eq!(r.max_link_load, 2);
        assert_eq!(r.inter_leaf_flows, 2);
        assert_eq!(r.throughput_fraction(), 0.5);
    }

    #[test]
    #[should_panic(expected = "equal groups")]
    fn bad_group_panics() {
        let _ = ring_shift_flows(10, 4, 1);
    }

    #[test]
    fn adaptive_absorbs_spine_failures_static_does_not() {
        let ls = fabric();
        let flows: Vec<FlowSpec> =
            (0..64).map(|i| FlowSpec { src: i, dst: (i + 8) % 64 }).collect();
        let failed = [0usize, 1];
        let adaptive = assign_spines_with_failures(&ls, &flows, RoutePolicy::Adaptive, &failed);
        let stat = assign_spines_with_failures(&ls, &flows, RoutePolicy::StaticBySource, &failed);
        for s in adaptive.iter().chain(stat.iter()).flatten() {
            assert!(!failed.contains(s), "never routes through a dead spine");
        }
        let la = load_report(&ls, &flows, &adaptive).max_link_load;
        let lst = load_report(&ls, &flows, &stat).max_link_load;
        // 8 flows per leaf over 6 healthy spines: adaptive lands at 2;
        // static's naive fallback piles both orphaned flows on spine 2.
        assert!(la <= 2, "adaptive load {la}");
        assert!(lst >= 3, "static naive failover congests: {lst}");
    }

    #[test]
    #[should_panic(expected = "all spines failed")]
    fn total_spine_failure_panics() {
        let ls = fabric();
        let flows = vec![FlowSpec { src: 0, dst: 8 }];
        let _ = assign_spines_with_failures(
            &ls,
            &flows,
            RoutePolicy::Adaptive,
            &[0, 1, 2, 3, 4, 5, 6, 7],
        );
    }
}
