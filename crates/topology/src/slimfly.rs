//! Slim Fly (McKay–Miller–Širáň) topology: diameter-2, near-Moore-optimal.
//!
//! Table 3 prices a Slim Fly with `q = 28` (1,568 switches, 32,928
//! endpoints) using the methodology of the NSDI'24 Slim Fly paper. The
//! analytic counts work for any `q = 4w + δ`, `δ ∈ {−1, 0, 1}`; the actual
//! MMS graph construction (used to verify the diameter-2 property) requires
//! a prime `q`.

use crate::cost::TopologySummary;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Analytic Slim Fly descriptor.
///
/// ```
/// use dsv3_topology::slimfly::SlimFly;
///
/// // The q=5 MMS graph is the Hoffman–Singleton graph: diameter 2.
/// assert_eq!(SlimFly::new(5).build().diameter(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlimFly {
    /// MMS parameter `q` (`q = 4w + δ`).
    pub q: usize,
}

impl SlimFly {
    /// New Slim Fly descriptor.
    ///
    /// # Panics
    ///
    /// Panics unless `q mod 4 ∈ {0, 1, 3}` and `q ≥ 4` (the MMS family
    /// needs `δ ∈ {−1, 0, 1}`).
    #[must_use]
    pub fn new(q: usize) -> Self {
        assert!(q >= 4, "q too small");
        assert!(q % 4 != 2, "q = 4w+δ requires δ ∈ {{-1,0,1}}");
        Self { q }
    }

    /// δ such that `q = 4w + δ`.
    #[must_use]
    pub fn delta(&self) -> i64 {
        match self.q % 4 {
            0 => 0,
            1 => 1,
            3 => -1,
            // lint:allow(P1) — q % 4 == 2 is rejected by `new`'s validation (q is an odd prime power); a fallback δ would silently build the wrong graph
            _ => unreachable!("validated in new"),
        }
    }

    /// Network degree `k = (3q − δ) / 2`.
    #[must_use]
    pub fn network_degree(&self) -> usize {
        ((3 * self.q as i64 - self.delta()) / 2) as usize
    }

    /// Switches: `2q²`.
    #[must_use]
    pub fn switches(&self) -> usize {
        2 * self.q * self.q
    }

    /// Endpoints per switch: `⌈k/2⌉` (the SF paper's balanced choice).
    #[must_use]
    pub fn endpoints_per_switch(&self) -> usize {
        self.network_degree().div_ceil(2)
    }

    /// Total endpoints.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.switches() * self.endpoints_per_switch()
    }

    /// Switch-switch links: `q² · k`.
    #[must_use]
    pub fn switch_links(&self) -> usize {
        self.switches() * self.network_degree() / 2
    }

    /// Table-3-style summary.
    #[must_use]
    pub fn summary(&self, name: &str) -> TopologySummary {
        TopologySummary {
            name: name.to_string(),
            endpoints: self.endpoints(),
            switches: self.switches(),
            switch_links: self.switch_links(),
            electrical_switch_links: 0,
            radix: self.network_degree() + self.endpoints_per_switch(),
        }
    }

    /// Build the actual MMS graph. Only supported for prime `q ≡ 1 (mod 4)`
    /// (the δ = 1 construction over GF(q), where the even-power generator
    /// set is symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a prime with `q ≡ 1 (mod 4)`.
    #[must_use]
    pub fn build(&self) -> Graph {
        let q = self.q;
        assert!(
            is_prime(q) && q % 4 == 1,
            "MMS construction implemented for prime q ≡ 1 (mod 4) only"
        );
        let xi = primitive_root(q);
        // Generator sets X (even powers) and X' (odd powers).
        let mut x_set = vec![false; q];
        let mut xp_set = vec![false; q];
        let mut p = 1usize;
        for i in 0..(q - 1) {
            if i % 2 == 0 {
                x_set[p] = true;
            } else {
                xp_set[p] = true;
            }
            p = p * xi % q;
        }
        // Vertices: (part, x, y) -> part*q² + x*q + y.
        let id = |part: usize, x: usize, y: usize| part * q * q + x * q + y;
        let mut g = Graph::new(2 * q * q);
        // Intra-part links.
        for x in 0..q {
            for y in 0..q {
                for yp in (y + 1)..q {
                    let d = (yp - y) % q;
                    if x_set[d] || x_set[(q - d) % q] {
                        g.add_link(id(0, x, y), id(0, x, yp));
                    }
                    if xp_set[d] || xp_set[(q - d) % q] {
                        g.add_link(id(1, x, y), id(1, x, yp));
                    }
                }
            }
        }
        // Cross links: (0, x, y) ~ (1, m, c) iff y = m·x + c (mod q).
        for x in 0..q {
            for m in 0..q {
                for c in 0..q {
                    let y = (m * x + c) % q;
                    g.add_link(id(0, x, y), id(1, m, c));
                }
            }
        }
        for s in 0..g.switches() {
            for _ in 0..self.endpoints_per_switch() {
                g.attach_endpoint(s);
            }
        }
        g
    }
}

fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Smallest primitive root of prime `q`.
fn primitive_root(q: usize) -> usize {
    'outer: for g in 2..q {
        let mut seen = vec![false; q];
        let mut p = 1usize;
        for _ in 0..(q - 1) {
            p = p * g % q;
            if seen[p] {
                continue 'outer;
            }
            seen[p] = true;
        }
        return g;
    }
    // lint:allow(P1) — every prime field has a primitive root (number theory, not an input condition); any fallback generator would corrupt the MMS construction
    panic!("no primitive root found for {q}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_counts_q28() {
        let sf = SlimFly::new(28);
        assert_eq!(sf.switches(), 1568);
        assert_eq!(sf.endpoints(), 32_928);
        assert_eq!(sf.switch_links(), 32_928);
        assert_eq!(sf.network_degree(), 42);
    }

    #[test]
    fn q5_is_hoffman_singleton() {
        // q=5 yields the Hoffman–Singleton graph: 50 vertices, degree 7,
        // diameter 2, girth 5 — the Moore graph.
        let sf = SlimFly::new(5);
        let g = sf.build();
        assert_eq!(g.switches(), 50);
        assert_eq!(g.switch_links(), 175);
        for s in 0..50 {
            assert_eq!(g.degree(s), 7);
        }
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn q13_diameter_2() {
        let sf = SlimFly::new(13);
        let g = sf.build();
        assert_eq!(g.switches(), 2 * 13 * 13);
        assert_eq!(g.diameter(), 2);
        assert_eq!(g.degree(0), sf.network_degree());
    }

    #[test]
    fn primitive_roots() {
        assert_eq!(primitive_root(5), 2);
        assert_eq!(primitive_root(13), 2);
        assert_eq!(primitive_root(7), 3);
    }

    #[test]
    #[should_panic(expected = "prime")]
    fn non_prime_build_panics() {
        let _ = SlimFly::new(28).build();
    }

    #[test]
    #[should_panic(expected = "4w")]
    fn bad_q_panics() {
        let _ = SlimFly::new(6);
    }
}
