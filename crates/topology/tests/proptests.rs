//! Property-based tests for topology builders and routing policies.

use dsv3_topology::dragonfly::Dragonfly;
use dsv3_topology::fattree::{LeafSpine, ThreeLayerFatTree};
use dsv3_topology::routing::{assign_spines, load_report, ring_shift_flows, FlowSpec, RoutePolicy};
use dsv3_topology::slimfly::SlimFly;
use proptest::prelude::*;

proptest! {
    /// Every leaf-spine graph satisfies the structural identities its
    /// counting formulas claim.
    #[test]
    fn leafspine_identities(half_radix in 1usize..16) {
        let radix = 2 * half_radix;
        let ls = LeafSpine::from_radix(radix);
        let g = ls.to_graph();
        prop_assert_eq!(g.switches(), ls.switches());
        prop_assert_eq!(g.switch_links(), ls.switch_links());
        prop_assert_eq!(g.endpoints(), ls.endpoints());
        // Each leaf's degree = spines; each spine's degree = leaves.
        for l in 0..ls.leaves {
            prop_assert_eq!(g.degree(l), ls.spines);
        }
        for s in 0..ls.spines {
            prop_assert_eq!(g.degree(ls.leaves + s), ls.leaves);
        }
        if ls.leaves > 1 {
            prop_assert_eq!(g.diameter(), 2);
        }
    }

    /// FT3 counting identities: endpoints = r³/4, links = r³/2 (i.e. exactly
    /// 2 uplink tiers per endpoint), switches = 1.25·r².
    #[test]
    fn ft3_identities(quarter in 1usize..12) {
        let r = 4 * quarter;
        let ft3 = ThreeLayerFatTree::new(r);
        prop_assert_eq!(ft3.switch_links(), 2 * ft3.endpoints());
        prop_assert_eq!(4 * ft3.switches(), 5 * r * r);
    }

    /// Slim Fly counting: links = switches · degree / 2; endpoints/switch
    /// within one of half the network degree.
    #[test]
    fn slimfly_identities(w in 1usize..12, delta in 0usize..3) {
        let q = 4 * w + [0usize, 1, 3][delta];
        let sf = SlimFly::new(q);
        prop_assert_eq!(sf.switch_links() * 2, sf.switches() * sf.network_degree());
        let p = sf.endpoints_per_switch();
        prop_assert!(p * 2 >= sf.network_degree());
        prop_assert!(p * 2 <= sf.network_degree() + 1);
    }

    /// Canonical dragonfly builds agree with the counting formulas and have
    /// uniform degree a-1+h.
    #[test]
    fn dragonfly_identities(a_half in 1usize..4, h in 1usize..4) {
        let a = 2 * a_half;
        let df = Dragonfly { p: 1, a, h, groups: a * h + 1 };
        let g = df.build();
        prop_assert_eq!(g.switches(), df.switches());
        prop_assert_eq!(g.switch_links(), df.switch_links());
        for s in 0..g.switches() {
            prop_assert_eq!(g.degree(s), a - 1 + h);
        }
        prop_assert!(g.diameter() <= 3);
    }

    /// Routing: adaptive assignment's max link load never exceeds ECMP's on
    /// the same flow set, and every inter-leaf flow gets a spine.
    #[test]
    fn adaptive_beats_ecmp(seed in 0u64..500, shift in 1usize..32) {
        let ls = LeafSpine { leaves: 8, spines: 8, hosts_per_leaf: 8 };
        let flows: Vec<FlowSpec> = (0..64).map(|i| FlowSpec { src: i, dst: (i + shift) % 64 }).collect();
        let ecmp = assign_spines(&ls, &flows, RoutePolicy::Ecmp { seed });
        let adaptive = assign_spines(&ls, &flows, RoutePolicy::Adaptive);
        for (f, s) in flows.iter().zip(&adaptive) {
            prop_assert_eq!(ls.same_leaf(f.src, f.dst), s.is_none());
        }
        let le = load_report(&ls, &flows, &ecmp).max_link_load;
        let la = load_report(&ls, &flows, &adaptive).max_link_load;
        prop_assert!(la <= le, "adaptive {la} vs ecmp {le}");
    }

    /// Ring-shift flow generation covers each destination exactly once per
    /// group and never crosses groups.
    #[test]
    fn ring_shift_is_permutation(groups in 1usize..8, size in 2usize..8, shift in 0usize..8) {
        let hosts = groups * size;
        let flows = ring_shift_flows(hosts, size, shift % size);
        let mut seen = vec![0usize; hosts];
        for f in &flows {
            prop_assert_eq!(f.src / size, f.dst / size, "stays in group");
            seen[f.dst] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
