//! Named unit-of-measure conversions.
//!
//! The workspace speaks several time bases at once: fault plans are
//! scheduled in milliseconds, the flow simulator runs in microseconds,
//! the training availability model thinks in seconds, and memory models
//! mix bytes with gigabytes. Crossing one of those boundaries with an
//! ad-hoc `* 1000.0` is exactly the class of silent bug that corrupts
//! fabric-scale results, so the lint rule U2 treats a bare scale factor
//! as *dimensionally unsound*: scaling a `_ms` quantity by a literal
//! still yields milliseconds as far as the analysis is concerned.
//!
//! These functions are the sanctioned escape hatch. Each one's name
//! follows the `<from>_to_<to>` pattern that the linter's conversion
//! registry recognizes, so `us = ms_to_us(ms)` type-checks dimensionally
//! while `us = ms * 1000.0` is flagged. Keep them `#[inline]` and
//! trivially equal to the multiply they replace: every golden report in
//! the tree must stay byte-identical when a call site is converted.

#![forbid(unsafe_code)]

/// Milliseconds → microseconds.
#[inline]
#[must_use]
pub fn ms_to_us(ms: f64) -> f64 {
    ms * 1000.0
}

/// Microseconds → milliseconds.
#[inline]
#[must_use]
pub fn us_to_ms(us: f64) -> f64 {
    us / 1000.0
}

/// Seconds → milliseconds.
#[inline]
#[must_use]
pub fn s_to_ms(s: f64) -> f64 {
    s * 1000.0
}

/// Milliseconds → seconds.
#[inline]
#[must_use]
pub fn ms_to_s(ms: f64) -> f64 {
    ms / 1000.0
}

/// Seconds → microseconds.
#[inline]
#[must_use]
pub fn s_to_us(s: f64) -> f64 {
    s * 1_000_000.0
}

/// Microseconds → seconds.
#[inline]
#[must_use]
pub fn us_to_s(us: f64) -> f64 {
    us / 1_000_000.0
}

/// Gigabytes (decimal, 1e9 — the convention every bandwidth and memory
/// figure in this workspace already uses) → bytes.
#[inline]
#[must_use]
pub fn gb_to_bytes(gb: f64) -> f64 {
    gb * 1e9
}

/// Bytes → gigabytes (decimal, 1e9).
#[inline]
#[must_use]
pub fn bytes_to_gb(bytes: f64) -> f64 {
    bytes / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_are_exact_inverses_on_representable_values() {
        assert_eq!(ms_to_us(1.5), 1500.0);
        assert_eq!(us_to_ms(1500.0), 1.5);
        assert_eq!(s_to_ms(2.0), 2000.0);
        assert_eq!(ms_to_s(2000.0), 2.0);
        assert_eq!(s_to_us(0.25), 250_000.0);
        assert_eq!(us_to_s(250_000.0), 0.25);
    }

    #[test]
    fn conversions_are_bit_identical_to_the_bare_multiplies_they_replace() {
        // The faults→netsim bridge used `at_ms * 1000.0`; goldens pin
        // its output byte-exactly, so the named conversion must produce
        // the *same bits*, not just the same value approximately.
        for ms in [0.0, 0.1, 1.0 / 3.0, 17.25, 9_999.75, 1e12] {
            assert!(ms_to_us(ms).to_bits() == (ms * 1000.0).to_bits());
            assert!(ms_to_s(ms).to_bits() == (ms / 1000.0).to_bits());
        }
    }

    #[test]
    fn data_conversions_round_trip() {
        assert_eq!(gb_to_bytes(80.0), 80e9);
        assert_eq!(bytes_to_gb(80e9), 80.0);
        assert_eq!(bytes_to_gb(gb_to_bytes(57.9)), 57.9);
    }
}
