//! Hardware/model co-design sweep: how the paper's §6 recommendations move
//! the two headline metrics (training MFU, decode TPS) on the H800 baseline.
//!
//! ```sh
//! cargo run --release --example codesign_sweep
//! ```

use dsv3_core::collectives::innetwork::sm_offload_speedup;
use dsv3_core::experiments::{future_hardware, speed_limits};
use dsv3_core::inference::tpot::SpeedLimitConfig;
use dsv3_core::parallel::trainstep::{table4, TrainStepConfig};

fn main() {
    println!("{}", future_hardware::render());
    println!("{}", speed_limits::render_combine_formats());

    // Scale-up bandwidth sweep: where does the EP decode limit cross 10×?
    println!("Decode speed vs scale-up bandwidth (V3, 61 layers, 32 tok/device):");
    let base = SpeedLimitConfig::h800_ib().evaluate().tokens_per_second;
    for bw in [50.0f64, 100.0, 200.0, 450.0, 900.0] {
        let mut cfg = SpeedLimitConfig::h800_ib();
        cfg.bandwidth_bytes_per_s = bw * 1e9;
        let tps = cfg.evaluate().tokens_per_second;
        println!("  {bw:>5.0} GB/s -> {tps:>6.0} tok/s ({:>4.1}x H800+IB)", tps / base);
    }
    println!();

    // Training: what SM offload does to step time and MFU.
    println!("Training step with EP communication offloaded from SMs (§4.4):");
    let baseline = table4("H800 (20 SMs on comm)", &TrainStepConfig::deepseek_v3(1.0));
    let offloaded = {
        let mut cfg = TrainStepConfig::deepseek_v3(1.0);
        cfg.kernel_efficiency *= sm_offload_speedup(132, 20);
        table4("H800 + comm co-processor", &cfg)
    };
    for m in [&baseline, &offloaded] {
        println!(
            "  {:<26} {:>6.2} s/step, causal MFU {:>5.2}%, {:>6.1}B tokens/day",
            m.fabric,
            m.time_per_step_s,
            m.mfu_causal * 100.0,
            m.tokens_per_day_b
        );
    }
}
