//! Interconnect-driven MoE scenario (§4): node-limited routing, NVLink
//! deduplication, aux-free load balancing, and the MLA latent cache.
//!
//! ```sh
//! cargo run --release --example expert_routing
//! ```

use dsv3_core::collectives::deepep::{dedup_analysis, EpConfig};
use dsv3_core::collectives::{Cluster, ClusterConfig, FabricKind};
use dsv3_core::experiments::node_limited;
use dsv3_core::inference::kvcache::KvCacheManager;
use dsv3_core::model::mla::{MlaDims, MlaLayer};
use dsv3_core::model::moe::{routing_stats, MoeGate, MoeGateConfig};
use dsv3_core::model::zoo;
use dsv3_core::numerics::Matrix;

fn main() {
    println!("{}", node_limited::render());

    // §4.3's bandwidth argument, quantified on the 8-node cluster.
    let cluster = Cluster::new(ClusterConfig::h800(8, FabricKind::MultiPlane));
    let a = dedup_analysis(&cluster, &EpConfig::deepseek_v3());
    println!(
        "IB copies per token: {:.2} with NVLink dedup vs {:.2} without ({:.1}x saving)\n",
        a.with_dedup,
        a.without_dedup,
        a.without_dedup / a.with_dedup
    );

    // Aux-loss-free balancing in action.
    let cfg = MoeGateConfig { experts: 64, groups: 8, top_groups: 4, top_k: 8 };
    let mut gate = MoeGate::new(32, cfg, 42);
    let tokens: Vec<Vec<f32>> =
        (0..512).map(|i| Matrix::random(1, 32, 1.0, 9000 + i).data).collect();
    for round in 0..20 {
        let routings: Vec<_> = tokens.iter().map(|t| gate.route_token(t)).collect();
        let st = routing_stats(&routings, &cfg);
        if round % 5 == 0 {
            println!(
                "balancing round {round:>2}: load imbalance {:.2}x, mean nodes touched {:.2}",
                st.load_imbalance, st.mean_nodes_touched
            );
        }
        gate.update_bias(&st.expert_loads, 0.02);
    }
    println!();

    // MLA's latent cache: identical attention output, tiny cache.
    let mut layer = MlaLayer::new(MlaDims::tiny(), 3);
    for i in 0..32 {
        let x = Matrix::random(1, layer.dims.hidden, 1.0, 100 + i).data;
        let _ = layer.decode_step(&x);
    }
    println!(
        "MLA latent cache after 32 tokens: {} B vs {} B explicit ({}x smaller)",
        layer.cache_bytes(2),
        32 * layer.dims.explicit_elems_per_token() * 2,
        layer.dims.explicit_elems_per_token() / layer.dims.latent_elems_per_token()
    );

    // Serving capacity at 40 GB of KV budget (Table 1 operationalized).
    for model in [zoo::deepseek_v3(), zoo::qwen25_72b(), zoo::llama31_405b()] {
        let mgr = KvCacheManager::new(&model, 2, 40_000_000_000);
        println!(
            "  {:<16} holds {:>9} tokens of context in 40 GB",
            model.name,
            mgr.capacity_tokens()
        );
    }
}
