//! Robustness drill (§5.1.1, §6.1): one seeded fault timeline driving
//! time-varying plane flaps, serving-under-faults, spine failures, and
//! silent-data-corruption audits.
//!
//! Faults here arrive *during* the run — a `FaultPlan` generated from
//! seeded Poisson processes — instead of the static failed-plane counts
//! the original drill used.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use dsv3_core::collectives::failures::alltoall_with_failed_planes;
use dsv3_core::collectives::{Cluster, ClusterConfig, FabricKind};
use dsv3_core::experiments::robustness;
use dsv3_core::faults::{FaultKind, FaultPlan, FaultPlanConfig, RecoveryPolicy};
use dsv3_core::numerics::integrity::{
    audit, correct, inject_bit_flip, protected_matmul, IntegrityReport,
};
use dsv3_core::numerics::Matrix;
use dsv3_core::serving::{run_with_faults, ArrivalProcess, RouterPolicy, ServingSimConfig};
use dsv3_core::topology::fattree::LeafSpine;
use dsv3_core::topology::routing::{
    assign_spines_with_failures, load_report, FlowSpec, RoutePolicy,
};

fn main() {
    println!("{}", robustness::render());

    // One seeded timeline drives every drill below.
    let plan = FaultPlan::generate(&FaultPlanConfig {
        seed: 42,
        horizon_ms: 60_000.0,
        replicas: 4,
        planes: 8,
        crash_mtbf_ms: 15_000.0,
        crash_repair_ms: 4_000.0,
        flap_mtbf_ms: 12_000.0,
        flap_repair_ms: 8_000.0,
        straggler_mtbf_ms: 30_000.0,
        straggler_slowdown: 1.8,
        straggler_duration_ms: 3_000.0,
        sdc_mtbf_ms: 20_000.0,
        sdc_detection_rate: 0.7,
        // Link-granular chaos stays off here; `dsv3 net-chaos` owns it.
        ..FaultPlanConfig::default()
    });
    println!("Fault plan: {} events over 60 s (seed 42):", plan.events.len());
    for e in &plan.events {
        let what = match e.kind {
            FaultKind::ReplicaCrash { replica, repair_ms } => {
                format!("replica {replica} crashes ({repair_ms:.0} ms repair)")
            }
            FaultKind::PlaneFlap { plane, repair_ms } => {
                format!("plane {plane} flaps ({repair_ms:.0} ms repair)")
            }
            FaultKind::Straggler { slowdown, duration_ms } => {
                format!("straggler x{slowdown:.1} for {duration_ms:.0} ms")
            }
            FaultKind::Sdc { detected } => {
                format!("SDC strike ({})", if detected { "caught by audit" } else { "silent" })
            }
            FaultKind::LinkFail { link, repair_ms } => {
                format!("link {link} fails ({repair_ms:.0} ms repair)")
            }
        };
        println!("  t={:>7.0} ms  {what}", e.at_ms);
    }
    println!();

    // Drill 1: the plan's flaps as a time-varying retention function,
    // measured on the 32-GPU multi-plane fabric at every change point.
    let sched = plan.flap_schedule();
    let c = Cluster::new(ClusterConfig::h800(4, FabricKind::MultiPlane));
    println!("Time-varying plane flaps (32 GPUs, 1 MB/peer all-to-all):");
    for t in std::iter::once(0.0).chain(sched.change_points_ms()) {
        let failed = sched.failed_planes_at(t);
        let r = alltoall_with_failed_planes(&c, 1024.0 * 1024.0, &failed);
        println!(
            "  t={t:>7.0} ms: {}/8 planes down, {:>5.1} GB/s busbw ({:>5.1}% retained)",
            failed.len(),
            r.degraded.busbw_gbps,
            r.bandwidth_retention * 100.0
        );
    }
    println!();

    // Drill 2: serve a live request stream straight through the timeline.
    let cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 10.0 },
        300,
        RouterPolicy::Unified,
    );
    let r = run_with_faults(&cfg, &plan, &RecoveryPolicy::hedged());
    println!("Serving through the timeline (300 requests, hedged recovery):");
    println!(
        "  completed {} / rejected {} / unfinished {}; {} jobs lost to crashes, {} retries, {} hedges ({} won)",
        r.serving.completed,
        r.faults.rejected,
        r.faults.unfinished,
        r.faults.jobs_lost_to_crashes,
        r.faults.retries,
        r.faults.hedges_spawned,
        r.faults.hedge_wins
    );
    println!(
        "  {} degraded steps (min retention {:.1}%), TPOT p99 {:.2} ms, SLO attainment {:.1}%",
        r.faults.degraded_steps,
        r.faults.min_bandwidth_retention * 100.0,
        r.serving.tpot_ms.p99,
        r.serving.slo_attainment * 100.0
    );
    println!();

    // Drill 3: spine failure under each routing policy.
    let ls = LeafSpine { leaves: 8, spines: 8, hosts_per_leaf: 8 };
    let flows: Vec<FlowSpec> = (0..64).map(|i| FlowSpec { src: i, dst: (i + 8) % 64 }).collect();
    println!("Spine-failure drill (2 of 8 spines down, shift permutation):");
    for (name, policy) in [
        ("ECMP", RoutePolicy::Ecmp { seed: 1 }),
        ("Adaptive", RoutePolicy::Adaptive),
        ("Static", RoutePolicy::StaticBySource),
    ] {
        let a = assign_spines_with_failures(&ls, &flows, policy, &[0, 1]);
        let rep = load_report(&ls, &flows, &a);
        println!(
            "  {name:<9} max link load {} ({:.0}% of ideal throughput)",
            rep.max_link_load,
            rep.throughput_fraction() * 100.0
        );
    }
    println!();

    // Drill 4: replay the plan's SDC strikes against a checksummed GEMM —
    // detected strikes are audited and repaired, silent ones get through.
    let a = Matrix::random(32, 64, 1.0, 7);
    let b = Matrix::random(64, 24, 1.0, 8);
    println!("SDC drill (checksummed 32x64x24 GEMM, strikes from the plan):");
    for (i, e) in plan.events.iter().filter(|e| matches!(e.kind, FaultKind::Sdc { .. })).enumerate()
    {
        let FaultKind::Sdc { detected } = e.kind else { unreachable!() };
        if !detected {
            println!("  t={:>7.0} ms: silent strike — corrupted result ships", e.at_ms);
            continue;
        }
        let (mut cmat, sums) = protected_matmul(&a, &b);
        inject_bit_flip(&mut cmat, (13 + i) % 32, (5 + i) % 24, 26);
        match audit(&cmat, &sums) {
            IntegrityReport::Corrupted { row, col, .. } => {
                correct(&mut cmat, &a, &b, row, col);
                println!(
                    "  t={:>7.0} ms: flip caught at ({row},{col}), recomputed; post-repair audit: {:?}",
                    e.at_ms,
                    audit(&cmat, &sums)
                );
            }
            other => println!("  t={:>7.0} ms: unexpected audit result {other:?}", e.at_ms),
        }
    }
}
