//! Robustness drill (§5.1.1, §6.1): plane failures, spine failures, and
//! silent-data-corruption detection with checksummed GEMMs.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use dsv3_core::collectives::failures::alltoall_with_failed_planes;
use dsv3_core::collectives::{Cluster, ClusterConfig, FabricKind};
use dsv3_core::experiments::robustness;
use dsv3_core::numerics::integrity::{
    audit, correct, inject_bit_flip, protected_matmul, IntegrityReport,
};
use dsv3_core::numerics::Matrix;
use dsv3_core::topology::fattree::LeafSpine;
use dsv3_core::topology::routing::{
    assign_spines_with_failures, load_report, FlowSpec, RoutePolicy,
};

fn main() {
    println!("{}", robustness::render());

    // Live drill 1: progressively kill planes during an all-to-all.
    let c = Cluster::new(ClusterConfig::h800(4, FabricKind::MultiPlane));
    println!("Plane-failure drill (32 GPUs, 1 MB/peer all-to-all):");
    for k in [0usize, 1, 2, 4, 7] {
        let failed: Vec<usize> = (0..k).collect();
        let r = alltoall_with_failed_planes(&c, 1024.0 * 1024.0, &failed);
        println!(
            "  {k}/8 planes down: {:>5.1} GB/s busbw ({:>4.1}% retained)",
            r.degraded.busbw_gbps,
            r.bandwidth_retention * 100.0
        );
    }
    println!();

    // Live drill 2: spine failure under each routing policy.
    let ls = LeafSpine { leaves: 8, spines: 8, hosts_per_leaf: 8 };
    let flows: Vec<FlowSpec> = (0..64).map(|i| FlowSpec { src: i, dst: (i + 8) % 64 }).collect();
    println!("Spine-failure drill (2 of 8 spines down, shift permutation):");
    for (name, policy) in [
        ("ECMP", RoutePolicy::Ecmp { seed: 1 }),
        ("Adaptive", RoutePolicy::Adaptive),
        ("Static", RoutePolicy::StaticBySource),
    ] {
        let a = assign_spines_with_failures(&ls, &flows, policy, &[0, 1]);
        let rep = load_report(&ls, &flows, &a);
        println!(
            "  {name:<9} max link load {} ({:.0}% of ideal throughput)",
            rep.max_link_load,
            rep.throughput_fraction() * 100.0
        );
    }
    println!();

    // Live drill 3: catch and repair a silent bit flip mid-GEMM.
    let a = Matrix::random(32, 64, 1.0, 7);
    let b = Matrix::random(64, 24, 1.0, 8);
    let (mut cmat, sums) = protected_matmul(&a, &b);
    inject_bit_flip(&mut cmat, 13, 5, 26);
    match audit(&cmat, &sums) {
        IntegrityReport::Corrupted { row, col, .. } => {
            println!("SDC drill: flip detected at ({row},{col}); recomputing that dot product…");
            correct(&mut cmat, &a, &b, row, col);
            println!("  post-repair audit: {:?}", audit(&cmat, &sums));
        }
        other => println!("SDC drill: unexpected audit result {other:?}"),
    }
}
