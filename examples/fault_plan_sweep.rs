//! Fault-plan sweep: dial the crash rate up and watch serving degrade
//! gracefully — and the Young/Daly checkpoint math track MTBF.
//!
//! Two sweeps:
//! 1. **Serving**: the same Poisson workload under fault plans whose
//!    crash MTBF shrinks from "never" to every 2 seconds, with and
//!    without hedging. Completion stays high (degradation, not
//!    disconnection) while SLO attainment pays for every re-prefill.
//! 2. **Training**: MTBF from 30 min to 48 h; the optimal checkpoint
//!    interval and the simulated-vs-analytic goodput at each point.
//!
//! ```sh
//! cargo run --release --example fault_plan_sweep
//! ```

use dsv3_core::faults::{simulate_goodput, FaultPlan, FaultPlanConfig, RecoveryPolicy};
use dsv3_core::model::availability::AvailabilityModel;
use dsv3_core::serving::{run_with_faults, ArrivalProcess, RouterPolicy, ServingSimConfig};

fn main() {
    let cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 10.0 },
        400,
        RouterPolicy::Unified,
    );

    println!("Crash-rate sweep (400 requests, 4 replicas, 4 s repairs, seed 1):\n");
    println!(
        "{:>10}  {:>7} {:>7} {:>8} {:>8}  {:>9} | {:>9} {:>7}",
        "crash MTBF", "crashes", "lost", "complete", "rejected", "attain", "+hedging", "wins"
    );
    for mtbf_ms in [f64::INFINITY, 30_000.0, 15_000.0, 8_000.0, 4_000.0, 2_000.0] {
        let plan = FaultPlan::generate(&FaultPlanConfig {
            seed: 1,
            horizon_ms: 60_000.0,
            replicas: 4,
            planes: 8,
            crash_mtbf_ms: mtbf_ms,
            crash_repair_ms: 4_000.0,
            ..FaultPlanConfig::default()
        });
        let plain = run_with_faults(&cfg, &plan, &RecoveryPolicy::default());
        let hedged = run_with_faults(&cfg, &plan, &RecoveryPolicy::hedged());
        let label = if mtbf_ms.is_finite() {
            format!("{:.0} s", mtbf_ms / 1000.0)
        } else {
            "never".to_string()
        };
        println!(
            "{label:>10}  {:>7} {:>7} {:>8} {:>8}  {:>8.1}% | {:>8.1}% {:>7}",
            plain.faults.crash_events,
            plain.faults.jobs_lost_to_crashes,
            plain.serving.completed,
            plain.faults.rejected,
            plain.serving.slo_attainment * 100.0,
            hedged.serving.slo_attainment * 100.0,
            hedged.faults.hedge_wins,
        );
    }

    println!("\nCheckpoint/restart sweep (60 s checkpoint writes, 180 s restarts):\n");
    println!(
        "{:>8}  {:>8}  {:>10} {:>10} {:>9}",
        "MTBF", "τ* (Y/D)", "analytic", "simulated", "rel err"
    );
    for mtbf_h in [0.5, 1.0, 3.0, 6.0, 12.0, 24.0, 48.0] {
        let av = AvailabilityModel {
            mtbf_s: mtbf_h * 3_600.0,
            checkpoint_write_s: 60.0,
            restart_s: 180.0,
        };
        let tau = av.young_daly_interval_s();
        let horizon_s = av.mtbf_s * 1_000.0;
        let timeline = FaultPlan::generate(&FaultPlanConfig {
            seed: 9,
            horizon_ms: horizon_s * 4.0 * 1_000.0,
            replicas: 1,
            planes: 1,
            crash_mtbf_ms: av.mtbf_s * 1_000.0,
            crash_repair_ms: 0.0,
            ..FaultPlanConfig::default()
        });
        let g = simulate_goodput(&av, tau, &timeline.crash_times_s(), horizon_s)
            .expect("positive interval and sorted seeded timeline");
        println!(
            "{mtbf_h:>7.1}h  {tau:>7.0}s  {:>9.2}% {:>9.2}% {:>8.2}%",
            g.analytic_goodput * 100.0,
            g.goodput * 100.0,
            (g.goodput - g.analytic_goodput).abs() / g.analytic_goodput * 100.0
        );
    }
    println!("\nShorter MTBF pulls the optimal interval down (τ* = sqrt(2·C·MTBF))");
    println!("and goodput with it; the seeded simulation tracks the analytic curve.");
}
