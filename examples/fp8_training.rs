//! Low-precision scenario (§3): FP8 GEMM accumulation error, LogFMT
//! communication quality, and the FP8-vs-BF16 training comparison.
//!
//! ```sh
//! cargo run --release --example fp8_training
//! ```

use dsv3_core::experiments::{fp8_gemm, fp8_training, logfmt};
use dsv3_core::numerics::logfmt::fused_codec_overhead;
use dsv3_core::numerics::minifloat::Format;

fn main() {
    // Where the FP8 formats sit.
    println!("FP8 format landscape:");
    for (name, f) in [
        ("E4M3", Format::E4M3),
        ("E5M2", Format::E5M2),
        ("E5M6", Format::E5M6),
        ("BF16", Format::BF16),
    ] {
        println!(
            "  {name:<5} max {:>9.1}, min normal {:.2e}, min subnormal {:.2e}",
            f.max_finite(),
            f.min_normal(),
            f.min_subnormal()
        );
    }
    println!();

    println!("{}", fp8_gemm::render());
    println!("{}", logfmt::render());
    println!(
        "LogFMT fused-codec overhead on Hopper-class SFUs: {:.0}% (§3.2.1 reports 50-100%)\n",
        fused_codec_overhead(0.25, 0.7) * 100.0
    );
    println!("{}", fp8_training::render());
}
