//! Inference-speed scenario (§2.3): EP speed limits, dual micro-batch
//! overlap, MTP speculative decoding, and prefill/decode disaggregation.
//!
//! ```sh
//! cargo run --release --example inference_speed
//! ```

use dsv3_core::experiments::{mtp, speed_limits};
use dsv3_core::inference::disagg::{disaggregated_tpot, unified_tpot, ServingConfig};
use dsv3_core::inference::overlap::{simulate, LayerPhases};
use dsv3_core::inference::tpot::SpeedLimitConfig;

fn main() {
    println!("{}", speed_limits::render());

    // What would it take to hit 100 tok/s on the H800 fleet? Sweep bandwidth.
    println!("Bandwidth sweep (61-layer V3 decode, comm-bound):");
    for bw_gbps in [50.0, 100.0, 200.0, 400.0, 900.0] {
        let mut cfg = SpeedLimitConfig::h800_ib();
        cfg.bandwidth_bytes_per_s = bw_gbps * 1e9;
        let s = cfg.evaluate();
        println!(
            "  {bw_gbps:>5.0} GB/s -> TPOT {:>6.2} ms, {:>6.0} tok/s",
            s.tpot_ms, s.tokens_per_second
        );
    }
    println!();

    // Dual micro-batch overlap (§2.3.1) on a comm-heavy decode layer.
    let phases = LayerPhases { attn_us: 60.0, dispatch_us: 121.0, moe_us: 40.0, combine_us: 121.0 };
    let o = simulate(61, phases);
    println!(
        "Dual micro-batch overlap: serial {:.2} ms, overlapped {:.2} ms ({:.2}x)\n",
        o.serial_us / 1000.0,
        o.overlapped_us / 1000.0,
        o.speedup()
    );

    println!("{}", mtp::render());

    // Prefill/decode disaggregation (§2.3.1).
    let cfg = ServingConfig::default();
    let uni = unified_tpot(&cfg);
    let dis = disaggregated_tpot(&cfg);
    println!("Prefill/decode pools (bursty prefill, 40% load):");
    println!(
        "  unified pool:       TPOT mean {:>6.0} µs, p95 {:>6.0} µs, max {:>6.0} µs",
        uni.mean_us, uni.p95_us, uni.max_us
    );
    println!(
        "  disaggregated pool: TPOT mean {:>6.0} µs, p95 {:>6.0} µs, max {:>6.0} µs",
        dis.mean_us, dis.p95_us, dis.max_us
    );
}
