//! Training memory timeline walkthrough: replay DeepSeek-V3's production
//! step, compare the memory-policy arms, and sweep the fit frontier.
//!
//! ```sh
//! cargo run --release --example memory_frontier
//! ```

use dsv3_core::experiments::mem_timeline;
use dsv3_core::memtl::{
    frontier_sweep, simulate, FrontierQuery, GpuSpec, MemPlan, Offload, Recompute, ScheduleKind,
    ZeroStage,
};
use dsv3_core::model::zoo;

fn main() {
    println!("{}", mem_timeline::render());

    // The production timeline, rank by rank: where the bytes live.
    let cfg = zoo::deepseek_v3();
    let rep = simulate(&cfg, &MemPlan::deepseek_v3_production());
    println!("Production DualPipe timeline (61 layers, PP16 x EP64, 120 micro x 4096 tok):");
    for r in &rep.ranks {
        println!(
            "  rank {:>2}: floor {:>5.1} GB + act peak {:>5.1} GB + ws {:>4.1} GB -> peak {:>5.1} GB @ {:>5.2} s",
            r.rank, r.floor_gb, r.peak_activation_gb, r.peak_workspace_gb, r.peak_gb, r.peak_time_s
        );
    }
    println!(
        "  step {:.2} s over {} chunk events; recompute overhead {:.1}% of forward work\n",
        rep.step_time_s,
        rep.chunk_events,
        rep.recompute_overhead_frac * 100.0
    );

    // How far offload bandwidth moves the step-time penalty.
    println!("Optimizer-state CPU offload: step-time penalty vs PCIe bandwidth:");
    let min_mem = MemPlan {
        recompute: Recompute::Full,
        zero_stage: ZeroStage::Z3,
        schedule: ScheduleKind::OneFOneB,
        ..MemPlan::deepseek_v3_production()
    };
    for pcie in [16.0f64, 32.0, 64.0, 128.0] {
        let r = simulate(
            &cfg,
            &MemPlan { offload: Offload::OptimizerCpu { pcie_gbps: pcie }, ..min_mem },
        );
        println!(
            "  {pcie:>5.0} GB/s -> +{:>6.2} ms/step (peak {:>5.1} GB; 128-way ZeRO keeps shards small)",
            r.offload_penalty_s * 1e3,
            r.peak_gb
        );
    }
    println!();

    // The frontier, finer-grained than the registry table.
    println!("Fit frontier (V3-shaped depth vs fleet size, 80 GB parts):");
    let queries: Vec<FrontierQuery> = [16, 32, 64, 128, 256, 512, 1024, 2048]
        .into_iter()
        .map(|gpus| FrontierQuery { gpus, spec: GpuSpec::h800() })
        .collect();
    for row in frontier_sweep(&cfg, &MemPlan::deepseek_v3_production(), &queries) {
        if row.max_layers == 0 {
            println!("  {:>5} GPUs: PP16 grid does not fit", row.gpus);
        } else {
            println!(
                "  {:>5} GPUs (ZeRO width {:>3}): {:>4} layers = {:>5.0}B params, peak {:>5.1} GB",
                row.gpus, row.zero_dp, row.max_layers, row.params_b, row.peak_gb
            );
        }
    }
}
