//! Network-planning scenario (§5): topology costing, all-to-all parity,
//! DeepEP throughput, and routing-policy effects on RoCE.
//!
//! ```sh
//! cargo run --release --example network_planning
//! ```

use dsv3_core::experiments::{fig5, fig6, fig7, fig8, table3};
use dsv3_core::topology::cost::CostModel;
use dsv3_core::topology::fattree::MultiPlane;
use dsv3_core::topology::slimfly::SlimFly;

fn main() {
    println!("{}", table3::render());

    // How far do the planes take you? Scale the MPFT.
    println!("Multi-plane scaling with 64-port switches:");
    for planes in [1usize, 2, 4, 8] {
        let mp = MultiPlane::from_radix(64, planes);
        let cost = CostModel::default().cost(&mp.summary("MPFT")) / 1e6;
        println!(
            "  {planes} plane(s): {:>6} endpoints, {:>4} switches, ${cost:>5.0}M",
            mp.endpoints(),
            mp.switches()
        );
    }
    println!();

    // A real diameter-2 Slim Fly instance, built over GF(29).
    let sf = SlimFly::new(29);
    let g = sf.build();
    println!(
        "Slim Fly q=29: {} switches, {} links, diameter {} (Moore-optimal-ish)\n",
        g.switches(),
        g.switch_links(),
        g.diameter()
    );

    println!("{}", fig5::render());
    println!("{}", fig6::render());
    println!("{}", fig7::render(512));
    println!("{}", fig8::render());
}
