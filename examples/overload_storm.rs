//! Reproduce — then defeat — a metastable retry storm.
//!
//! A closed-loop client population with timeouts and retries runs a
//! 0.9x / 2.0x / 0.9x load profile through the disaggregated H800
//! baseline. With no protection, the 30-second spike leaves the system
//! pinned near zero goodput long after it ends: timed-out attempts keep
//! wasting prefill as zombies, and their synchronized retries re-offer
//! the same work forever. Admission control (bounded queue + token
//! bucket + deadline shedding), the degradation ladder, and reactive
//! autoscaling then defeat the storm one layer at a time.
//!
//! ```sh
//! cargo run --release --example overload_storm
//! ```

use dsv3_core::faults::{Backoff, FaultPlan, RecoveryPolicy};
use dsv3_core::serving::{
    run_overload, AdmissionConfig, ArrivalProcess, AutoscaleConfig, ClientConfig, LadderConfig,
    OverloadConfig, Phase, RateLimitConfig, RouterPolicy, ServingSimConfig,
};

fn arms() -> Vec<(&'static str, OverloadConfig)> {
    let base = OverloadConfig {
        priority_classes: 4,
        timeline_window_ms: 10_000.0,
        ..OverloadConfig::disabled()
    };
    let admission = AdmissionConfig {
        queue_cap: 256,
        deadline_headroom: 1.0,
        rate_limit: Some(RateLimitConfig { rate_per_s_per_replica: 2.5, burst: 24.0 }),
    };
    let storm_clients = ClientConfig { backoff: Backoff::default(), ..ClientConfig::default() };
    vec![
        ("none", OverloadConfig { clients: Some(storm_clients), ..base.clone() }),
        (
            "shed",
            OverloadConfig {
                clients: Some(ClientConfig::default()),
                admission: Some(admission),
                ..base.clone()
            },
        ),
        (
            "ladder+autoscale",
            OverloadConfig {
                clients: Some(ClientConfig::default()),
                admission: Some(admission),
                ladder: Some(LadderConfig::default()),
                autoscale: Some(AutoscaleConfig::reactive(4, 4)),
                ..base
            },
        ),
    ]
}

fn main() {
    let phases = vec![
        Phase { duration_ms: 30_000.0, rate_per_s: 5.4 },
        Phase { duration_ms: 30_000.0, rate_per_s: 12.0 },
        Phase { duration_ms: 120_000.0, rate_per_s: 5.4 },
    ];
    let requests = phases.iter().map(|p| p.duration_ms * p.rate_per_s / 1_000.0).sum::<f64>();
    let cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Phased { phases },
        requests as usize,
        RouterPolicy::Disaggregated { prefill_fraction: 0.25 },
    );
    let plan = FaultPlan { replicas: 4, planes: 8, links: 0, events: Vec::new() };

    println!("A 2.0x spike (30 s) between steady 0.9x phases, closed-loop clients:\n");
    for (name, ov) in arms() {
        let r = run_overload(&cfg, &plan, &RecoveryPolicy::default(), &ov);
        println!(
            "{name:<18} completed {:>4}/{:<4}  timeouts {:>4}  retries {:>4}  shed {:>4}  \
             rung {}  pools d{}/p{}",
            r.serving.completed,
            r.serving.requests,
            r.overload.client_timeouts,
            r.overload.client_retries,
            r.overload.shed_deadline
                + r.overload.shed_rate_limited
                + r.overload.shed_queue_full
                + r.overload.shed_priority
                + r.overload.shed_context,
            r.overload.max_rung,
            r.autoscale.decode_peak.max(4),
            r.autoscale.prefill_peak.max(4),
        );
        print!("{:<18} goodput rps by 10s window:", "");
        for w in &r.timeline {
            print!(" {:>4.1}", w.goodput_rps);
        }
        println!("\n");
    }
    println!("The unprotected arm never recovers after the spike — the retry storm");
    println!("is self-sustaining (metastable). Shedding bounds the damage, and the");
    println!("ladder plus autoscaling hold goodput through the spike and after it.");
}
