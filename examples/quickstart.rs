//! Quickstart: regenerate the paper's five tables in one run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dsv3_core::experiments::{table1, table2, table3, table4, table5};

fn main() {
    println!("Reproducing 'Insights into DeepSeek-V3' (ISCA '25) — headline tables\n");
    println!("{}", table1::render());
    println!("{}", table2::render());
    println!("{}", table3::render());
    println!("{}", table4::render());
    println!("{}", table5::render());
    println!("Figures 5-8 and the in-text analyses have their own runners in");
    println!("dsv3_core::experiments — see the other examples.");
}
