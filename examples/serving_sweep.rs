//! Arrival-rate sweep through the request-level serving simulator:
//! watch p99 TPOT hit the saturation knee.
//!
//! The H800-calibrated engine serves ~17 req/s at 128 output tokens per
//! request (the §2.3.2 speed limit at its comm-bound operating point).
//! Below the knee the compute floor keeps decode steps flat; past it the
//! batch swells, steps stretch linearly with batch size, and queues grow
//! without bound — p99 TPOT rises super-linearly with offered load.
//!
//! ```sh
//! cargo run --release --example serving_sweep
//! ```

use dsv3_core::serving::{run, ArrivalProcess, RouterPolicy, ServingSimConfig};

fn main() {
    println!("Arrival-rate sweep (Poisson, 600 requests, unified pool):\n");
    println!(
        "{:>6}  {:>10} {:>10} {:>10}  {:>10} {:>10}  {:>9} {:>7}",
        "req/s", "TPOT p50", "TPOT p99", "TTFT p99", "goodput", "attain", "kv util", "preempt"
    );
    for rate in [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 32.0] {
        let cfg = ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            600,
            RouterPolicy::Unified,
        );
        let r = run(&cfg);
        println!(
            "{rate:>6.0}  {:>8.2}ms {:>8.2}ms {:>8.0}ms  {:>6.2}req/s {:>9.1}%  {:>8.1}% {:>7}",
            r.tpot_ms.p50,
            r.tpot_ms.p99,
            r.ttft_ms.p99,
            r.goodput_rps,
            r.slo_attainment * 100.0,
            r.kv_utilization.mean * 100.0,
            r.preemptions
        );
    }

    println!("\nRouting policies, prefill-heavy bursty load (8 req/s, CV^2 = 32, 1K prompts):\n");
    for (label, router) in [
        ("unified", RouterPolicy::Unified),
        ("disaggregated", RouterPolicy::Disaggregated { prefill_fraction: 0.7 }),
    ] {
        let mut cfg = ServingSimConfig::h800_baseline(
            ArrivalProcess::Bursty { rate_per_s: 8.0, burstiness: 32.0 },
            600,
            router,
        );
        cfg.workload.prompt.mean_tokens = 1024.0;
        let r = run(&cfg);
        println!(
            "  {label:<14} decode p99 {:>7.2} ms | TTFT p99 {:>7.0} ms | goodput {:>5.2} req/s",
            r.tpot_ms.p99, r.ttft_ms.p99, r.goodput_rps
        );
    }
    println!("\nPrefill bursts inflate the unified pool's decode tail; the");
    println!("disaggregated decode pool pays a fixed slowdown instead (§2.3.1).");
}
