#!/usr/bin/env bash
# Benchmark regression gate over the BENCH_*.json artifacts.
#
# Every bench target writes BENCH_<name>.json at the repo root in a
# shared schema: {"bench": "<name>", "metrics": {"key": number, ...}}.
# The gate compares lower-is-better keys (suffix `_ns` or `_ratio`) and
# fails when a new value regresses more than 25% over the old one.
# Throughput-style keys (any other suffix) are informational only.
#
# Usage:
#   scripts/bench_gate.sh compare OLD.json NEW.json
#   scripts/bench_gate.sh run <bench>     # stash the checked-in artifact,
#                                         # re-run `cargo bench`, compare
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD=1.25

# Print "key value" lines from the metrics block of an artifact.
metrics() {
  awk '
    /"metrics"/ { inm = 1; next }
    inm && /^[[:space:]]*}/ { exit }
    inm {
      line = $0
      gsub(/[",:]/, " ", line)
      split(line, f, /[[:space:]]+/)
      # f[1] is empty (leading spaces); key then value follow.
      for (i = 1; i <= length(f); i++) if (f[i] != "") { print f[i], f[i+1]; break }
    }
  ' "$1"
}

compare() {
  local old="$1" new="$2" fail=0 key oldv newv
  if [ ! -f "$old" ] || [ ! -f "$new" ]; then
    echo "bench_gate: missing artifact ($old / $new)" >&2
    return 1
  fi
  while read -r key oldv; do
    case "$key" in
    *_ns | *_ratio) ;;
    *) continue ;;
    esac
    newv=$(metrics "$new" | awk -v k="$key" '$1 == k { print $2 }')
    if [ -z "$newv" ]; then
      echo "bench_gate: FAIL $key missing from $new" >&2
      fail=1
      continue
    fi
    if awk -v o="$oldv" -v n="$newv" -v t="$THRESHOLD" 'BEGIN { exit !(o > 0 && n > o * t) }'; then
      echo "bench_gate: FAIL $key regressed ${oldv} -> ${newv} (> ${THRESHOLD}x)" >&2
      fail=1
    else
      echo "bench_gate: ok   $key ${oldv} -> ${newv}"
    fi
  done < <(metrics "$old")
  return "$fail"
}

case "${1:-}" in
compare)
  [ $# -eq 3 ] || { echo "usage: $0 compare OLD.json NEW.json" >&2; exit 2; }
  compare "$2" "$3"
  ;;
run)
  [ $# -eq 2 ] || { echo "usage: $0 run <bench>" >&2; exit 2; }
  bench="$2"
  artifact="BENCH_${bench}.json"
  [ -f "$artifact" ] || { echo "bench_gate: no checked-in $artifact" >&2; exit 2; }
  stash="$(mktemp "/tmp/bench_gate.${bench}.XXXXXX.json")"
  cp "$artifact" "$stash"
  # The checked-in artifact is the reference; the fresh run is compared
  # against it and then discarded so the tree stays clean. Re-run
  # `cargo bench -p dsv3-bench --bench <name>` directly to refresh it.
  trap 'cp "$stash" "$artifact"; rm -f "$stash"' EXIT
  cargo bench --offline -p dsv3-bench --bench "$bench"
  compare "$stash" "$artifact"
  ;;
*)
  echo "usage: $0 compare OLD.json NEW.json | $0 run <bench>" >&2
  exit 2
  ;;
esac
