#!/usr/bin/env bash
# The CI gate, runnable locally: formatting, lints, tier-1 build + tests.
#
# Everything runs --offline: all third-party dependencies are vendored
# under vendor/ (see DESIGN.md), so CI needs no network and no registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release --offline
cargo test -q --offline

echo "==> invariant lints: dsv3 lint"
# -p dsv3-core: building the root package alone links dsv3-core as a
# library and can leave target/release/dsv3 stale.
cargo build --release --offline -p dsv3-core
# Strict mode: no --baseline, so every finding (token rules and the
# semantic U2/F2/R2/P3 pass) fails CI unless waived with a reason.
./target/release/dsv3 lint

echo "==> parallel-readiness: every lint:entry fn must be effect-free"
./target/release/dsv3 lint --readiness
if ./target/release/dsv3 lint --readiness | grep -q "NOT READY"; then
  echo "readiness regression: an entry point reaches a forbidden effect" >&2
  exit 1
fi
./target/release/dsv3 lint --rules U2,F2,R2,P3 > /dev/null

echo "==> telemetry smoke: dsv3 serving --trace-out emits a valid Chrome trace"
trace_tmp="$(mktemp /tmp/dsv3_trace.XXXXXX.json)"
chaos_tmp="$(mktemp /tmp/dsv3_chaos.XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$chaos_tmp"' EXIT
./target/release/dsv3 serving --trace-out "$trace_tmp" > /dev/null
./target/release/dsv3 check-trace "$trace_tmp"

echo "==> chaos smoke: dsv3 net-chaos --json + --trace-out round-trip"
./target/release/dsv3 net-chaos --json > /dev/null
./target/release/dsv3 net-chaos --trace-out "$chaos_tmp" > /dev/null
./target/release/dsv3 check-trace "$chaos_tmp"

echo "==> memory-timeline smoke: dsv3 mem-timeline --json + --trace-out round-trip"
memtl_tmp="$(mktemp /tmp/dsv3_memtl.XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$chaos_tmp" "$memtl_tmp"' EXIT
./target/release/dsv3 mem-timeline --json > /dev/null
./target/release/dsv3 mem-timeline --trace-out "$memtl_tmp" > /dev/null
./target/release/dsv3 check-trace "$memtl_tmp"

echo "==> overload smoke: dsv3 overload --json + --trace-out round-trip"
overload_tmp="$(mktemp /tmp/dsv3_overload.XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$chaos_tmp" "$memtl_tmp" "$overload_tmp"' EXIT
./target/release/dsv3 overload --json > /dev/null
./target/release/dsv3 overload --trace-out "$overload_tmp" > /dev/null
./target/release/dsv3 check-trace "$overload_tmp"

echo "==> resilience smoke: dsv3 resilience --json + --trace-out round-trip"
resilience_tmp="$(mktemp /tmp/dsv3_resilience.XXXXXX.json)"
resilience_metrics_tmp="$(mktemp /tmp/dsv3_resilience_metrics.XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$chaos_tmp" "$memtl_tmp" "$overload_tmp" "$resilience_tmp" "$resilience_metrics_tmp"' EXIT
./target/release/dsv3 resilience --json > /dev/null
./target/release/dsv3 resilience --trace-out "$resilience_tmp" > /dev/null
./target/release/dsv3 check-trace "$resilience_tmp"
./target/release/dsv3 resilience --metrics-out "$resilience_metrics_tmp" > /dev/null
./target/release/dsv3 check-metrics "$resilience_metrics_tmp"

echo "==> metrics smoke: dsv3 serving --metrics-out emits a valid metrics document"
metrics_tmp="$(mktemp /tmp/dsv3_metrics.XXXXXX.json)"
incidents_tmp="$(mktemp /tmp/dsv3_incidents.XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$chaos_tmp" "$memtl_tmp" "$overload_tmp" "$resilience_tmp" "$resilience_metrics_tmp" "$metrics_tmp" "$incidents_tmp"' EXIT
./target/release/dsv3 serving --metrics-out "$metrics_tmp" > /dev/null
./target/release/dsv3 check-metrics "$metrics_tmp"

echo "==> audit smoke: dsv3 audit overload fires the watchdog deterministically"
./target/release/dsv3 audit overload --incidents-out "$incidents_tmp" > /dev/null
grep -q '"detector": "metastability"' "$incidents_tmp"

echo "==> bench gate: watch overhead within budget, no >25% regression"
scripts/bench_gate.sh run watch

echo "==> bench gate: lint scan + parser throughput, no >25% regression"
scripts/bench_gate.sh run lint

echo "==> bench gate: degenerate resilience walk within 1.2x of simulate_goodput"
scripts/bench_gate.sh run resilience

echo "==> examples build"
cargo build --release --offline --examples

echo "==> full workspace tests"
cargo test -q --workspace --offline

echo "CI green."
