//! Umbrella crate for the DeepSeek-V3 insights reproduction.
//!
//! This root package hosts the workspace-level integration tests and runnable
//! examples. The actual functionality lives in the `dsv3-*` crates; the most
//! convenient entry point is [`dsv3_core`], which re-exports the substrates
//! and provides one experiment runner per table/figure of the paper.

#![forbid(unsafe_code)]

pub use dsv3_core as core;
