//! Integration tests that wire multiple substrates together.

use dsv3_core::collectives::{Cluster, ClusterConfig, FabricKind};
use dsv3_core::inference::kvcache::KvCacheManager;
use dsv3_core::inference::tpot::SpeedLimitConfig;
use dsv3_core::model::moe::{route, MoeGateConfig};
use dsv3_core::model::zoo;
use dsv3_core::netsim::{FlowSim, Link};
use dsv3_core::numerics::Matrix;

/// The §2.3.2 closed form and the flow simulator must agree: a single EP
/// dispatch+combine message stream over one 50 GB/s NIC takes the paper's
/// 120.96 µs (modulo the fixed path latency).
#[test]
fn closed_form_ep_time_matches_flow_simulation() {
    let cfg = SpeedLimitConfig::h800_ib();
    let bytes = 3.0 * 32.0 * 9.0 * 7000.0; // dispatch FP8 + combine BF16
    let mut sim = FlowSim::new(vec![Link { capacity_gbps: 50.0 }]);
    sim.add_flow(vec![0], bytes, 0.0, 0.0);
    let r = sim.run();
    assert!((r.makespan_us - cfg.ep_comm_time_us()).abs() < 1e-6);
    assert!((r.makespan_us - 120.96).abs() < 0.01);
}

/// The MoE gate's routing statistics drive the same IB-traffic conclusion
/// the collectives' synthetic generator assumes: tokens touch ≤4 nodes.
#[test]
fn gate_routing_feeds_ep_traffic_model() {
    let cfg = MoeGateConfig::deepseek_v3();
    let mut total_nodes = 0usize;
    let tokens = 300;
    for i in 0..tokens {
        let scores: Vec<f32> = Matrix::random(1, 256, 1.0, 40_000 + i)
            .data
            .iter()
            .map(|v| 1.0 / (1.0 + (-v).exp()))
            .collect();
        let r = route(&scores, None, &cfg);
        assert!(r.nodes_touched() <= 4);
        total_nodes += r.nodes_touched();
    }
    let mean = total_nodes as f64 / tokens as f64;
    // The synthetic EP generator assumes ~max_nodes touched; the real gate
    // with random scores does the same.
    assert!(mean > 3.5, "mean nodes touched {mean}");
}

/// Table 1 → serving capacity: the KV manager, fed by the real model
/// configs, reproduces the MLA context-capacity advantage end to end.
#[test]
fn kv_cache_capacity_follows_table1() {
    let budget = 20_000_000_000; // 20 GB of KV budget
    let v3 = KvCacheManager::new(&zoo::deepseek_v3(), 2, budget);
    let qwen = KvCacheManager::new(&zoo::qwen25_72b(), 2, budget);
    let llama = KvCacheManager::new(&zoo::llama31_405b(), 2, budget);
    let r1 = v3.capacity_tokens() as f64 / qwen.capacity_tokens() as f64;
    let r2 = v3.capacity_tokens() as f64 / llama.capacity_tokens() as f64;
    assert!((r1 - 4.66).abs() < 0.05, "{r1}");
    assert!((r2 - 7.34).abs() < 0.05, "{r2}");
}

/// The cluster's plane paths respect the Table 5 latency calibration.
#[test]
fn cluster_latencies_are_calibrated() {
    let c = Cluster::new(ClusterConfig::h800(64, FabricKind::MultiPlane));
    let (_, same) = c.plane_path(0, 1, 0);
    let (_, cross) = c.plane_path(0, 40, 0);
    let (_, nv) = c.nvlink_path(0, 1);
    assert!((same - 2.8).abs() < 1e-9);
    assert!((cross - 3.7).abs() < 1e-9);
    assert!((nv - 3.33).abs() < 1e-9);
}

/// A full 128-GPU DeepEP round at the paper's 4096 tokens/GPU (release-mode
/// scale) stays NIC-saturated.
#[test]
fn deepep_full_scale_when_optimized() {
    // Keep the token count adaptive so debug runs stay fast.
    let tokens = if cfg!(debug_assertions) { 256 } else { 4096 };
    let c = Cluster::new(ClusterConfig::h800(16, FabricKind::MultiPlane));
    let cfg = dsv3_core::collectives::deepep::EpConfig {
        tokens_per_gpu: tokens,
        ..dsv3_core::collectives::deepep::EpConfig::deepseek_v3()
    };
    let p = dsv3_core::collectives::deepep::deepep_point(&c, &cfg);
    assert!(p.dispatch_gbps > 40.0, "{}", p.dispatch_gbps);
    assert!(p.combine_gbps > 40.0, "{}", p.combine_gbps);
}

/// The two views of plane health must agree at every instant: the
/// event-driven [`FaultDriver`] (what the serving/training loops consume)
/// and the analytic [`FlapSchedule`] (what the collectives' degradation
/// study samples). `FlapSchedule` is the **canonical** semantics — a
/// plane is down from its flap instant (inclusive) until its repair
/// instant (exclusive) — and the driver matches it by delivering repairs
/// before new injections on ties.
#[test]
fn fault_driver_plane_state_matches_flap_schedule() {
    use dsv3_core::faults::{
        bandwidth_retention, FaultDriver, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig,
        Injectable,
    };
    use std::collections::BTreeMap;

    /// Refcounted view of which planes the driver currently holds down
    /// (overlapping flaps of one plane must not "heal early").
    #[derive(Default)]
    struct PlaneTracker {
        down: BTreeMap<usize, usize>,
    }
    impl PlaneTracker {
        fn failed_planes(&self) -> Vec<usize> {
            self.down.iter().filter(|&(_, &n)| n > 0).map(|(&p, _)| p).collect()
        }
    }
    impl Injectable for PlaneTracker {
        fn inject(&mut self, _seq: usize, event: &FaultEvent) {
            if let FaultKind::PlaneFlap { plane, .. } = event.kind {
                *self.down.entry(plane).or_insert(0) += 1;
            }
        }
        fn heal(&mut self, _seq: usize, event: &FaultEvent) {
            if let FaultKind::PlaneFlap { plane, .. } = event.kind {
                let n = self.down.get_mut(&plane).expect("heal pairs with inject");
                *n -= 1;
            }
        }
    }

    // Long repairs relative to the MTBF so overlapping flaps (including
    // repeat flaps of the same plane) actually occur.
    let plan = FaultPlan::generate(&FaultPlanConfig {
        seed: 7,
        horizon_ms: 120_000.0,
        planes: 8,
        flap_mtbf_ms: 5_000.0,
        flap_repair_ms: 9_000.0,
        ..FaultPlanConfig::default()
    });
    let sched = plan.flap_schedule();
    assert!(sched.flaps.len() >= 4, "need a non-trivial schedule, got {}", sched.flaps.len());

    // Probe every edge of the step function plus the interior of every
    // interval (and one point past the end), in ascending order.
    let edges = sched.change_points_ms();
    let mut probes = vec![0.0];
    for (i, &t) in edges.iter().enumerate() {
        probes.push(t);
        let next = edges.get(i + 1).copied().unwrap_or(t + 2_000.0);
        probes.push((t + next) / 2.0);
    }

    let mut driver = FaultDriver::new(&plan);
    let mut tracker = PlaneTracker::default();
    for &t in &probes {
        driver.poll(t, &mut tracker);
        let driver_view = tracker.failed_planes();
        let canonical = sched.failed_planes_at(t);
        assert_eq!(driver_view, canonical, "plane sets diverge at t={t}ms");
        let retention = bandwidth_retention(sched.planes, driver_view.len());
        assert!((retention - sched.retention_at(t)).abs() < 1e-12, "retention diverges at t={t}ms");
    }
}

/// FP8 GEMM emulation composes with the model's MLA layer dims: quantized
/// projection of a batch through W_DKV-like weights keeps small error.
#[test]
fn quantized_projection_is_accurate() {
    use dsv3_core::numerics::gemm::{gemm_fp8, Fp8GemmConfig};
    use dsv3_core::numerics::metrics::relative_frobenius_error;
    let x = Matrix::random(16, 512, 1.0, 1);
    let w = Matrix::random(512, 128, 0.05, 2);
    let reference = x.matmul(&w);
    let q = gemm_fp8(&x, &w, Fp8GemmConfig::default());
    let err = relative_frobenius_error(&reference.data, &q.data);
    assert!(err < 0.05, "{err}");
}
