//! End-to-end checks: every experiment runner reproduces its paper
//! artifact's *shape* (who wins, by roughly what factor, where crossovers
//! fall). These are the acceptance tests of EXPERIMENTS.md.

use dsv3_core::experiments::*;

#[test]
fn table1_kv_cache_matches_paper_exactly() {
    let rows = table1::run();
    let vals: Vec<f64> = rows.iter().map(|r| r.kv_cache_kb).collect();
    assert_eq!(vals, vec![70.272, 327.680, 516.096]);
    assert!((rows[1].multiplier - 4.66).abs() < 0.01);
    assert!((rows[2].multiplier - 7.34).abs() < 0.01);
}

#[test]
fn table2_flops_within_tolerance() {
    let rows = table2::run();
    let by = |n: &str| rows.iter().find(|r| r.model.contains(n)).unwrap();
    assert!((by("V2").gflops_per_token - 155.0).abs() / 155.0 < 0.05);
    assert!((by("V3").gflops_per_token - 250.0).abs() / 250.0 < 0.05);
    assert!((by("Qwen").gflops_per_token - 394.0).abs() / 394.0 < 0.15);
    assert!((by("LLaMA").gflops_per_token - 2448.0).abs() / 2448.0 < 0.05);
    assert!((by("V2").size_b - 236.0).abs() < 5.0);
    assert!((by("V3").size_b - 671.0).abs() < 5.0);
}

#[test]
fn table3_counts_exact_costs_close() {
    let rows = table3::run();
    let by = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
    for (name, ep, cost) in [
        ("FT2", 2048, 9.0),
        ("MPFT", 16_384, 72.0),
        ("FT3", 65_536, 491.0),
        ("SF", 32_928, 146.0),
        ("DF", 261_632, 1522.0),
    ] {
        let r = by(name);
        assert_eq!(r.endpoints, ep, "{name}");
        assert!((r.cost_musd - cost).abs() / cost < 0.02, "{name}: {} vs {cost}", r.cost_musd);
    }
    // Ordering takeaway: FT2/MPFT/SF cheapest per endpoint, then DF, then FT3.
    assert!(by("MPFT").cost_per_endpoint_kusd < by("DF").cost_per_endpoint_kusd);
    assert!(by("DF").cost_per_endpoint_kusd < by("FT3").cost_per_endpoint_kusd);
}

#[test]
fn table4_training_metrics_shape() {
    let (mpft, mrft) = table4::run();
    assert!((mpft.time_per_step_s - 19.926).abs() < 1.0);
    assert!((mpft.tokens_per_day_b - 272.8).abs() < 15.0);
    assert!((mpft.mfu_causal - 0.3894).abs() < 0.02);
    assert!((mpft.mfu_noncausal - 0.4373).abs() < 0.02);
    assert_eq!(mpft.time_per_step_s, mrft.time_per_step_s, "fabrics tie");
    let sum = mpft.f1_s + mpft.b1_s + mpft.w1_s + mpft.f1b1_s + mpft.bubble_s + mpft.opt_s;
    assert!((sum - mpft.time_per_step_s).abs() < 1e-9);
}

#[test]
fn table5_latencies_exact() {
    let rows = table5::run();
    let by = |n: &str| rows.iter().find(|r| r.link_layer == n).unwrap();
    assert!((by("InfiniBand").same_leaf_us - 2.8).abs() < 1e-9);
    assert!((by("InfiniBand").cross_leaf_us.unwrap() - 3.7).abs() < 1e-9);
    assert!((by("RoCE").same_leaf_us - 3.6).abs() < 1e-9);
    assert!((by("RoCE").cross_leaf_us.unwrap() - 5.6).abs() < 1e-9);
    assert!((by("NVLink").same_leaf_us - 3.33).abs() < 1e-9);
}

#[test]
fn fig5_mpft_mrft_parity_and_saturation() {
    for p in fig5::run() {
        let rel = (p.mpft_busbw - p.mrft_busbw).abs() / p.mpft_busbw.max(1e-9);
        assert!(rel < 0.02, "{} GPUs {}B: {rel}", p.gpus, p.bytes_per_peer);
        if p.bytes_per_peer >= 1_048_576.0 {
            assert!(p.mpft_busbw > 40.0, "{}", p.mpft_busbw);
        }
    }
}

#[test]
fn fig6_latency_parity() {
    let pts = fig6::run();
    for p in &pts {
        assert!((p.mpft_us - p.mrft_us).abs() / p.mpft_us < 0.02);
    }
    assert!(pts[0].mpft_us < 6.0, "small-message floor {}", pts[0].mpft_us);
}

#[test]
fn fig7_deepep_throughput() {
    let pts = fig7::run(512);
    for p in &pts[1..] {
        assert!(p.dispatch_gbps > 40.0, "{} GPUs: {}", p.gpus, p.dispatch_gbps);
        assert!(p.combine_gbps > 40.0, "{} GPUs: {}", p.gpus, p.combine_gbps);
    }
}

#[test]
fn fig8_routing_ordering() {
    let pts = fig8::run();
    for coll in ["AllGather", "ReduceScatter"] {
        for tp in [4usize, 8, 16] {
            let by = |pol: &str| {
                pts.iter()
                    .find(|p| p.collective == coll && p.tp == tp && p.policy == pol)
                    .unwrap()
                    .busbw_gbps
            };
            assert!(by("AR") > 1.5 * by("ECMP"), "{coll} tp={tp}");
            assert!(by("Static") >= by("ECMP"), "{coll} tp={tp}");
        }
    }
}

#[test]
fn speed_limits_match_paper() {
    let rows = speed_limits::run();
    assert!((rows[0].limit.comm_time_us - 120.96).abs() < 0.01);
    assert!((rows[0].limit.tpot_ms - 14.76).abs() < 0.01);
    assert!((rows[0].limit.tokens_per_second - 67.0).abs() < 1.0);
    assert!((rows[1].limit.comm_time_us - 6.72).abs() < 0.01);
    assert!(rows[1].limit.tokens_per_second > 1190.0);
}

#[test]
fn mtp_gives_1_8x_in_paper_band() {
    for r in mtp::run() {
        if (0.8..=0.9).contains(&r.acceptance) {
            assert!((1.7..2.0).contains(&r.speedup), "{}", r.speedup);
        }
    }
}

#[test]
fn fp8_gemm_accumulation_story() {
    let rows = fp8_gemm::run(&[512, 8192]);
    assert!(rows[1].acc_err_fp22 > rows[0].acc_err_fp22);
    for r in &rows {
        assert!(r.acc_err_split < r.acc_err_fp22);
    }
}

#[test]
fn logfmt_quality_ordering() {
    let rows = logfmt::run();
    let by = |n: &str| rows.iter().find(|r| r.format.starts_with(n)).unwrap().rel_rmse;
    assert!(by("LogFMT-8") < by("E4M3"));
    assert!(by("LogFMT-8") < by("E5M2"));
    assert!(by("LogFMT-10") < 4.0 * by("BF16"));
}

#[test]
fn node_limited_traffic_scales_with_m() {
    let rows = node_limited::run(400);
    assert!(rows[3].ib_time_vs_no_dedup <= 0.5 + 1e-9, "M=4 halves IB traffic");
    for r in &rows {
        assert!(r.mean_nodes_touched <= r.max_nodes as f64 + 1e-9);
    }
}

#[test]
fn local_deploy_moe_advantage() {
    let rows = local_deploy::run();
    let tps = |h: &str, m: &str| {
        rows.iter().find(|r| r.hardware.contains(h) && r.model.contains(m)).unwrap().tps
    };
    assert!(tps("AI-SoC", "V2") > 15.0, "MoE ~20 TPS on a PC");
    assert!(tps("AI-SoC", "Dense-70B") < 10.0, "dense 70B single digit");
}

#[test]
fn every_render_produces_a_table() {
    // Smoke: rendering never panics and each table has rows.
    for t in [
        table1::render(),
        table2::render(),
        table3::render(),
        table4::render(),
        table5::render(),
        fig6::render(),
        fig8::render(),
        speed_limits::render(),
        mtp::render(),
        node_limited::render(),
        local_deploy::render(),
    ] {
        assert!(!t.rows.is_empty(), "{} has no rows", t.title);
        assert!(t.to_string().contains('|'));
    }
}
