//! Golden-output tests: with telemetry off, the `serving` and
//! `fault-drill` reports are byte-identical to the pre-telemetry
//! captures under `tests/golden/` — instrumenting the simulators must
//! not perturb a single byte of the default output.

use dsv3_core::registry;
use dsv3_core::telemetry::Recorder;

fn entry(name: &str) -> dsv3_core::Entry {
    registry().into_iter().find(|e| e.name == name).expect("registered")
}

/// A golden file is exactly what `dsv3 <name>` prints: the rendered
/// table plus the trailing newline `println!` appends.
fn rendered(name: &str) -> String {
    format!("{}\n", (entry(name).render)())
}

fn json(name: &str) -> String {
    format!("{}\n", (entry(name).json)())
}

#[test]
fn serving_text_report_matches_golden() {
    assert_eq!(rendered("serving"), include_str!("golden/serving.txt"));
}

#[test]
fn serving_json_report_matches_golden() {
    assert_eq!(json("serving"), include_str!("golden/serving.json"));
}

#[test]
fn fault_drill_text_report_matches_golden() {
    assert_eq!(rendered("fault-drill"), include_str!("golden/fault_drill.txt"));
}

#[test]
fn fault_drill_json_report_matches_golden() {
    assert_eq!(json("fault-drill"), include_str!("golden/fault_drill.json"));
}

/// The instrumented path computes the same report the plain path does —
/// the trace is a pure side channel.
#[test]
fn instrumented_reports_match_goldens_too() {
    for (name, txt, js) in [
        ("serving", include_str!("golden/serving.txt"), include_str!("golden/serving.json")),
        (
            "fault-drill",
            include_str!("golden/fault_drill.txt"),
            include_str!("golden/fault_drill.json"),
        ),
    ] {
        let mut rec = Recorder::new();
        let run = (entry(name).instrumented.expect("traceable"))(&mut rec);
        assert_eq!(format!("{}\n", run.table), txt, "{name} instrumented table drifted");
        assert_eq!(format!("{}\n", run.json), js, "{name} instrumented JSON drifted");
        assert!(!rec.events().is_empty(), "{name} instrumented run must actually trace");
    }
}
