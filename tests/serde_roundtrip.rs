//! Serde round-trip coverage (C-SERDE): the experiment result rows and the
//! core data structures survive JSON serialization, so downstream tooling
//! can consume `dsv3 --json` output reliably.

use dsv3_core::experiments::*;
use serde::de::DeserializeOwned;
use serde::Serialize;

fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: &T) {
    let json = serde_json::to_string(v).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, v);
}

#[test]
fn experiment_rows_roundtrip() {
    roundtrip(&table1::run());
    roundtrip(&table2::run());
    roundtrip(&table3::run());
    roundtrip(&table5::run());
    roundtrip(&speed_limits::run());
    roundtrip(&mtp::run());
    roundtrip(&node_limited::run(50));
    roundtrip(&local_deploy::run());
    roundtrip(&future_hardware::run());
}

#[test]
fn substrate_types_roundtrip() {
    use dsv3_core::model::moe::{route, MoeGateConfig};
    use dsv3_core::model::zoo;
    use dsv3_core::netsim::LatencyParams;
    use dsv3_core::numerics::minifloat::Format;
    use dsv3_core::topology::cost::CostModel;

    roundtrip(&zoo::deepseek_v3());
    roundtrip(&zoo::table_models());
    roundtrip(&Format::E4M3);
    roundtrip(&LatencyParams::INFINIBAND);
    roundtrip(&CostModel::default());
    roundtrip(&MoeGateConfig::deepseek_v3());
    let scores = vec![0.5f32; 256];
    roundtrip(&route(&scores, None, &MoeGateConfig::deepseek_v3()));
    roundtrip(&dsv3_core::HardwareProfile::h800());
    roundtrip(&dsv3_core::Table::new("t", &["a"]));
}

#[test]
fn serving_types_roundtrip() {
    use dsv3_core::inference::kvcache::CacheError;
    use dsv3_core::serving::{
        run, ArrivalProcess, LengthDistribution, MtpSpec, RouterPolicy, ServingSimConfig,
        SloConfig, Summary,
    };

    // Configs: every arrival process and router policy variant.
    let mut cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Bursty { rate_per_s: 9.0, burstiness: 4.0 },
        64,
        RouterPolicy::Disaggregated { prefill_fraction: 0.4 },
    );
    cfg.engine.mtp = Some(MtpSpec { modules: 1, acceptance: 0.85, step_overhead: 0.02 });
    roundtrip(&cfg);
    roundtrip(&ArrivalProcess::Poisson { rate_per_s: 5.0 });
    roundtrip(&ArrivalProcess::Trace { interarrival_ms: vec![5.0, 10.0, 0.5] });
    roundtrip(&RouterPolicy::Unified);
    roundtrip(&LengthDistribution::fixed(256));
    roundtrip(&SloConfig { ttft_ms: 1500.0, tpot_ms: 40.0 });
    roundtrip(&Summary::of(&mut [3.0, 1.0, 2.0]));

    // The full report (and, transitively, every Summary inside it).
    let report = run(&ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 10.0 },
        64,
        RouterPolicy::Unified,
    ));
    roundtrip(&report);
    roundtrip(&dsv3_core::experiments::serving::run());

    // KvCacheManager-adjacent error type, all variants.
    roundtrip(&CacheError::OutOfMemory { requested: 4096, free: 128 });
    roundtrip(&CacheError::DuplicateRequest);
    roundtrip(&CacheError::UnknownRequest);
}

#[test]
fn fault_types_roundtrip() {
    use dsv3_core::collectives::failures::{FlapSchedule, PlaneFlap};
    use dsv3_core::faults::{
        simulate_goodput, Backoff, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig,
        RecoveryPolicy,
    };
    use dsv3_core::model::availability::AvailabilityModel;
    use dsv3_core::serving::{run_with_faults, ArrivalProcess, RouterPolicy, ServingSimConfig};

    // Plans: empty, generated, and every event-kind variant explicitly.
    roundtrip(&FaultPlan::healthy());
    // Every MTBF must be finite here: JSON has no Infinity, so a config
    // with a disabled (INFINITY) class is not JSON-representable.
    let cfg = FaultPlanConfig {
        seed: 11,
        horizon_ms: 30_000.0,
        crash_mtbf_ms: 8_000.0,
        flap_mtbf_ms: 10_000.0,
        straggler_mtbf_ms: 12_000.0,
        sdc_mtbf_ms: 15_000.0,
        links: 16,
        link_mtbf_ms: 9_000.0,
        ..FaultPlanConfig::default()
    };
    roundtrip(&cfg);
    roundtrip(&FaultPlan::generate(&cfg));
    for kind in [
        FaultKind::ReplicaCrash { replica: 2, repair_ms: 4_000.0 },
        FaultKind::PlaneFlap { plane: 5, repair_ms: 2_500.0 },
        FaultKind::Straggler { slowdown: 1.8, duration_ms: 3_000.0 },
        FaultKind::Sdc { detected: false },
        FaultKind::LinkFail { link: 2, repair_ms: 2_000.0 },
    ] {
        roundtrip(&FaultEvent { at_ms: 123.5, kind });
    }

    // Recovery and availability knobs.
    roundtrip(&Backoff::default());
    roundtrip(&RecoveryPolicy::hedged());
    let av = AvailabilityModel { mtbf_s: 3_600.0, checkpoint_write_s: 60.0, restart_s: 180.0 };
    roundtrip(&av);
    let goodput = simulate_goodput(&av, av.young_daly_interval_s(), &[500.0, 4_000.0], 10_000.0)
        .expect("valid interval and sorted timeline");
    roundtrip(&goodput);

    // Flap schedules from collectives::failures.
    let flap = PlaneFlap { plane: 3, down_at_ms: 100.0, repair_ms: 50.0 };
    roundtrip(&flap);
    roundtrip(&FlapSchedule { planes: 8, flaps: vec![flap] });

    // Link-granular chaos: the schedule bridge and the chaos engine's
    // config/report types, plus the net-chaos experiment report.
    use dsv3_core::netsim::chaos::{ChaosConfig, ReroutePolicy};
    use dsv3_core::netsim::{ChaosSim, Link};
    let sched = FaultPlan::generate(&cfg).link_schedule();
    assert!(!sched.is_empty(), "roundtrip config should generate link faults");
    roundtrip(&sched);
    let chaos_cfg = ChaosConfig {
        schedule: sched,
        policy: ReroutePolicy::StaticRehash { seed: 9 },
        ..ChaosConfig::default()
    };
    roundtrip(&chaos_cfg);
    // One link per schedule-addressable id (`cfg.links`), so the run
    // accepts the schedule; the flow only uses the first two.
    let mut sim = ChaosSim::new(vec![Link { capacity_gbps: 40.0 }; 16]);
    sim.add_flow(vec![vec![0], vec![1]], 1e6, 0.0, 2.0);
    roundtrip(&sim.run(&chaos_cfg));
    roundtrip(&net_chaos::run());

    // The full fault-aware serving report and the fault_drill rows.
    let sim = ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 10.0 },
        64,
        RouterPolicy::Unified,
    );
    let plan = FaultPlan::generate(&FaultPlanConfig {
        seed: 3,
        horizon_ms: 20_000.0,
        crash_mtbf_ms: 6_000.0,
        crash_repair_ms: 2_000.0,
        ..FaultPlanConfig::default()
    });
    let report = run_with_faults(&sim, &plan, &RecoveryPolicy::hedged());
    roundtrip(&report.faults);
    roundtrip(&report);
    roundtrip(&fault_drill::run());
}

#[test]
fn overload_types_roundtrip() {
    use dsv3_core::faults::{Backoff, FaultPlan, RecoveryPolicy};
    use dsv3_core::serving::{
        run_overload, AdmissionConfig, ArrivalProcess, AutoscaleConfig, BreakerConfig,
        ClientConfig, LadderConfig, OverloadConfig, Phase, RateLimitConfig, RouterPolicy, Rung,
        ServingSimConfig,
    };

    // Configs: every overload knob turned on at once, plus the phased
    // arrival process the spike arms use.
    let ov = OverloadConfig {
        admission: Some(AdmissionConfig {
            queue_cap: 64,
            deadline_headroom: 1.5,
            rate_limit: Some(RateLimitConfig { rate_per_s_per_replica: 2.0, burst: 16.0 }),
        }),
        ladder: Some(LadderConfig {
            rungs: vec![Rung {
                disable_mtp: true,
                batch_cap_factor: 0.5,
                context_cap_tokens: 1_024,
                shed_below_priority: 2,
            }],
            high_pressure: 0.7,
            low_pressure: 0.2,
            dwell_ms: 1_500.0,
        }),
        clients: Some(ClientConfig {
            timeout_ms: 3_000.0,
            retry_budget: 2,
            backoff: Backoff::default().jittered(),
        }),
        autoscale: Some(AutoscaleConfig {
            breaker: Some(BreakerConfig::default()),
            ..AutoscaleConfig::reactive(4, 4)
        }),
        priority_classes: 4,
        timeline_window_ms: 5_000.0,
    };
    roundtrip(&ov);
    roundtrip(&OverloadConfig::disabled());
    roundtrip(&Phase { duration_ms: 10_000.0, rate_per_s: 12.0 });

    // The full overload report: serving + faults + overload + autoscale
    // stats and the goodput timeline, exercised with every subsystem live.
    let cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Phased {
            phases: vec![
                Phase { duration_ms: 5_000.0, rate_per_s: 8.0 },
                Phase { duration_ms: 5_000.0, rate_per_s: 24.0 },
            ],
        },
        120,
        RouterPolicy::Disaggregated { prefill_fraction: 0.25 },
    );
    let plan = FaultPlan { replicas: 4, planes: 8, links: 0, events: Vec::new() };
    let report = run_overload(&cfg, &plan, &RecoveryPolicy::default(), &ov);
    assert!(!report.timeline.is_empty(), "windowed goodput should be recorded");
    roundtrip(&report.overload);
    roundtrip(&report.autoscale);
    roundtrip(&report);

    // The registry experiment's full report.
    roundtrip(&overload::run());
}

#[test]
fn memtl_types_roundtrip() {
    use dsv3_core::memtl::{
        analytic_1f1b, largest_fitting, simulate, FrontierQuery, GpuSpec, MemPlan, Offload,
        Recompute, ScheduleKind, ZeroStage,
    };
    use dsv3_core::model::zoo;

    // Plans: the production constructor, the naive foil, and a plan with
    // every non-default knob turned (Z3, full recompute, offload, 1F1B).
    roundtrip(&MemPlan::deepseek_v3_production());
    roundtrip(&MemPlan::naive());
    let turned = MemPlan {
        zero_stage: ZeroStage::Z3,
        recompute: Recompute::Full,
        offload: Offload::OptimizerCpu { pcie_gbps: 32.0 },
        schedule: ScheduleKind::OneFOneB,
        ..MemPlan::deepseek_v3_production()
    };
    roundtrip(&turned);
    roundtrip(&GpuSpec::h800());

    // Reports: the walked timeline (per-rank rows inside), the analytic
    // curves, and a frontier row.
    let cfg = zoo::deepseek_v3();
    roundtrip(&simulate(&cfg, &turned));
    roundtrip(&analytic_1f1b(&cfg, &turned));
    let q = FrontierQuery { gpus: 128, spec: GpuSpec::h800() };
    roundtrip(&q);
    roundtrip(&largest_fitting(&cfg, &MemPlan::deepseek_v3_production(), &q));

    // The registry experiment's full report.
    roundtrip(&mem_timeline::run());
}

#[test]
fn resilience_types_roundtrip() {
    use dsv3_core::experiments::resilience;
    use dsv3_core::faults::{
        generate_failures, simulate_resilience, CheckpointBytes, CheckpointStack, CheckpointTier,
        ComponentMtbf, FleetComponent, FleetFailure, FleetSpec, RecoveryKind, ResilienceConfig,
        ResilienceError, SdcConfig, TrainingSimError,
    };
    use dsv3_core::parallel::TrainStepConfig;

    // Tier specs: every stock tier plus both stack constructors.
    for tier in
        [CheckpointTier::device(), CheckpointTier::host_ram(), CheckpointTier::remote_store(2.0)]
    {
        roundtrip(&tier);
    }
    roundtrip(&CheckpointStack::tiered());
    roundtrip(&CheckpointStack::single_sync_remote(20.0));
    roundtrip(&CheckpointBytes { write_bytes: 0.53e9, restore_bytes: 5.73e9 });

    // Recovery policies, all variants (ElasticShrink carries the grid).
    roundtrip(&RecoveryKind::ColdRestart);
    roundtrip(&RecoveryKind::SparePool { spares: 32, provision_s: 30.0 });
    roundtrip(&RecoveryKind::ElasticShrink {
        replan_s: 60.0,
        train: Box::new(TrainStepConfig::deepseek_v3(1.0)),
        ep: 64,
    });

    // SDC knobs. Every rate must be finite here: JSON has no Infinity,
    // so the disabled() (INFINITY-MTBF) form is not JSON-representable.
    roundtrip(&SdcConfig {
        mtbf_s: 86_400.0,
        detection_mean_s: 7_200.0,
        verify_every: 20,
        verify_cost_s: 30.0,
    });

    // Fleet MTBF table, shape, and a timeline slice.
    roundtrip(&ComponentMtbf::production());
    let spec = FleetSpec::with_gpus(16_384);
    roundtrip(&spec);
    let failures = generate_failures(&spec, &ComponentMtbf::production(), 7, 86_400.0);
    assert!(!failures.is_empty(), "a day at 16k GPUs should see failures");
    roundtrip(&failures);
    for c in FleetComponent::ALL {
        roundtrip(&FleetFailure { at_s: 123.5, component: c });
    }

    // A full config and the report a real run produces.
    let cfg = ResilienceConfig {
        interval_s: 600.0,
        ckpt: CheckpointBytes { write_bytes: 0.53e9, restore_bytes: 5.73e9 },
        stack: CheckpointStack::tiered(),
        recovery: RecoveryKind::SparePool { spares: 64, provision_s: 30.0 },
        sdc: SdcConfig {
            mtbf_s: 86_400.0 * 7.0,
            detection_mean_s: 3_600.0,
            verify_every: 10,
            verify_cost_s: 30.0,
        },
        restart_s: 180.0,
        repair_s: 21_600.0,
        gpus_per_failure: 8,
        horizon_s: 86_400.0 * 7.0,
        seed: 11,
    };
    roundtrip(&cfg);
    let report = simulate_resilience(&cfg, &failures).expect("valid config");
    roundtrip(&report.waste);
    roundtrip(&report);

    // Error enums from both the legacy and the resilience walkers.
    roundtrip(&TrainingSimError::NonPositiveInterval { interval_s: -1.0 });
    roundtrip(&TrainingSimError::UnsortedTimeline { index: 3 });
    roundtrip(&ResilienceError::NonPositiveInterval { interval_s: 0.0 });
    roundtrip(&ResilienceError::InvalidStack { reason: "empty".into() });

    // The registry experiment's full sweep report.
    roundtrip(&resilience::run());
}

#[test]
fn json_is_stable_for_known_values() {
    // A spot-check that field names stay consumer-friendly.
    let rows = table1::run();
    let json = serde_json::to_string(&rows).expect("serialize");
    assert!(json.contains("\"kv_cache_kb\":70.272"));
    assert!(json.contains("\"multiplier\":1.0"));
}
