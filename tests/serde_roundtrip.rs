//! Serde round-trip coverage (C-SERDE): the experiment result rows and the
//! core data structures survive JSON serialization, so downstream tooling
//! can consume `dsv3 --json` output reliably.

use dsv3_core::experiments::*;
use serde::de::DeserializeOwned;
use serde::Serialize;

fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: &T) {
    let json = serde_json::to_string(v).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, v);
}

#[test]
fn experiment_rows_roundtrip() {
    roundtrip(&table1::run());
    roundtrip(&table2::run());
    roundtrip(&table3::run());
    roundtrip(&table5::run());
    roundtrip(&speed_limits::run());
    roundtrip(&mtp::run());
    roundtrip(&node_limited::run(50));
    roundtrip(&local_deploy::run());
    roundtrip(&future_hardware::run());
}

#[test]
fn substrate_types_roundtrip() {
    use dsv3_core::model::moe::{route, MoeGateConfig};
    use dsv3_core::model::zoo;
    use dsv3_core::netsim::LatencyParams;
    use dsv3_core::numerics::minifloat::Format;
    use dsv3_core::topology::cost::CostModel;

    roundtrip(&zoo::deepseek_v3());
    roundtrip(&zoo::table_models());
    roundtrip(&Format::E4M3);
    roundtrip(&LatencyParams::INFINIBAND);
    roundtrip(&CostModel::default());
    roundtrip(&MoeGateConfig::deepseek_v3());
    let scores = vec![0.5f32; 256];
    roundtrip(&route(&scores, None, &MoeGateConfig::deepseek_v3()));
    roundtrip(&dsv3_core::HardwareProfile::h800());
    roundtrip(&dsv3_core::Table::new("t", &["a"]));
}

#[test]
fn json_is_stable_for_known_values() {
    // A spot-check that field names stay consumer-friendly.
    let rows = table1::run();
    let json = serde_json::to_string(&rows).expect("serialize");
    assert!(json.contains("\"kv_cache_kb\":70.272"));
    assert!(json.contains("\"multiplier\":1.0"));
}
