//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock timer instead
//! of criterion's statistical machinery. Each bench runs a short warm-up,
//! then a fixed number of timed samples, and prints the per-iteration
//! mean. Good enough to keep `cargo bench` runnable and regressions
//! eyeballable offline; not a statistics-grade harness.

// Vendored stub: exempt from the workspace lint policy.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }

    /// Id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to bench closures.
pub struct Bencher {
    samples: u64,
    per_iter_ns: f64,
}

impl Bencher {
    /// Time `routine`, recording the mean per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that runs
        // long enough to time meaningfully.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        self.per_iter_ns = best;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.per_iter_ns.is_finite() {
        println!("bench {name:<48} {:>12.1} ns/iter", b.per_iter_ns);
    } else {
        println!("bench {name:<48}        (no measurement)");
    }
}

fn run_bench(name: &str, samples: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples, per_iter_ns: f64::INFINITY };
    f(&mut b);
    report(name, &b);
}

/// Top-level harness.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 3 }
    }
}

impl Criterion {
    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run a standalone bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, |b| f(b));
        self
    }
}

/// A named collection of benches sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; the stand-in
    /// clamps it to a small number to keep `cargo bench` fast offline).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).min(5).max(1);
        self
    }

    /// Run a bench inside the group.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    /// Run a bench parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, N: Display, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("f", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }
}
