//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), range/tuple/[`Just`] strategies,
//! `prop_map` / `prop_flat_map` / `prop_filter` combinators,
//! `prop::collection::{vec, btree_set}`, `prop::num::f64::NORMAL`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (hash of the test name), so runs are deterministic, and there is
//! **no shrinking** — a failing case reports the assertion message only.
//! For a reproduction harness whose properties are closed-form
//! invariants, deterministic coverage matters more than minimal
//! counterexamples.

// Vendored stub: exempt from the workspace lint policy.
#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a generated case did not run to completion.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was filtered out (`prop_filter` / `prop_assume!`).
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Upstream-compatible module path for [`Config`].
pub mod test_runner {
    pub use crate::Config;
}

/// A generator of random values, combinable like upstream strategies.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value, or signal a filter rejection.
    ///
    /// # Errors
    ///
    /// [`TestCaseError::Reject`] when a filter refuses the draw.
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a second strategy from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `keep`; rejections are retried by the
    /// runner.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        keep: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason, keep }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> Result<O, TestCaseError> {
        self.inner.new_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<S2::Value, TestCaseError> {
        (self.f)(self.inner.new_value(rng)?).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    keep: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
        let v = self.inner.new_value(rng)?;
        if (self.keep)(&v) {
            Ok(v)
        } else {
            Err(TestCaseError::Reject)
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                Ok(($(self.$idx.new_value(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Strategy modules, reachable as `prop::...` from the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestCaseError, TestRng};
        use rand::Rng;

        /// Element-count specification: a fixed count or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self { lo: *r.start(), hi: *r.end() }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.lo..=self.hi)
            }
        }

        /// `Vec` strategy; see [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// Generate a `Vec` whose length is drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }

        /// `BTreeSet` strategy; see [`btree_set`].
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// Generate a `BTreeSet` with a number of distinct elements drawn
        /// from `size`. Rejects the case when the element space cannot
        /// produce enough distinct values.
        pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy { elem, size: size.into() }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                let target = self.size.pick(rng);
                let mut set = std::collections::BTreeSet::new();
                let mut attempts = 0usize;
                while set.len() < target {
                    set.insert(self.elem.new_value(rng)?);
                    attempts += 1;
                    if attempts > 100 * (target + 1) {
                        return Err(TestCaseError::Reject);
                    }
                }
                Ok(set)
            }
        }
    }

    /// Numeric strategies.
    pub mod num {
        /// `f64` strategies.
        pub mod f64 {
            use crate::{Strategy, TestCaseError, TestRng};
            use rand::RngCore;

            /// Strategy over all *normal* `f64` values (no zero, subnormal,
            /// infinity, or NaN), drawn uniformly over the bit patterns.
            #[derive(Debug, Clone, Copy)]
            pub struct NormalF64;

            /// Upstream-compatible name.
            pub const NORMAL: NormalF64 = NormalF64;

            impl Strategy for NormalF64 {
                type Value = f64;
                fn new_value(&self, rng: &mut TestRng) -> Result<f64, TestCaseError> {
                    loop {
                        let f = f64::from_bits(rng.next_u64());
                        if f.is_normal() {
                            return Ok(f);
                        }
                    }
                }
            }
        }
    }
}

/// Everything the workspace's `use proptest::prelude::*;` expects.
pub mod prelude {
    pub use crate::prop;
    pub use crate::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, Strategy, TestCaseError};
}

/// Drive one property test: generate cases until `cfg.cases` succeed,
/// retrying rejected draws, panicking on the first failure.
///
/// # Panics
///
/// Panics when an assertion fails or when rejection dominates (the filter
/// or assumption is unsatisfiable in practice).
pub fn run_cases(
    name: &str,
    cfg: &Config,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // FNV-1a over the test name: per-test deterministic seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut done = 0u32;
    let mut rejects = 0u32;
    while done < cfg.cases {
        match case(&mut rng) {
            Ok(()) => {
                done += 1;
                rejects = 0;
            }
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= 50_000,
                    "property `{name}`: too many consecutive rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed after {done} passing case(s): {msg}")
            }
        }
    }
}

/// Define deterministic property tests (see module docs for differences
/// from upstream).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($crate::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($args:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), &$cfg, |rng| {
                $(
                    let $args = match $crate::Strategy::new_value(&($strat), rng) {
                        Ok(v) => v,
                        Err(_) => return Err($crate::TestCaseError::Reject),
                    };
                )*
                $body
                Ok(())
            });
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Reject the current case unless `cond` holds (the runner draws a new
/// case instead of failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        let mut first: Vec<usize> = Vec::new();
        crate::run_cases("det", &ProptestConfig::with_cases(10), |rng| {
            first.push(crate::Strategy::new_value(&(0usize..100), rng).unwrap());
            Ok(())
        });
        let mut second: Vec<usize> = Vec::new();
        crate::run_cases("det", &ProptestConfig::with_cases(10), |rng| {
            second.push(crate::Strategy::new_value(&(0usize..100), rng).unwrap());
            Ok(())
        });
        assert_eq!(first, second);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Composite strategies honour their constraints.
        #[test]
        fn combinators_work(
            (a, b) in (1usize..10, 10usize..20).prop_map(|(x, y)| (x, y)),
            v in prop::collection::vec(0u64..5, 1..8),
            s in prop::collection::btree_set(0usize..10, 1..=4usize),
            f in prop::num::f64::NORMAL.prop_filter("small", |x| x.abs() < 1e100),
        ) {
            prop_assert!(a < 10 && b >= 10);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(f.is_normal() && f.abs() < 1e100);
        }

        /// Flat-mapped strategies see the outer draw.
        #[test]
        fn flat_map_dependent(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n, "i={} n={}", i, n);
        }
    }
}
