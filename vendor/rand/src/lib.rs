//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no crate registry, so the workspace vendors
//! the small `rand` surface it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! strong for simulation purposes and fully deterministic. The streams are
//! NOT bit-identical to upstream `StdRng` (which is ChaCha12); nothing in
//! the workspace depends on upstream's exact streams, only on seeded
//! determinism and statistical quality.

// Vendored stub: exempt from the workspace lint policy.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (upstream-compatible entry point).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The uniform-sampling ranges accepted by [`Rng::gen_range`].
///
/// Generic over the produced type `T` (rather than using an associated
/// type) so integer-literal ranges infer their width from the call site,
/// matching upstream: `let i: usize = rng.gen_range(0..10);`.
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample(&self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe raw-bits source, the base of [`Rng`].
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}
impl RngCore for &mut dyn RngCore {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draw a uniform integer in `[0, bound)` without modulo bias
/// (Lemire's rejection method).
fn uniform_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator behind the upstream `StdRng` name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// Upstream-compatible shuffle extension trait.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize =
            (0..64).filter(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_in_bounds_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(0usize..10);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5i64..=7);
            assert!((5..=7).contains(&i));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.85)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.85).abs() < 0.01, "{rate}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
