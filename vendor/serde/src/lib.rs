//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the small serde surface it actually uses. Unlike upstream
//! serde's visitor architecture, this stand-in uses a concrete data model:
//! every serializable type lowers itself to a JSON-like [`Value`] tree and
//! rebuilds itself from one. `vendor/serde_json` renders and parses that
//! tree. The public names (`Serialize`, `Deserialize`,
//! `de::DeserializeOwned`, the derive macros behind the `derive` feature)
//! match upstream so the workspace code compiles unchanged.
//!
//! Supported: the primitive scalars, `String`, `Option<T>`, `Vec<T>`,
//! arrays-as-slices on the serialize side, `BTreeSet<T>`, `BTreeMap<String,
//! V>`, and tuples up to arity 4. That is the closure of the field types
//! appearing in the workspace's derived types.

// Vendored stub: exempt from the workspace lint policy.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like data model that [`Serialize`]/[`Deserialize`] move through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// JSON number with fraction or exponent.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved so emitted JSON is
    /// deterministic and field order matches declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(n) => u64::try_from(n).ok(),
            Value::UInt(n) => Some(n),
            _ => None,
        }
    }
}

/// Error produced by deserialization (and re-used by `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    #[must_use]
    pub fn custom(message: &str) -> Self {
        Self { message: message.to_string() }
    }

    /// "Expected X" conversion error.
    #[must_use]
    pub fn expected(what: &str) -> Self {
        Self { message: format!("invalid value: expected {what}") }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Look up a field in an object's entries (used by derived impls).
///
/// # Errors
///
/// Returns an error naming the missing field.
pub fn field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::expected(&format!("field `{name}`")))
}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Lower to the data model.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Upstream-compatible module path for [`DeserializeOwned`].
pub mod de {
    /// Marker matching upstream `serde::de::DeserializeOwned`; in this
    /// stand-in every `Deserialize` type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected(stringify!($t)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected(stringify!($t)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_u64().and_then(|n| usize::try_from(n).ok()).ok_or_else(|| Error::expected("usize"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_i64().and_then(|n| isize::try_from(n).ok()).ok_or_else(|| Error::expected("isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::expected("f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().map(|f| f as f32).ok_or_else(|| Error::expected("f32"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::expected("tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::expected("tuple of matching arity"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"x".to_string().to_value()).unwrap(), "x");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn numeric_coercions() {
        // A small float-free number parses back into floats.
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::Int(3)).unwrap(), 3);
        assert!(usize::from_value(&Value::Int(-1)).is_err());
    }
}
