//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde implementation (see `vendor/serde`). Its data
//! model is a JSON-like [`Value`] tree: `Serialize` lowers a type to a
//! `Value` and `Deserialize` rebuilds it from one. These derives generate
//! those two impls for the shapes the workspace actually uses:
//!
//! * structs with named fields,
//! * enums whose variants are units or carry named fields
//!   (externally tagged, exactly like upstream serde's default).
//!
//! There is deliberately no support for `#[serde(...)]` attributes,
//! generics, tuple variants, or newtype structs — the repo does not use
//! them, and an unsupported shape fails the build with a clear panic
//! rather than silently misbehaving.
//!
//! The implementation parses the raw `TokenStream` by hand (no `syn` /
//! `quote`, which are equally unfetchable) and emits the impl as a source
//! string parsed back into a `TokenStream`.

// Vendored stub: exempt from the workspace lint policy.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(T, ...);` — arity 1 serializes as the inner value
    /// (upstream's newtype behaviour), larger arities as an array.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { Variant, Variant { field, ... }, ... }`
    Enum { name: String, variants: Vec<(String, Vec<String>)> },
}

/// Count the comma-separated fields of a tuple-struct paren group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    fields += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        fields -= 1; // trailing comma
    }
    fields
}

/// Skip any `#[...]` attribute groups (doc comments arrive as these).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a `pub` / `pub(crate)` visibility prefix.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse `name: Type, name: Type, ...` inside a brace group, returning the
/// field names. Types are skipped by tracking `<...>` depth so commas inside
/// generic arguments do not split fields.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde_derive stub: expected field name, found `{t}`"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive stub: expected `:` after field `{name}`"),
        }
        // Skip the type up to a top-level comma.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(name);
    }
    fields
}

/// Parse the enum body: `Variant, Variant { .. }, ...`.
fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Vec<String>)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde_derive stub: expected variant name, found `{t}`"),
        };
        i += 1;
        let mut fields = Vec::new();
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = parse_named_fields(g);
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive stub: tuple variant `{name}` is unsupported");
            }
            _ => {}
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(t) => panic!("serde_derive stub: expected `,` after variant, found `{t}`"),
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive stub: expected `struct` or `enum`, found {t:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive stub: expected type name, found {t:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is unsupported");
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => match kind.as_str() {
            "struct" => Shape::Struct { name, fields: parse_named_fields(g) },
            "enum" => Shape::Enum { name, variants: parse_variants(g) },
            k => panic!("serde_derive stub: cannot derive for `{k}`"),
        },
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Shape::TupleStruct { name, arity: count_tuple_fields(g) }
        }
        t => panic!("serde_derive stub: expected `{{...}}` body for `{name}`, found {t:?}"),
    }
}

/// `#[derive(Serialize)]`: lower the type to a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: String = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!("::serde::Value::Array(vec![{items}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    } else {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{v}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive stub: generated impl parses")
}

/// `#[derive(Deserialize)]`: rebuild the type from a `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let obj_bind = if fields.is_empty() { "_obj" } else { "obj" };
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(obj, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let {obj_bind} = value.as_object().ok_or_else(|| ::serde::Error::expected(\"object for {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
            } else {
                let inits: String = (0..arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                    .collect();
                format!(
                    "let items = value.as_array().ok_or_else(|| ::serde::Error::expected(\"array for {name}\"))?;\n\
                     if items.len() != {arity} {{\n\
                         return Err(::serde::Error::expected(\"{arity} elements for {name}\"));\n\
                     }}\n\
                     Ok({name}({inits}))"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_empty())
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, f)| !f.is_empty())
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::field(obj, \"{f}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                             let obj = _inner.as_object().ok_or_else(|| ::serde::Error::expected(\"fields of {name}::{v}\"))?;\n\
                             Ok({name}::{v} {{ {inits} }})\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::expected(&format!(\"variant of {name}, got {{other}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, _inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::Error::expected(&format!(\"variant of {name}, got {{other}}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::expected(\"string or single-key object for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive stub: generated impl parses")
}
