//! Offline stand-in for `serde_json`, rendering and parsing the vendored
//! serde's [`Value`] tree.
//!
//! Matches the upstream behaviours the workspace depends on:
//!
//! * compact output uses `"key":value` with no spaces, pretty output uses
//!   two-space indentation;
//! * floats are emitted in shortest round-trip form (Rust's `{:?}`), so
//!   `70.272` stays `70.272` and `1.0` keeps its `.0` — this is what the
//!   upstream `float_roundtrip` feature guarantees;
//! * non-finite floats are emitted as `null`, like upstream.

// Vendored stub: exempt from the workspace lint policy.
#![allow(clippy::all)]

pub use serde::Value;
use serde::{de::DeserializeOwned, Serialize};

/// Error type shared with the vendored serde.
pub type Error = serde::Error;

/// Serialize to compact JSON.
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors upstream's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors upstream's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, item, i, d| {
                write_value(o, item, i, d);
            },
            '[',
            ']',
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            |o, (k, val), i, d| {
                write_string(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, val, i, d);
            },
            '{',
            '}',
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<&str>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b =
                *self.bytes.get(self.pos).ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to a char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom("expected a JSON value"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_upstream_style() {
        let v = Value::Object(vec![
            ("kv_cache_kb".into(), Value::Float(70.272)),
            ("multiplier".into(), Value::Float(1.0)),
            ("n".into(), Value::UInt(3)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"kv_cache_kb":70.272,"multiplier":1.0,"n":3}"#);
    }

    #[test]
    fn parse_roundtrips() {
        let src = r#"{"a":[1,2.5,-3],"b":"x\ny","c":true,"d":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn pretty_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::Int(1)]))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [70.272f64, 0.1, 1e30, -1.5e-9, 14.76] {
            let s = to_string(&Value::Float(f)).unwrap();
            match parse(&s).unwrap() {
                Value::Float(back) => assert_eq!(back, f, "{s}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Value::Str("héllo ∑ \"q\"".into());
        let s = to_string(&v).unwrap();
        assert_eq!(parse(&s).unwrap(), v);
    }
}
